//! Integration: the quantitative microstructure pipeline (two-point
//! correlation → radial average → PCA) distinguishes microstructures, and
//! the pattern census matches constructed ground truth — the machinery for
//! the paper's announced "quantitative comparison using Principal Component
//! Analysis on two-point correlation" (Sec. 5.2).

use eutectica_analysis::correlation::{correlation_length, radial_average, two_point_correlation};
use eutectica_analysis::lamellae::Snapshot;
use eutectica_analysis::patterns::census_slice;
use eutectica_analysis::pca::Pca;
use eutectica_blockgrid::GridDims;
use eutectica_core::state::BlockState;

/// Periodic lamellar indicator with the given stripe half-period (cells).
fn stripes(n: usize, half_period: usize) -> Vec<f64> {
    (0..n * n * n)
        .map(|i| (((i % n) / half_period) % 2 == 0) as u8 as f64)
        .collect()
}

#[test]
fn correlation_length_tracks_lamella_spacing() {
    let n = 32;
    let fine = radial_average(
        &two_point_correlation(&stripes(n, 2), [n, n, n]),
        [n, n, n],
        10,
    );
    let coarse = radial_average(
        &two_point_correlation(&stripes(n, 8), [n, n, n]),
        [n, n, n],
        10,
    );
    let l_fine = correlation_length(&fine, 0.5).expect("fine length");
    let l_coarse = correlation_length(&coarse, 0.5).expect("coarse length");
    assert!(
        l_coarse > l_fine,
        "coarser lamellae must have the longer correlation length: {l_fine} vs {l_coarse}"
    );
}

#[test]
fn pca_separates_fine_from_coarse_lamellae() {
    let n = 32;
    // Several samples per class (periods 2–3 vs 7–8, shifted phases).
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for (class, periods) in [(0, [2usize, 3]), (1, [7, 8])] {
        for &hp in &periods {
            for shift in 0..2 {
                let mask: Vec<f64> = (0..n * n * n)
                    .map(|i| ((((i % n) + shift * hp) / hp) % 2 == 0) as u8 as f64)
                    .collect();
                let corr = two_point_correlation(&mask, [n, n, n]);
                // Radii ≤ n/4 carry the spacing signal; larger bins only add
                // phase-shift variance that rotates PC1 away from the
                // fine/coarse axis.
                samples.push(radial_average(&corr, [n, n, n], 8));
                labels.push(class);
            }
        }
    }
    let pca = Pca::fit(&samples);
    let proj: Vec<f64> = samples.iter().map(|s| pca.project(s, 1)[0]).collect();
    // The two classes must be linearly separated on the first component.
    let c0: Vec<f64> = proj
        .iter()
        .zip(&labels)
        .filter(|(_, &l)| l == 0)
        .map(|(p, _)| *p)
        .collect();
    let c1: Vec<f64> = proj
        .iter()
        .zip(&labels)
        .filter(|(_, &l)| l == 1)
        .map(|(p, _)| *p)
        .collect();
    let (min0, max0) = (
        c0.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
        c0.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
    );
    let (min1, max1) = (
        c1.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
        c1.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
    );
    assert!(
        max0 < min1 || max1 < min0,
        "classes overlap on PC1: [{min0},{max0}] vs [{min1},{max1}]"
    );
}

#[test]
fn census_and_snapshot_agree_on_constructed_lamellae() {
    // Build a block with three exact solid lamellae of one phase.
    let dims = GridDims::new(24, 24, 8, 1);
    let mut s = BlockState::new(dims, [0, 0, 0]);
    let g = dims.ghost;
    for z in 0..8usize {
        for y in 0..24usize {
            for x in 0..24usize {
                // Lamellae of phase 0 at x ∈ [2,5), [10,13), [18,21).
                let in_lamella = [2..5usize, 10..13, 18..21].iter().any(|r| r.contains(&x));
                let phi = if in_lamella {
                    [1.0, 0.0, 0.0, 0.0]
                } else {
                    [0.0, 0.0, 0.0, 1.0]
                };
                s.phi_src.set_cell(x + g, y + g, z + g, phi);
            }
        }
    }
    // 3-D: exactly three lamellae.
    let snap = Snapshot::of_block(&s, 0);
    assert_eq!(snap.lamella_count(), 3);
    // 2-D census: three elongated (chain) sections, nothing else.
    let census = census_slice(&s, 0, g + 2, 4);
    assert_eq!(census.total(), 3, "{census:?}");
    assert_eq!(census.chains, 3, "{census:?}");
}
