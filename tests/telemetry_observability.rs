//! Integration: the telemetry subsystem observes without perturbing.
//!
//! * Instrumented runs (spans + step records + trace buffering) produce
//!   bit-identical fields to runs with telemetry disabled — extending the
//!   `overlap_equivalence` pattern to the observability axis.
//! * Cross-rank timing-tree reduction has a deterministic structure,
//!   independent of the rank count.
//! * The ghost-exchange byte counters agree exactly with the analytic
//!   `ghost::send_region` face volumes × 8 bytes per f64.

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_blockgrid::{ghost, Face, GridDims};
use eutectica_comm::{CommStats, TagStats, Universe};
use eutectica_core::init;
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{DistributedSim, OverlapOptions};
use eutectica_core::{N_COMP, N_PHASES};
use eutectica_telemetry::Telemetry;
use std::collections::BTreeMap;

const STEPS: usize = 3;

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// `Telemetry::disabled()` — every span a no-op.
    Disabled,
    /// Default enabled collector.
    Enabled,
    /// Enabled + Chrome-trace buffering + per-step records.
    TracedRecorded,
}

fn run_case(n_ranks: usize, overlap: OverlapOptions, mode: Mode) -> Vec<Vec<BlockState>> {
    let params = ModelParams::ag_al_cu();
    Universe::run(n_ranks, move |rank| {
        let decomp = Decomposition::new(DomainSpec::directional([16, 8, 8], [2, 1, 1]));
        let mut sim = DistributedSim::new(
            &rank,
            params.clone(),
            decomp,
            KernelConfig::default(),
            overlap,
        );
        match mode {
            Mode::Disabled => sim.set_telemetry(Telemetry::disabled()),
            Mode::Enabled => {}
            Mode::TracedRecorded => {
                let tel = Telemetry::new(rank.rank());
                tel.enable_trace();
                sim.set_telemetry(tel);
                sim.record_steps(true);
            }
        }
        sim.init_blocks(|b| {
            let seeds = init::VoronoiSeeds::generate([8, 8], 3, [0.34, 0.33, 0.33], 7);
            init::init_directional_block(b, &seeds, 3);
        });
        sim.step_n(STEPS);
        std::mem::take(&mut sim.blocks)
    })
}

/// Instrumentation must be numerically inert: identical bits either way.
#[test]
fn telemetry_is_numerically_inert() {
    for overlap in [
        OverlapOptions::default(),
        OverlapOptions {
            hide_mu: true,
            hide_phi: true,
        },
    ] {
        let base = run_case(2, overlap, Mode::Disabled);
        for mode in [Mode::Enabled, Mode::TracedRecorded] {
            let run = run_case(2, overlap, mode);
            for (r, blocks) in run.iter().enumerate() {
                for (bi, b) in blocks.iter().enumerate() {
                    let a = &base[r][bi];
                    for c in 0..N_PHASES {
                        assert_eq!(
                            a.phi_src.comp(c),
                            b.phi_src.comp(c),
                            "{mode:?} {overlap:?} phi[{c}] rank {r} differs"
                        );
                    }
                    for c in 0..N_COMP {
                        assert_eq!(
                            a.mu_src.comp(c),
                            b.mu_src.comp(c),
                            "{mode:?} {overlap:?} mu[{c}] rank {r} differs"
                        );
                    }
                }
            }
        }
    }
}

fn reduced_structure(n_ranks: usize) -> Vec<(String, u64)> {
    let params = ModelParams::ag_al_cu();
    let out = Universe::run(n_ranks, move |rank| {
        let decomp = Decomposition::new(DomainSpec::directional([16, 16, 8], [2, 2, 1]));
        let mut sim = DistributedSim::new(
            &rank,
            params.clone(),
            decomp,
            KernelConfig::default(),
            OverlapOptions::default(),
        );
        sim.init_blocks(|b| init::init_planar_front(b, 0, 3));
        sim.step_n(STEPS);
        rank.reduce_timing(&sim.telemetry().tree_snapshot())
    });
    out[0]
        .as_ref()
        .expect("rank 0 holds the reduction")
        .rows
        .iter()
        .map(|r| (r.path.clone(), r.count))
        .collect()
}

/// The reduced tree's shape (paths and call counts) must not depend on how
/// many ranks the same domain is spread over, and must be reproducible.
#[test]
fn reduction_structure_is_deterministic_across_rank_counts() {
    let one = reduced_structure(1);
    let four = reduced_structure(4);
    assert_eq!(one, four, "tree structure changed with rank count");
    assert_eq!(four, reduced_structure(4), "reduction not reproducible");
    // Sanity: the spans threaded through step() are all present.
    let paths: Vec<&str> = one.iter().map(|(p, _)| p.as_str()).collect();
    for expected in [
        "refresh_src_ghosts",
        "step",
        "step/phi_sweep",
        "step/phi_comm",
        "step/mu_sweep",
        "step/mu_comm",
        "step/bc",
    ] {
        assert!(
            paths.contains(&expected),
            "missing node {expected}: {paths:?}"
        );
    }
    // Call counts reflect the step loop: one φ-sweep per step, two BC
    // applications per step (φ_dst and µ_dst).
    let count = |p: &str| one.iter().find(|(q, _)| q == p).unwrap().1;
    assert_eq!(count("step"), STEPS as u64);
    assert_eq!(count("step/phi_sweep"), STEPS as u64);
    assert_eq!(count("step/bc"), 2 * STEPS as u64);
}

/// One rank's traffic for `[16,8,8]` split `[2,1,1]`: only the two x faces
/// cross the rank boundary (y is periodic onto the same block, z is a
/// physical boundary), so every exchanged field contributes exactly two
/// messages of the analytic `send_region` volume.
#[test]
fn ghost_byte_counters_match_analytic_face_sizes() {
    let dims = GridDims::new(8, 8, 8, 1); // one block per rank
    let phi_msg = ghost::message_bytes(dims, Face::XLow, N_PHASES);
    let mu_msg = ghost::message_bytes(dims, Face::XLow, N_COMP);
    let mu_msg_plain = ghost::message_bytes_plain(dims, Face::XLow, N_COMP);
    assert_eq!(phi_msg, ghost::message_bytes(dims, Face::XHigh, N_PHASES));

    let run =
        |overlap: OverlapOptions| -> Vec<(CommStats, CommStats, BTreeMap<&'static str, TagStats>)> {
            let params = ModelParams::ag_al_cu();
            Universe::run(2, move |rank| {
                let decomp = Decomposition::new(DomainSpec::directional([16, 8, 8], [2, 1, 1]));
                let mut sim = DistributedSim::new(
                    &rank,
                    params.clone(),
                    decomp,
                    KernelConfig::default(),
                    overlap,
                );
                sim.init_blocks(|b| init::init_planar_front(b, 0, 3));
                let after_init = rank.stats();
                sim.step_n(STEPS);
                (after_init, rank.stats(), sim.comm_field_traffic())
            })
        };

    // Default path: φ_dst and µ_dst exchanged sequenced every step.
    for (after_init, after_steps, fields) in run(OverlapOptions::default()) {
        // Init refreshes φ_src and µ_src once: two faces each.
        assert_eq!(after_init.bytes_sent, 2 * (phi_msg + mu_msg));
        assert_eq!(after_init.bytes_received, 2 * (phi_msg + mu_msg));
        // Each step sends two faces of φ_dst and µ_dst.
        let per_step = 2 * (phi_msg + mu_msg);
        assert_eq!(
            after_steps.bytes_sent - after_init.bytes_sent,
            STEPS as u64 * per_step
        );
        assert_eq!(after_steps.messages_sent, 4 + STEPS as u64 * 4);
        assert_eq!(after_steps.bytes_received, after_steps.bytes_sent);
        // Per-field attribution.
        assert_eq!(fields["phi_src"].bytes_sent, 2 * phi_msg);
        assert_eq!(fields["mu_src"].bytes_sent, 2 * mu_msg);
        assert_eq!(fields["phi_dst"].bytes_sent, STEPS as u64 * 2 * phi_msg);
        assert_eq!(fields["mu_dst"].bytes_sent, STEPS as u64 * 2 * mu_msg);
        assert_eq!(fields["phi_dst"].messages_sent, STEPS as u64 * 2);
    }

    // µ-hiding swaps the sequenced µ_dst exchange for a plain (face-only)
    // µ_src exchange. For x faces the sequenced message has no
    // already-exchanged transverse axis, so both regions coincide; the
    // extended region is strictly larger only on y/z faces.
    assert_eq!(mu_msg_plain, mu_msg);
    assert!(
        ghost::message_bytes_plain(dims, Face::ZLow, N_COMP)
            < ghost::message_bytes(dims, Face::ZLow, N_COMP)
    );
    for (after_init, after_steps, fields) in run(OverlapOptions {
        hide_mu: true,
        hide_phi: false,
    }) {
        let per_step = 2 * (phi_msg + mu_msg_plain);
        assert_eq!(
            after_steps.bytes_sent - after_init.bytes_sent,
            STEPS as u64 * per_step
        );
        assert_eq!(
            fields["mu_src"].bytes_sent,
            2 * mu_msg + STEPS as u64 * 2 * mu_msg_plain
        );
        assert!(
            !fields.contains_key("mu_dst"),
            "mu_dst exchange should be deferred"
        );
    }
}

/// Step records and trace events are captured per rank and step.
#[test]
fn step_records_and_trace_events_are_complete() {
    let params = ModelParams::ag_al_cu();
    let out = Universe::run(2, move |rank| {
        let decomp = Decomposition::new(DomainSpec::directional([16, 8, 8], [2, 1, 1]));
        let mut sim = DistributedSim::new(
            &rank,
            params.clone(),
            decomp,
            KernelConfig::default(),
            OverlapOptions::default(),
        );
        let tel = Telemetry::new(rank.rank());
        tel.enable_trace();
        sim.set_telemetry(tel.clone());
        sim.record_steps(true);
        sim.init_blocks(|b| init::init_planar_front(b, 0, 3));
        sim.step_n(STEPS);
        (
            sim.take_step_records(),
            tel.take_trace(),
            tel.metrics_snapshot(),
        )
    });
    for (r, (records, trace, metrics)) in out.iter().enumerate() {
        assert_eq!(records.len(), STEPS);
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.rank, r);
            assert_eq!(rec.step, i);
            assert_eq!(rec.cells_updated, 8 * 8 * 8);
            assert!(rec.wall_ms > 0.0 && rec.mlups > 0.0);
            // The JSONL line carries every schema field.
            let line = rec.to_json();
            for key in [
                "mlups",
                "ghost_bytes_sent",
                "recv_wait_hist_ns",
                "window_shifts",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
        assert!(trace.iter().any(|e| e.cat == "compute"));
        assert!(trace.iter().any(|e| e.cat == "comm"));
        // Serial run: every event sits on the rank thread's lane 0.
        assert!(trace
            .iter()
            .all(|e| e.tid == eutectica_telemetry::lane_tid(r, 0)));
        // The registry bridged the comm counters.
        assert!(metrics.counters["comm/bytes_sent"] > 0);
        assert_eq!(
            metrics.counters["cells_updated"],
            (STEPS * 8 * 8 * 8) as u64
        );
        assert!(metrics.histograms["comm/recv_wait_ns"].count() > 0);
    }
}
