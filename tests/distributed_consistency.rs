//! Integration: the distributed time loop is invariant under block and rank
//! decomposition and under every communication-hiding combination.

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{run_distributed, OverlapOptions};
use eutectica_core::{N_COMP, N_PHASES};

fn init(b: &mut BlockState) {
    let seeds = eutectica_core::init::VoronoiSeeds::generate([24, 24], 6, [0.34, 0.33, 0.33], 77);
    eutectica_core::init::init_directional_block(b, &seeds, 6);
}

/// Reassemble the global interior φ/µ fields from per-rank blocks.
fn assemble(
    out: &[(Vec<BlockState>, eutectica_core::timeloop::StepTimings)],
    cells: [usize; 3],
) -> (Vec<f64>, Vec<f64>) {
    let mut phi = vec![0.0; cells[0] * cells[1] * cells[2] * N_PHASES];
    let mut mu = vec![0.0; cells[0] * cells[1] * cells[2] * N_COMP];
    for (blocks, _) in out {
        for b in blocks {
            let d = b.dims;
            let g = d.ghost;
            for z in 0..d.nz {
                for y in 0..d.ny {
                    for x in 0..d.nx {
                        let (gx, gy, gz) = (b.origin[0] + x, b.origin[1] + y, b.origin[2] + z);
                        let gi = (gz * cells[1] + gy) * cells[0] + gx;
                        for c in 0..N_PHASES {
                            phi[c * cells[0] * cells[1] * cells[2] + gi] =
                                b.phi_src.at(c, x + g, y + g, z + g);
                        }
                        for c in 0..N_COMP {
                            mu[c * cells[0] * cells[1] * cells[2] + gi] =
                                b.mu_src.at(c, x + g, y + g, z + g);
                        }
                    }
                }
            }
        }
    }
    (phi, mu)
}

#[test]
fn block_and_rank_decompositions_agree() {
    let params = ModelParams::ag_al_cu();
    let cells = [24usize, 24, 16];
    let steps = 6;
    let cfg = KernelConfig::default();
    let ov = OverlapOptions::default();

    let run = |blocks: [usize; 3], ranks: usize| {
        let spec = DomainSpec::directional(cells, blocks);
        let out = run_distributed(
            params.clone(),
            Decomposition::new(spec),
            ranks,
            steps,
            cfg,
            ov,
            init,
        );
        assemble(&out, cells)
    };

    let (phi_ref, mu_ref) = run([1, 1, 1], 1);
    for (blocks, ranks) in [
        ([2, 1, 1], 1),
        ([2, 1, 1], 2),
        ([2, 2, 2], 2),
        ([2, 2, 2], 8),
        ([1, 3, 2], 3),
    ] {
        let (phi, mu) = run(blocks, ranks);
        let dphi = phi
            .iter()
            .zip(&phi_ref)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let dmu = mu
            .iter()
            .zip(&mu_ref)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            dphi < 1e-12 && dmu < 1e-12,
            "{blocks:?} × {ranks} ranks: dphi {dphi:e}, dmu {dmu:e}"
        );
    }
}

#[test]
fn all_overlap_modes_agree_on_multiblock_multirank() {
    let params = ModelParams::ag_al_cu();
    let cells = [24usize, 24, 16];
    let spec = DomainSpec::directional(cells, [2, 2, 2]);
    let runs: Vec<_> = OverlapOptions::ALL
        .iter()
        .map(|&ov| {
            let out = run_distributed(
                params.clone(),
                Decomposition::new(spec),
                4,
                6,
                KernelConfig::default(),
                ov,
                init,
            );
            assemble(&out, cells)
        })
        .collect();
    for (k, (phi, mu)) in runs.iter().enumerate().skip(1) {
        let dphi = phi
            .iter()
            .zip(&runs[0].0)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let dmu = mu
            .iter()
            .zip(&runs[0].1)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // The split µ-kernel reassociates one addition; everything else is
        // identical.
        assert!(
            dphi < 1e-10 && dmu < 1e-10,
            "overlap mode {k}: dphi {dphi:e} dmu {dmu:e}"
        );
    }
}

#[test]
fn kernel_variants_agree_in_full_distributed_steps() {
    // End-to-end: reference kernels vs fully optimized kernels over real
    // multi-step distributed runs.
    let params = ModelParams::ag_al_cu();
    let cells = [12usize, 12, 12];
    let spec = DomainSpec::directional(cells, [2, 1, 1]);
    let run = |cfg: KernelConfig| {
        let out = run_distributed(
            params.clone(),
            Decomposition::new(spec),
            2,
            4,
            cfg,
            OverlapOptions::default(),
            |b| {
                let seeds = eutectica_core::init::VoronoiSeeds::generate(
                    [12, 12],
                    3,
                    [0.34, 0.33, 0.33],
                    5,
                );
                eutectica_core::init::init_directional_block(b, &seeds, 4);
            },
        );
        assemble(&out, cells)
    };
    let optimized = run(KernelConfig::default());
    let reference = run(eutectica_core::kernels::OptLevel::Reference.config());
    let dphi = optimized
        .0
        .iter()
        .zip(&reference.0)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(dphi < 1e-9, "optimized vs reference diverged by {dphi:e}");
}

#[test]
fn distributed_moving_window_is_rank_invariant() {
    use eutectica_comm::Universe;
    use eutectica_core::timeloop::DistributedSim;
    use std::sync::Arc;

    let mut params = ModelParams::ag_al_cu();
    params.t0 = 0.95;
    params.grad_g = 0.0;
    let cells = [16usize, 16, 20];
    let spec = DomainSpec::directional(cells, [2, 1, 1]);

    let run = |ranks: usize| -> (usize, Vec<f64>) {
        let params = params.clone();
        let decomp = Arc::new(Decomposition::new(spec));
        let out = Universe::run(ranks, move |rank| {
            let mut sim = DistributedSim::new(
                &rank,
                params.clone(),
                (*decomp).clone(),
                KernelConfig::default(),
                OverlapOptions::default(),
            );
            sim.init_blocks(|b| eutectica_core::init::init_planar_front(b, 0, 9));
            sim.enable_moving_window(0.5);
            sim.step_n(400);
            (sim.window_shifts(), std::mem::take(&mut sim.blocks))
        });
        let shifts = out[0].0;
        // Global checksum per block id order.
        let mut sums = Vec::new();
        let mut blocks: Vec<&BlockState> = out.iter().flat_map(|(_, bs)| bs.iter()).collect();
        blocks.sort_by_key(|b| b.origin);
        for b in blocks {
            sums.push(b.phi_src.comp(0).iter().sum::<f64>());
            sums.push(b.origin[2] as f64);
        }
        (shifts, sums)
    };

    let (shifts1, sums1) = run(1);
    let (shifts2, sums2) = run(2);
    assert!(shifts1 > 0, "window never moved");
    assert_eq!(shifts1, shifts2, "shift counts differ across rank counts");
    assert_eq!(sums1.len(), sums2.len());
    for (a, b) in sums1.iter().zip(&sums2) {
        assert!((a - b).abs() < 1e-9, "windowed fields differ: {a} vs {b}");
    }
}
