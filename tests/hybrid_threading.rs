//! Hybrid parallelism: intra-rank threaded sweeps must be bit-identical to
//! the serial sweeps at any thread count, across all four
//! communication-hiding combinations, including degenerate partitions
//! (fewer z-slices than threads, one-cell slabs).

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{
    run_distributed_threaded, DistributedSim, OverlapOptions, StepTimings,
};
use eutectica_core::{N_COMP, N_PHASES};

fn init_fn(b: &mut BlockState) {
    let seeds = eutectica_core::init::VoronoiSeeds::generate([16, 16], 4, [0.34, 0.33, 0.33], 7);
    eutectica_core::init::init_directional_block(b, &seeds, 3);
}

fn run(
    domain: [usize; 3],
    blocks: [usize; 3],
    n_ranks: usize,
    threads: usize,
    steps: usize,
    overlap: OverlapOptions,
) -> Vec<(Vec<BlockState>, StepTimings)> {
    run_distributed_threaded(
        ModelParams::ag_al_cu(),
        Decomposition::new(DomainSpec::directional(domain, blocks)),
        n_ranks,
        threads,
        steps,
        KernelConfig::default(),
        overlap,
        init_fn,
    )
}

/// Compare interiors of two runs bit-for-bit (ghosts are excluded: under
/// hide_mu the µ ghost refresh is deferred to the next step by design).
fn assert_bit_identical(
    a: &[(Vec<BlockState>, StepTimings)],
    b: &[(Vec<BlockState>, StepTimings)],
    what: &str,
) {
    assert_eq!(a.len(), b.len());
    for (r, ((ab, _), (bb, _))) in a.iter().zip(b).enumerate() {
        assert_eq!(ab.len(), bb.len());
        for (bi, (x, y)) in ab.iter().zip(bb).enumerate() {
            for (cx, cy, cz) in x.dims.interior_iter() {
                for c in 0..N_PHASES {
                    assert_eq!(
                        x.phi_src.at(c, cx, cy, cz),
                        y.phi_src.at(c, cx, cy, cz),
                        "{what}: phi[{c}] rank {r} block {bi} at ({cx},{cy},{cz})"
                    );
                }
                for c in 0..N_COMP {
                    assert_eq!(
                        x.mu_src.at(c, cx, cy, cz),
                        y.mu_src.at(c, cx, cy, cz),
                        "{what}: mu[{c}] rank {r} block {bi} at ({cx},{cy},{cz})"
                    );
                }
            }
        }
    }
}

/// Threaded sweeps reproduce the serial result exactly for every overlap
/// combination, thread count, and partition shape — including nz smaller
/// than the thread count and all-one-cell slabs.
#[test]
fn threaded_sweeps_are_bit_identical_to_serial() {
    // (domain, blocks, ranks, steps): multi-rank comm, nz < threads, and
    // nz = 7 (one-cell slabs at 7 threads).
    let shapes: [([usize; 3], [usize; 3], usize, usize); 3] = [
        ([8, 8, 8], [2, 1, 1], 2, 3),
        ([6, 6, 3], [1, 1, 1], 1, 2),
        ([4, 4, 7], [1, 1, 1], 1, 2),
    ];
    for (domain, blocks, ranks, steps) in shapes {
        for overlap in OverlapOptions::ALL {
            let serial = run(domain, blocks, ranks, 1, steps, overlap);
            for threads in [2usize, 4, 7] {
                let threaded = run(domain, blocks, ranks, threads, steps, overlap);
                assert_bit_identical(
                    &serial,
                    &threaded,
                    &format!("{domain:?}/{blocks:?} ranks={ranks} threads={threads} {overlap:?}"),
                );
            }
        }
    }
}

/// Thread counts far beyond nz clamp to one slab per slice and still match.
#[test]
fn oversubscribed_pool_clamps_to_slice_count() {
    let serial = run([4, 4, 2], [1, 1, 1], 1, 1, 2, OverlapOptions::default());
    let huge = run([4, 4, 2], [1, 1, 1], 1, 32, 2, OverlapOptions::default());
    assert_bit_identical(&serial, &huge, "threads=32 on nz=2");
}

/// Hybrid ranks × threads composes: 2 ranks × 3 threads matches 1 rank × 1
/// thread on the same decomposition.
#[test]
fn ranks_and_threads_compose() {
    let base = run([8, 8, 8], [2, 2, 1], 1, 1, 3, OverlapOptions::default());
    let hybrid = run([8, 8, 8], [2, 2, 1], 2, 3, 3, OverlapOptions::default());
    // Re-key blocks: rank 0 of the 1-rank run owns all four blocks in id
    // order; the 2-rank run splits them two per rank in the same order.
    let flat_base: Vec<&BlockState> = base[0].0.iter().collect();
    let flat_hybrid: Vec<&BlockState> = hybrid.iter().flat_map(|(b, _)| b.iter()).collect();
    assert_eq!(flat_base.len(), flat_hybrid.len());
    for (x, y) in flat_base.iter().zip(&flat_hybrid) {
        assert_eq!(x.origin, y.origin, "block order mismatch");
        for c in 0..N_PHASES {
            assert_eq!(x.phi_src.comp(c), y.phi_src.comp(c), "phi[{c}]");
        }
        for c in 0..N_COMP {
            assert_eq!(x.mu_src.comp(c), y.mu_src.comp(c), "mu[{c}]");
        }
    }
}

/// CI matrix entry point: the `hybrid` workflow job sets
/// `EUTECTICA_TEST_RANKS` × `EUTECTICA_TEST_THREADS` ({1,4} × {1,4}) and
/// this compares that layout bit-for-bit against the serial single-rank
/// run of the same decomposition.
#[test]
fn matrix_combo_matches_serial_baseline() {
    let get = |k: &str, d: usize| {
        std::env::var(k)
            .ok()
            .map(|v| v.parse().expect("rank/thread counts must be integers"))
            .unwrap_or(d)
    };
    let ranks = get("EUTECTICA_TEST_RANKS", 1);
    let threads = get("EUTECTICA_TEST_THREADS", 4);
    let domain = [8usize, 8, 8];
    let blocks = [2usize, 2, 1]; // 4 blocks: splittable over 1 or 4 ranks
    let base = run(domain, blocks, 1, 1, 3, OverlapOptions::default());
    let combo = run(domain, blocks, ranks, threads, 3, OverlapOptions::default());
    let flat_base: Vec<&BlockState> = base.iter().flat_map(|(b, _)| b.iter()).collect();
    let flat_combo: Vec<&BlockState> = combo.iter().flat_map(|(b, _)| b.iter()).collect();
    assert_eq!(flat_base.len(), flat_combo.len());
    for (x, y) in flat_base.iter().zip(&flat_combo) {
        assert_eq!(x.origin, y.origin, "block order mismatch");
        for c in 0..N_PHASES {
            assert_eq!(
                x.phi_src.comp(c),
                y.phi_src.comp(c),
                "phi[{c}] ranks={ranks} threads={threads}"
            );
        }
        for c in 0..N_COMP {
            assert_eq!(
                x.mu_src.comp(c),
                y.mu_src.comp(c),
                "mu[{c}] ranks={ranks} threads={threads}"
            );
        }
    }
}

/// Acceptance check for the work-sharing engine: ≥ 2× step throughput with
/// 4 threads on a 64³ block, read from the `step_mlups` telemetry gauge.
/// Ignored by default — it needs ≥ 4 physical cores to pass; run with
/// `cargo test --release -- --ignored` on a multi-core host.
#[test]
#[ignore = "requires >= 4 physical cores"]
fn four_threads_double_step_throughput_on_64cube() {
    fn gauge_mlups(threads: usize) -> f64 {
        let decomp = Decomposition::new(DomainSpec::directional([64, 64, 64], [1, 1, 1]));
        eutectica_comm::Universe::run(1, move |rank| {
            let mut sim = DistributedSim::new(
                &rank,
                ModelParams::ag_al_cu(),
                decomp.clone(),
                KernelConfig::default(),
                OverlapOptions::default(),
            );
            sim.set_threads(threads);
            sim.init_blocks(init_fn);
            sim.step_n(3);
            sim.telemetry().metrics_snapshot().gauges["step_mlups"]
        })[0]
    }
    let serial = gauge_mlups(1);
    let threaded = gauge_mlups(4);
    assert!(
        threaded >= 2.0 * serial,
        "4-thread step rate {threaded:.2} MLUP/s < 2x serial {serial:.2} MLUP/s"
    );
}
