//! Integration: checkpoint → restart must continue the simulation within
//! single-precision tolerance (Sec. 3.2: "checkpoints use only single
//! precision to save disk space and I/O bandwidth").

use eutectica_core::params::ModelParams;
use eutectica_core::prelude::*;
use eutectica_pfio::{read_checkpoint, write_checkpoint};

fn setup() -> Simulation {
    let mut p = ModelParams::ag_al_cu();
    p.t0 = 0.95;
    let mut sim = Simulation::new(p, [12, 12, 24]).unwrap();
    sim.init_directional(3);
    sim
}

#[test]
fn restart_continues_within_f32_tolerance() {
    // Continuous run: 15 steps.
    let mut continuous = setup();
    continuous.step_n(15);

    // Checkpointed run: 10 steps, save, restore, 5 more.
    let mut first = setup();
    first.step_n(10);
    let mut buf = Vec::new();
    write_checkpoint(&mut buf, &first.state, first.time()).unwrap();

    let (state, time) = read_checkpoint(&mut buf.as_slice()).unwrap();
    assert!((time - 10.0 * first.params.dt).abs() < 1e-12);
    let mut resumed = Simulation::new(first.params.clone(), [12, 12, 24]).unwrap();
    resumed.state = state;
    // Restore boundary conditions and ghost layers, as a restart must.
    resumed.state.bc_phi = first.state.bc_phi;
    resumed.state.bc_mu = first.state.bc_mu;
    resumed.state.apply_bc_src();
    resumed.state.sync_dst_from_src();
    resumed.step_n(5);

    // f32 rounding of the checkpoint (≈1e-8 relative) grows slowly over the
    // 5 remaining steps.
    let d = continuous.state.dims;
    let mut max_diff = 0.0f64;
    for c in 0..N_PHASES {
        for (x, y, z) in d.interior_iter() {
            let a = continuous.state.phi_src.at(c, x, y, z);
            let b = resumed.state.phi_src.at(c, x, y, z);
            max_diff = max_diff.max((a - b).abs());
        }
    }
    assert!(
        max_diff < 1e-3,
        "restart diverged from continuous run by {max_diff:e}"
    );
    // Aggregate observables agree tightly.
    assert!(
        (continuous.solid_fraction() - resumed.solid_fraction()).abs() < 1e-5,
        "{} vs {}",
        continuous.solid_fraction(),
        resumed.solid_fraction()
    );
}

#[test]
fn checkpoint_restart_preserves_window_origin() {
    let mut p = ModelParams::ag_al_cu();
    p.t0 = 0.95;
    p.grad_g = 0.0;
    let mut sim = Simulation::new(p, [8, 8, 20]).unwrap();
    sim.init_planar(0, 9);
    sim.enable_moving_window(0.5);
    sim.step_n(400);
    assert!(sim.window_shifts() > 0);
    let origin_before = sim.state.origin;

    let mut buf = Vec::new();
    write_checkpoint(&mut buf, &sim.state, sim.time()).unwrap();
    let (state, _) = read_checkpoint(&mut buf.as_slice()).unwrap();
    assert_eq!(state.origin, origin_before, "window offset lost in restart");
}
