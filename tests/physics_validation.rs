//! Integration: physical behaviour of the full coupled model.

use eutectica_blockgrid::boundary::{Bc, BoundarySpec};
use eutectica_core::model::mixture_concentration;
use eutectica_core::params::ModelParams;
use eutectica_core::prelude::*;
use eutectica_core::regions::{classify_block, RegionCounts};
use eutectica_core::temperature::SliceCtx;

#[test]
fn undercooled_planar_front_grows_superheated_melts() {
    for (t0, grows) in [(0.94, true), (1.06, false)] {
        let mut p = ModelParams::ag_al_cu();
        p.t0 = t0;
        p.grad_g = 0.0;
        let mut sim = Simulation::new(p, [8, 8, 24]).unwrap();
        sim.init_planar(0, 12);
        let before = sim.solid_fraction();
        sim.step_n(150);
        let after = sim.solid_fraction();
        if grows {
            assert!(
                after > before + 0.005,
                "T={t0}: no growth {before}->{after}"
            );
        } else {
            assert!(
                after < before - 0.005,
                "T={t0}: no melting {before}->{after}"
            );
        }
    }
}

#[test]
fn eutectic_front_keeps_all_three_solids() {
    let mut p = ModelParams::ag_al_cu();
    p.t0 = 0.93;
    p.grad_g = 0.0;
    let mut sim = Simulation::new(p, [24, 24, 32]).unwrap();
    sim.init_directional(11);
    sim.step_n(300);
    let f = sim.phase_fractions();
    for a in 0..3 {
        assert!(f[a] > 0.01, "phase {a} vanished: {f:?}");
    }
    assert!(f[3] > 0.1, "domain froze completely: {f:?}");
    // Interfaces are diffuse: a nonzero front region exists.
    let counts: RegionCounts = classify_block(&sim.state);
    assert!(counts.front > 0, "{counts:?}");
    assert!(counts.liquid_bulk > 0, "{counts:?}");
}

#[test]
fn closed_system_conserves_mixture_concentration_over_full_steps() {
    // Fully periodic, no temperature drift: Σ c is conserved through the
    // *complete* coupled stepping (φ-sweep + µ-sweep), not just one kernel.
    let mut p = ModelParams::ag_al_cu();
    p.t0 = 0.97;
    p.grad_g = 0.0;
    p.vel_v = 0.0;
    let mut sim = Simulation::new(p, [16, 16, 16]).unwrap();
    sim.init_directional(13);
    sim.state.bc_phi = BoundarySpec::uniform(Bc::Periodic);
    sim.state.bc_mu = BoundarySpec::uniform(Bc::Periodic);
    sim.state.apply_bc_src();
    sim.state.sync_dst_from_src();

    let total_c = |sim: &Simulation| -> [f64; 2] {
        let ctx = SliceCtx::at(&sim.params, sim.params.t0);
        let d = sim.state.dims;
        let mut t = [0.0; 2];
        for (x, y, z) in d.interior_iter() {
            let c = mixture_concentration(
                &ctx,
                sim.state.phi_src.cell(x, y, z),
                sim.state.mu_src.cell(x, y, z),
            );
            t[0] += c[0];
            t[1] += c[1];
        }
        t
    };
    let before = total_c(&sim);
    sim.step_n(100);
    let after = total_c(&sim);
    for i in 0..2 {
        let rel = (after[i] - before[i]).abs() / before[i].abs();
        // The φ-coupling source conserves c to first order per step; over
        // 100 steps the accumulated drift stays small.
        assert!(
            rel < 2e-2,
            "component {i}: {} -> {} ({:.3}% drift)",
            before[i],
            after[i],
            rel * 100.0
        );
    }
}

#[test]
fn phase_fields_stay_on_simplex_through_long_runs() {
    let mut p = ModelParams::ag_al_cu();
    p.t0 = 0.94;
    let mut sim = Simulation::new(p, [12, 12, 24]).unwrap();
    sim.init_directional(17);
    sim.step_n(400);
    for (x, y, z) in sim.state.dims.interior_iter() {
        let phi = sim.state.phi_src.cell(x, y, z);
        assert!(
            eutectica_core::simplex::on_simplex(phi, 1e-9),
            "off simplex at ({x},{y},{z}): {phi:?}"
        );
        let mu = sim.state.mu_src.cell(x, y, z);
        assert!(mu[0].abs() < 5.0 && mu[1].abs() < 5.0, "µ blew up: {mu:?}");
    }
}

#[test]
fn anti_trapping_reduces_spurious_solute_trapping() {
    // With a diffuse interface, the solid traps extra solute unless the
    // anti-trapping current corrects it ([30] vs [29]); compare the solid
    // composition behind the front with and without J_at.
    let run = |atc: bool| -> f64 {
        let mut p = ModelParams::ag_al_cu();
        p.t0 = 0.94;
        p.grad_g = 0.0;
        p.enable_atc = atc;
        let mut sim = Simulation::new(p, [8, 8, 32]).unwrap();
        sim.init_planar(0, 10);
        sim.step_n(300);
        // Mean µ (solute supersaturation proxy) in the solid region.
        let d = sim.state.dims;
        let mut mu_sum = 0.0;
        let mut n = 0.0f64;
        for (x, y, z) in d.interior_iter() {
            if sim.state.phi_src.at(0, x, y, z) > 0.99 {
                mu_sum += sim.state.mu_src.at(0, x, y, z).abs();
                n += 1.0;
            }
        }
        mu_sum / n.max(1.0)
    };
    let with_atc = run(true);
    let without = run(false);
    // The two must at least differ measurably; the sign of the improvement
    // depends on the growth regime, the magnitudes stay bounded.
    assert!(
        (with_atc - without).abs() > 1e-9,
        "J_at has no effect: {with_atc} vs {without}"
    );
    assert!(with_atc.is_finite() && without.is_finite());
}
