//! Integration: fault-tolerant checkpoint/restart. A rank killed by the
//! deterministic fault-injection harness must be detected (not deadlocked),
//! and resuming from the last valid checkpoint set must reproduce the
//! uninterrupted run bit-for-bit — on the same rank count or a different
//! one. The auto-cadence scheduler must keep measured checkpoint overhead
//! within its configured budget over a long run.

use std::path::PathBuf;
use std::time::Instant;

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_comm::{FaultPlan, Universe};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{DistributedSim, OverlapOptions};
use eutectica_core::{N_COMP, N_PHASES};
use eutectica_pfio::ckpt::Precision;
use eutectica_pfio::resilient::{
    run_resilient, AttemptFailure, Cadence, CheckpointCadence, ResilientOpts, ResilientOutcome,
    SimCheckpointExt,
};

/// Unwrap an attempt failure that must be a universe (rank-death) failure
/// and return its dead-rank list.
fn universe_dead(f: &AttemptFailure) -> &[(usize, String)] {
    match f {
        AttemptFailure::Universe(u) => &u.dead,
        other => panic!("expected a universe failure, got: {other}"),
    }
}

fn init(b: &mut BlockState) {
    let seeds = eutectica_core::init::VoronoiSeeds::generate([16, 16], 4, [0.34, 0.33, 0.33], 42);
    eutectica_core::init::init_directional_block(b, &seeds, 5);
}

/// Fresh per-test scratch directory (removed before and after use).
fn tmp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("eut_ft_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Exact bit pattern of every interior φ/µ value plus block origins, in
/// global block-id order — equal fingerprints mean bit-identical states.
fn fingerprint(blocks: &[BlockState]) -> Vec<u64> {
    let mut out = Vec::new();
    for b in blocks {
        out.push(b.origin[0] as u64);
        out.push(b.origin[2] as u64);
        for (x, y, z) in b.dims.interior_iter() {
            for c in 0..N_PHASES {
                out.push(b.phi_src.at(c, x, y, z).to_bits());
            }
            for c in 0..N_COMP {
                out.push(b.mu_src.at(c, x, y, z).to_bits());
            }
        }
    }
    out
}

fn run_case(
    tag: &str,
    spec: DomainSpec,
    steps: usize,
    ranks: Vec<usize>,
    fault_plans: Vec<FaultPlan>,
) -> ResilientOutcome {
    let root = tmp_root(tag);
    let mut opts = ResilientOpts::new(root.clone());
    opts.cadence = Cadence::EverySteps(4);
    opts.ranks = ranks;
    opts.fault_plans = fault_plans;
    let out = run_resilient(
        ModelParams::ag_al_cu(),
        spec,
        KernelConfig::default(),
        OverlapOptions::default(),
        steps,
        opts,
        init,
    )
    .expect("resilient run must recover");
    let _ = std::fs::remove_dir_all(&root);
    out
}

#[test]
fn kill_and_restore_is_bit_identical() {
    let spec = DomainSpec::directional([16, 16, 12], [2, 2, 1]);
    let steps = 12;

    let clean = run_case("clean", spec, steps, vec![2], Vec::new());
    assert_eq!(clean.attempts, 1, "fault-free run must not restart");

    // Kill rank 1 at step 10 — two steps past the last checkpoint (step 8),
    // so the recovery has to re-execute steps, not just reload them.
    let killed = run_case(
        "killed",
        spec,
        steps,
        vec![2],
        vec![FaultPlan::new(7).kill(1, 10)],
    );
    assert_eq!(
        killed.attempts, 2,
        "the kill must force exactly one restart"
    );
    assert_eq!(killed.failures.len(), 1);
    let (dead_rank, msg) = &universe_dead(&killed.failures[0])[0];
    assert_eq!(*dead_rank, 1, "rank 1 was killed, got: {msg}");
    assert!(msg.contains("fault injection"), "unexpected death: {msg}");

    assert_eq!(clean.time.to_bits(), killed.time.to_bits());
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&killed.blocks),
        "restored run diverged from the uninterrupted one"
    );
}

#[test]
fn restore_onto_different_rank_count_is_bit_identical() {
    // Block files are keyed by global block id, so a set written by 4 ranks
    // restores onto 2 (same block decomposition, different ownership).
    let spec = DomainSpec::directional([16, 16, 12], [2, 2, 1]);
    let steps = 12;

    let clean = run_case("clean4", spec, steps, vec![4], Vec::new());
    let killed = run_case(
        "rescale",
        spec,
        steps,
        vec![4, 2],
        vec![FaultPlan::new(3).kill(3, 9)],
    );
    assert_eq!(killed.attempts, 2);
    assert_eq!(universe_dead(&killed.failures[0])[0].0, 3);

    assert_eq!(clean.time.to_bits(), killed.time.to_bits());
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&killed.blocks),
        "restore onto a different rank count diverged"
    );
}

#[test]
fn auto_cadence_keeps_checkpoint_overhead_within_budget() {
    let root = tmp_root("cadence");
    let budget = 0.10; // allow 10 % of runtime for checkpoint writes
    let steps = 1000;
    let spec = DomainSpec::directional([8, 8, 8], [1, 1, 1]);
    let root_in = root.clone();

    let out = Universe::run(1, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            ModelParams::ag_al_cu(),
            Decomposition::new(spec),
            KernelConfig::default(),
            OverlapOptions::default(),
        );
        sim.init_blocks(init);
        let mut sched = CheckpointCadence::new(budget);
        let wall = Instant::now();
        // The first checkpoint (interval 1) is the measuring probe; only
        // overhead after the interval has been planned is charged against
        // the budget.
        let mut planned_ckpt_secs = 0.0f64;
        let mut checkpoints = 0usize;
        while sim.step_index() < steps {
            let t0 = Instant::now();
            sim.step();
            sched.observe_step(t0.elapsed());
            if sim.step_index() < steps && sched.due(sim.step_index()) {
                let t0 = Instant::now();
                sim.write_checkpoint_set(&root_in, Precision::F32)
                    .expect("checkpoint write");
                let cost = t0.elapsed();
                if checkpoints > 0 {
                    planned_ckpt_secs += cost.as_secs_f64();
                }
                checkpoints += 1;
                sched.observe_checkpoint(&rank, cost, sim.step_index());
            }
        }
        let total = wall.elapsed().as_secs_f64();
        let snap = sim.telemetry().metrics_snapshot();
        (
            planned_ckpt_secs,
            total,
            checkpoints,
            sched.interval(),
            snap,
        )
    });
    let (planned_ckpt_secs, total, checkpoints, interval, snap) = out.into_iter().next().unwrap();
    let _ = std::fs::remove_dir_all(&root);

    // Checkpoint cost is observable through telemetry counters.
    assert!(snap.counters["ckpt/sets_written"] >= 1);
    assert!(snap.counters["ckpt/bytes_written"] > 0);
    assert!(snap.counters["ckpt/wall_ns"] > 0);

    // The probe at interval 1 must have fired, and the re-planned interval
    // stays a valid schedule. (The exact interval value depends on wall
    // clocks, so the deterministic interval arithmetic is unit-tested in
    // `pfio::resilient` with synthetic durations; here we only pin the
    // wall-clock-facing property: the realized overhead honours the
    // budget.)
    assert!(
        checkpoints >= 1,
        "the measuring probe checkpoint never fired"
    );
    assert!(interval >= 1);
    // Budget check with generous slack for wall-clock noise on shared CI.
    let overhead = planned_ckpt_secs / total.max(1e-9);
    assert!(
        overhead <= budget * 4.0,
        "measured checkpoint overhead {overhead:.3} blew the {budget} budget \
         ({checkpoints} checkpoints, interval {interval}, {total:.3}s total)"
    );
}
