//! Integration: fault-tolerant checkpoint/restart. A rank killed by the
//! deterministic fault-injection harness must be detected (not deadlocked),
//! and resuming from the last valid checkpoint set must reproduce the
//! uninterrupted run bit-for-bit — on the same rank count or a different
//! one. The auto-cadence scheduler must keep measured checkpoint overhead
//! within its configured budget over a long run.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_blockgrid::rebalance::RebalancePolicy;
use eutectica_comm::{FaultPhase, FaultPlan, Universe};
use eutectica_core::health::HealthConfig;
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{DistributedSim, OverlapOptions};
use eutectica_core::{N_COMP, N_PHASES};
use eutectica_pfio::ckpt::Precision;
use eutectica_pfio::resilient::{
    run_resilient, AttemptFailure, Cadence, CheckpointCadence, RankFailure, RecoveryPolicy,
    ResilientError, ResilientOpts, ResilientOutcome, ShrinkPolicy, ShrinkSource, SimCheckpointExt,
};

/// Run `f` on a helper thread and panic if it neither returns nor panics
/// within `secs` — turning a would-be hang (the failure mode these tests
/// exist to rule out) into a loud, attributable test failure.
fn with_watchdog<T: Send + 'static>(
    secs: u64,
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = h.join();
            v
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => match h.join() {
            Ok(_) => unreachable!("sender dropped without sending or panicking"),
            Err(p) => std::panic::resume_unwind(p),
        },
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name}: watchdog expired after {secs}s — the run hung instead of failing");
        }
    }
}

/// Unwrap an attempt failure that must be a universe (rank-death) failure
/// and return its dead-rank list.
fn universe_dead(f: &AttemptFailure) -> &[(usize, String)] {
    match f {
        AttemptFailure::Universe(u) => &u.dead,
        other => panic!("expected a universe failure, got: {other}"),
    }
}

fn init(b: &mut BlockState) {
    let seeds = eutectica_core::init::VoronoiSeeds::generate([16, 16], 4, [0.34, 0.33, 0.33], 42);
    eutectica_core::init::init_directional_block(b, &seeds, 5);
}

/// Fresh per-test scratch directory (removed before and after use).
fn tmp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("eut_ft_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Exact bit pattern of every interior φ/µ value plus block origins, in
/// global block-id order — equal fingerprints mean bit-identical states.
fn fingerprint(blocks: &[BlockState]) -> Vec<u64> {
    let mut out = Vec::new();
    for b in blocks {
        out.push(b.origin[0] as u64);
        out.push(b.origin[2] as u64);
        for (x, y, z) in b.dims.interior_iter() {
            for c in 0..N_PHASES {
                out.push(b.phi_src.at(c, x, y, z).to_bits());
            }
            for c in 0..N_COMP {
                out.push(b.mu_src.at(c, x, y, z).to_bits());
            }
        }
    }
    out
}

fn run_case(
    tag: &str,
    spec: DomainSpec,
    steps: usize,
    ranks: Vec<usize>,
    fault_plans: Vec<FaultPlan>,
) -> ResilientOutcome {
    let root = tmp_root(tag);
    let mut opts = ResilientOpts::new(root.clone());
    opts.cadence = Cadence::EverySteps(4);
    opts.ranks = ranks;
    opts.fault_plans = fault_plans;
    let out = run_resilient(
        ModelParams::ag_al_cu(),
        spec,
        KernelConfig::default(),
        OverlapOptions::default(),
        steps,
        opts,
        init,
    )
    .expect("resilient run must recover");
    let _ = std::fs::remove_dir_all(&root);
    out
}

#[test]
fn kill_and_restore_is_bit_identical() {
    let spec = DomainSpec::directional([16, 16, 12], [2, 2, 1]);
    let steps = 12;

    let clean = run_case("clean", spec, steps, vec![2], Vec::new());
    assert_eq!(clean.attempts, 1, "fault-free run must not restart");

    // Kill rank 1 at step 10 — two steps past the last checkpoint (step 8),
    // so the recovery has to re-execute steps, not just reload them.
    let killed = run_case(
        "killed",
        spec,
        steps,
        vec![2],
        vec![FaultPlan::new(7).kill(1, 10)],
    );
    assert_eq!(
        killed.attempts, 2,
        "the kill must force exactly one restart"
    );
    assert_eq!(killed.failures.len(), 1);
    let (dead_rank, msg) = &universe_dead(&killed.failures[0])[0];
    assert_eq!(*dead_rank, 1, "rank 1 was killed, got: {msg}");
    assert!(msg.contains("fault injection"), "unexpected death: {msg}");

    assert_eq!(clean.time.to_bits(), killed.time.to_bits());
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&killed.blocks),
        "restored run diverged from the uninterrupted one"
    );
}

#[test]
fn restore_onto_different_rank_count_is_bit_identical() {
    // Block files are keyed by global block id, so a set written by 4 ranks
    // restores onto 2 (same block decomposition, different ownership).
    let spec = DomainSpec::directional([16, 16, 12], [2, 2, 1]);
    let steps = 12;

    let clean = run_case("clean4", spec, steps, vec![4], Vec::new());
    let killed = run_case(
        "rescale",
        spec,
        steps,
        vec![4, 2],
        vec![FaultPlan::new(3).kill(3, 9)],
    );
    assert_eq!(killed.attempts, 2);
    assert_eq!(universe_dead(&killed.failures[0])[0].0, 3);

    assert_eq!(clean.time.to_bits(), killed.time.to_bits());
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&killed.blocks),
        "restore onto a different rank count diverged"
    );
}

/// A rank killed *inside* a collective health scan (PR 4's allreduce) must
/// surface as a typed universe failure on the survivors — not a hang — and
/// the classic restart path must still complete the run.
#[test]
fn rank_death_during_health_scan_is_a_typed_error_not_a_hang() {
    with_watchdog(120, "health-scan kill", || {
        let spec = DomainSpec::directional([16, 16, 12], [2, 2, 1]);
        let root = tmp_root("phase_hs");
        let mut opts = ResilientOpts::new(root.clone());
        opts.cadence = Cadence::EverySteps(4);
        opts.ranks = vec![2];
        let mut health = HealthConfig::for_params(&ModelParams::ag_al_cu());
        health.every = 3;
        opts.recovery = RecoveryPolicy::with_health(health);
        opts.fault_plans = vec![FaultPlan::new(11).kill_in_phase(1, FaultPhase::HealthScan, 0)];
        let out = run_resilient(
            ModelParams::ag_al_cu(),
            spec,
            KernelConfig::default(),
            OverlapOptions::default(),
            12,
            opts,
            init,
        )
        .expect("restart after a mid-scan death must recover");
        let _ = std::fs::remove_dir_all(&root);
        assert_eq!(out.attempts, 2, "the mid-scan kill must force one restart");
        let (dead, msg) = &universe_dead(&out.failures[0])[0];
        assert_eq!(*dead, 1, "rank 1 died in the scan, got: {msg}");
        assert!(msg.contains("fault injection"), "unexpected death: {msg}");
    });
}

/// A rank killed *inside* a PR 5 migration epoch must likewise surface as a
/// typed universe failure within the watchdog, and the restart (which
/// replays the same forced migration fault-free) must complete.
#[test]
fn rank_death_during_migration_epoch_is_a_typed_error_not_a_hang() {
    with_watchdog(120, "migration kill", || {
        let spec = DomainSpec::directional([16, 16, 12], [2, 2, 1]);
        let root = tmp_root("phase_mig");
        let mut opts = ResilientOpts::new(root.clone());
        opts.cadence = Cadence::EverySteps(4);
        opts.ranks = vec![2];
        // Static placement is [0,0,1,1]; the forced swap at step 2 opens a
        // migration epoch for every block.
        opts.rebalance =
            Some(RebalancePolicy::new(0, f64::INFINITY).with_forced_plan(2, vec![1, 1, 0, 0]));
        opts.fault_plans = vec![FaultPlan::new(17).kill_in_phase(1, FaultPhase::Migration, 0)];
        let out = run_resilient(
            ModelParams::ag_al_cu(),
            spec,
            KernelConfig::default(),
            OverlapOptions::default(),
            12,
            opts,
            init,
        )
        .expect("restart after a mid-migration death must recover");
        let _ = std::fs::remove_dir_all(&root);
        assert_eq!(out.attempts, 2);
        let (dead, msg) = &universe_dead(&out.failures[0])[0];
        assert_eq!(*dead, 1, "rank 1 died mid-migration, got: {msg}");
        assert!(msg.contains("fault injection"), "unexpected death: {msg}");
    });
}

/// The tentpole property: a run that loses a rank mid-flight and
/// shrink-continues on the survivors is bit-identical to the uninterrupted
/// run — across kill steps, fault seeds, and both lost-state sources (disk
/// checkpoint set, buddy RAM replicas). Since bit-identity is placement-
/// and rank-count-invariant (pinned by the restore tests above), this also
/// certifies equality with a clean restart from the same checkpoint at the
/// survivor rank count.
#[test]
fn shrink_and_continue_is_bit_identical_to_the_clean_run() {
    let spec = DomainSpec::directional([16, 16, 12], [2, 2, 1]);
    let steps = 12;
    let clean = run_case("shrink_clean", spec, steps, vec![3], Vec::new());
    assert_eq!(clean.attempts, 1);

    for source in [ShrinkSource::Disk, ShrinkSource::Buddy] {
        for (seed, kill_step) in [(5u64, 6u64), (9, 10)] {
            let tag = format!("shrink_{source:?}_{seed}_{kill_step}").to_lowercase();
            let name = tag.clone();
            let inner_name = tag.clone();
            let clean_time = clean.time;
            let clean_fp = fingerprint(&clean.blocks);
            let out = with_watchdog(180, &name, move || {
                let root = tmp_root(&tag);
                let mut opts = ResilientOpts::new(root.clone());
                opts.cadence = Cadence::EverySteps(4);
                opts.ranks = vec![3];
                opts.max_attempts = 1; // recovery must happen *within* the attempt
                opts.fault_plans = vec![FaultPlan::new(seed).kill(1, kill_step)];
                opts.shrink = Some(ShrinkPolicy::new(source));
                let out = run_resilient(
                    ModelParams::ag_al_cu(),
                    spec,
                    KernelConfig::default(),
                    OverlapOptions::default(),
                    steps,
                    opts,
                    init,
                )
                .unwrap_or_else(|e| panic!("{inner_name} must shrink-continue: {e}"));
                let _ = std::fs::remove_dir_all(&root);
                out
            });
            assert_eq!(out.attempts, 1, "{name}: no restart allowed");
            assert_eq!(out.shrinks, 1, "{name}: exactly one death absorbed");
            assert_eq!(out.survivors, vec![0, 2], "{name}: rank 1 was killed");
            assert_eq!(clean_time.to_bits(), out.time.to_bits(), "{name}: time");
            assert_eq!(
                clean_fp,
                fingerprint(&out.blocks),
                "{name}: shrink-continued state diverged from the clean run"
            );
        }
    }
}

/// A second death injected *inside* the membership-recovery round, with a
/// shrink budget of one, must escalate with a typed
/// [`RankFailure::ShrinkExhausted`] — never a hang.
#[test]
fn second_death_inside_recovery_escalates_with_a_typed_error() {
    with_watchdog(120, "second death in recovery", || {
        let spec = DomainSpec::directional([16, 16, 12], [2, 2, 1]);
        let root = tmp_root("shrink_double");
        let mut opts = ResilientOpts::new(root.clone());
        opts.cadence = Cadence::EverySteps(4);
        opts.ranks = vec![3];
        opts.max_attempts = 1;
        opts.fault_plans =
            vec![FaultPlan::new(13)
                .kill(1, 6)
                .kill_in_phase(2, FaultPhase::Recovery, 0)];
        opts.shrink = Some(ShrinkPolicy::new(ShrinkSource::Disk)); // max_shrinks = 1
        let err = run_resilient(
            ModelParams::ag_al_cu(),
            spec,
            KernelConfig::default(),
            OverlapOptions::default(),
            12,
            opts,
            init,
        )
        .expect_err("a second death must exhaust the shrink budget");
        let _ = std::fs::remove_dir_all(&root);
        let ResilientError::Exhausted { failures, .. } = err else {
            panic!("expected exhaustion, got: {err}");
        };
        let AttemptFailure::Ranks(ranks) = &failures[0] else {
            panic!("expected typed rank failures, got: {}", failures[0]);
        };
        assert!(
            ranks
                .iter()
                .any(|r| matches!(r, RankFailure::ShrinkExhausted { shrinks: 2, .. })),
            "expected ShrinkExhausted with 2 deaths, got: {ranks:?}"
        );
    });
}

#[test]
fn auto_cadence_keeps_checkpoint_overhead_within_budget() {
    let root = tmp_root("cadence");
    let budget = 0.10; // allow 10 % of runtime for checkpoint writes
    let steps = 1000;
    let spec = DomainSpec::directional([8, 8, 8], [1, 1, 1]);
    let root_in = root.clone();

    let out = Universe::run(1, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            ModelParams::ag_al_cu(),
            Decomposition::new(spec),
            KernelConfig::default(),
            OverlapOptions::default(),
        );
        sim.init_blocks(init);
        let mut sched = CheckpointCadence::new(budget);
        let wall = Instant::now();
        // The first checkpoint (interval 1) is the measuring probe; only
        // overhead after the interval has been planned is charged against
        // the budget.
        let mut planned_ckpt_secs = 0.0f64;
        let mut checkpoints = 0usize;
        while sim.step_index() < steps {
            let t0 = Instant::now();
            sim.step();
            sched.observe_step(t0.elapsed());
            if sim.step_index() < steps && sched.due(sim.step_index()) {
                let t0 = Instant::now();
                sim.write_checkpoint_set(&root_in, Precision::F32)
                    .expect("checkpoint write");
                let cost = t0.elapsed();
                if checkpoints > 0 {
                    planned_ckpt_secs += cost.as_secs_f64();
                }
                checkpoints += 1;
                sched.observe_checkpoint(&rank, cost, sim.step_index());
            }
        }
        let total = wall.elapsed().as_secs_f64();
        let snap = sim.telemetry().metrics_snapshot();
        (
            planned_ckpt_secs,
            total,
            checkpoints,
            sched.interval(),
            snap,
        )
    });
    let (planned_ckpt_secs, total, checkpoints, interval, snap) = out.into_iter().next().unwrap();
    let _ = std::fs::remove_dir_all(&root);

    // Checkpoint cost is observable through telemetry counters.
    assert!(snap.counters["ckpt/sets_written"] >= 1);
    assert!(snap.counters["ckpt/bytes_written"] > 0);
    assert!(snap.counters["ckpt/wall_ns"] > 0);

    // The probe at interval 1 must have fired, and the re-planned interval
    // stays a valid schedule. (The exact interval value depends on wall
    // clocks, so the deterministic interval arithmetic is unit-tested in
    // `pfio::resilient` with synthetic durations; here we only pin the
    // wall-clock-facing property: the realized overhead honours the
    // budget.)
    assert!(
        checkpoints >= 1,
        "the measuring probe checkpoint never fired"
    );
    assert!(interval >= 1);
    // Budget check with generous slack for wall-clock noise on shared CI.
    let overhead = planned_ckpt_secs / total.max(1e-9);
    assert!(
        overhead <= budget * 4.0,
        "measured checkpoint overhead {overhead:.3} blew the {budget} budget \
         ({checkpoints} checkpoints, interval {interval}, {total:.3}s total)"
    );
}

/// Campaign shrink-and-continue: a rank killed mid-campaign under a
/// [`ShrinkPolicy`] must not take its jobs down with it — the survivors
/// deterministically adopt the dead rank's jobs from their per-job
/// checkpoint namespaces and the whole fleet completes with checksums
/// bit-equal to an undisturbed campaign.
#[test]
fn campaign_survives_a_rank_death_with_all_job_checksums_intact() {
    use eutectica_campaign::{run_campaign, CampaignOpts, CampaignSpec, JobStatus};
    use eutectica_comm::UniverseCfg;

    let spec = CampaignSpec::around(ModelParams::ag_al_cu(), [8, 8, 12], 12, (1..=8).collect());
    let campaign_opts = |root: PathBuf| CampaignOpts {
        slice_steps: 3,
        ckpt_root: Some(root),
        ckpt_every: 2,
        keep_sets: 3,
        shrink: Some(ShrinkPolicy::new(ShrinkSource::Disk)),
        ..CampaignOpts::default()
    };

    // Undisturbed reference fleet on 3 ranks.
    let clean_root = tmp_root("camp_clean");
    let spec_c = spec.clone();
    let opts_c = campaign_opts(clean_root.clone());
    let clean = with_watchdog(120, "clean campaign", move || {
        Universe::run(3, move |rank| {
            run_campaign(&rank, &spec_c, &opts_c).unwrap()
        })
    });
    let clean_fleet = clean
        .iter()
        .find_map(|r| r.fleet.clone())
        .expect("collector fleet");
    let clean_sums: std::collections::BTreeMap<u32, u64> = clean_fleet
        .jobs
        .iter()
        .map(|j| (j.job, j.checksum))
        .collect();
    assert_eq!(clean_sums.len(), 8);
    let _ = std::fs::remove_dir_all(&clean_root);

    // Chaos fleet: rank 2 is killed at the start of round 2, after round 1
    // wrote per-job checkpoints. Rank 0 (the collector) and rank 1 must
    // absorb the death, adopt rank 2's jobs, and finish everything.
    let chaos_root = tmp_root("camp_chaos");
    let spec_k = spec.clone();
    let opts_k = campaign_opts(chaos_root.clone());
    let outcome = with_watchdog(180, "campaign under rank death", move || {
        Universe::run_surviving(
            3,
            UniverseCfg::with_timeout(Duration::from_secs(120))
                .with_faults(FaultPlan::new(13).kill(2, 2)),
            move |rank| run_campaign(&rank, &spec_k, &opts_k).unwrap(),
        )
    });
    let dead: Vec<usize> = outcome.dead.iter().map(|(r, _)| *r).collect();
    assert_eq!(dead, vec![2], "exactly rank 2 dies");
    let survivors: Vec<_> = outcome.results.into_iter().flatten().collect();
    assert_eq!(survivors.len(), 2, "both survivors finish the campaign");

    let fleet = survivors
        .iter()
        .find_map(|r| r.fleet.clone())
        .expect("surviving collector fleet");
    assert_eq!(fleet.jobs.len(), 8, "no job was lost with the dead rank");
    for rec in &fleet.jobs {
        assert_eq!(rec.status, "done", "job {}", rec.job);
        assert_eq!(
            rec.checksum, clean_sums[&rec.job],
            "job {} diverged after adoption",
            rec.job
        );
    }
    // Survivors hold all 8 jobs locally, each completed, and report the
    // absorbed death.
    let mut local_keys: Vec<u32> = Vec::new();
    for r in &survivors {
        assert!(r.shrinks >= 1, "survivor never observed the shrink");
        for l in &r.local {
            assert_eq!(l.status, JobStatus::Done, "job {}", l.key);
            assert_eq!(l.checksum, clean_sums[&l.key], "job {}", l.key);
            local_keys.push(l.key);
        }
    }
    local_keys.sort_unstable();
    assert_eq!(local_keys, (0..8).collect::<Vec<u32>>());
    let _ = std::fs::remove_dir_all(&chaos_root);
}
