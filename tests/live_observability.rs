//! Integration: the live observability plane.
//!
//! - **Inertness**: attaching the full plane (in-situ observer + NDJSON
//!   endpoint + live TCP subscribers) leaves the φ/µ fields bit-identical
//!   to an unobserved run, for serial and threaded sweeps.
//! - **Bounded lag**: a never-drained subscriber accumulates exact drop
//!   counts at the simulation level; a stalled TCP client never stalls the
//!   time loop (wall-clock acceptance test, run explicitly).
//! - **Endpoint**: a plain TCP client decodes at least one observable and
//!   one slice frame from a live run.
//! - **Comparator**: `bench_compare` exits nonzero on a synthetic ≥15%
//!   MLUP/s regression, zero within the noise band or with `--report-only`.

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{DistributedSim, OverlapOptions};
use eutectica_core::{N_COMP, N_PHASES};
use eutectica_obsv::{FrameBus, InSituObserver, LiveServer, ObservablesConfig, Trajectory};

const CELLS: [usize; 3] = [16, 16, 24];
const STEPS: usize = 12;
const OBSERVE_EVERY: usize = 3;

fn init(b: &mut BlockState) {
    let seeds = eutectica_core::init::VoronoiSeeds::generate([16, 16], 5, [0.34, 0.33, 0.33], 41);
    eutectica_core::init::init_directional_block(b, &seeds, 5);
}

/// Reassemble the global interior φ/µ fields from per-rank blocks.
fn assemble(out: &[Vec<BlockState>], cells: [usize; 3]) -> (Vec<f64>, Vec<f64>) {
    let n = cells[0] * cells[1] * cells[2];
    let mut phi = vec![0.0; n * N_PHASES];
    let mut mu = vec![0.0; n * N_COMP];
    for blocks in out {
        for b in blocks {
            let d = b.dims;
            let g = d.ghost;
            for z in 0..d.nz {
                for y in 0..d.ny {
                    for x in 0..d.nx {
                        let (gx, gy, gz) = (b.origin[0] + x, b.origin[1] + y, b.origin[2] + z);
                        let gi = (gz * cells[1] + gy) * cells[0] + gx;
                        for c in 0..N_PHASES {
                            phi[c * n + gi] = b.phi_src.at(c, x + g, y + g, z + g);
                        }
                        for c in 0..N_COMP {
                            mu[c * n + gi] = b.mu_src.at(c, x + g, y + g, z + g);
                        }
                    }
                }
            }
        }
    }
    (phi, mu)
}

/// Run the reference workload on 2 ranks. With `observed`, rank 0 attaches
/// the full plane — observer, NDJSON endpoint, and two live TCP clients —
/// while the other rank drives the same collective observation cadence.
fn run(threads: usize, observed: bool) -> (Vec<f64>, Vec<f64>) {
    let out = eutectica_comm::Universe::run(2, move |rank| {
        let params = ModelParams::ag_al_cu();
        let decomp = Decomposition::new(DomainSpec::directional(CELLS, [1, 1, 2]));
        let mut sim = DistributedSim::new(
            &rank,
            params,
            decomp,
            KernelConfig::default(),
            OverlapOptions::default(),
        );
        sim.set_threads(threads);
        sim.init_blocks(init);
        if !observed {
            sim.step_n(STEPS);
            return std::mem::take(&mut sim.blocks);
        }

        let mut observer = InSituObserver::new(ObservablesConfig::with_every(OBSERVE_EVERY));
        let mut server = None;
        let mut clients = Vec::new();
        if rank.rank() == 0 {
            let bus = Arc::new(FrameBus::new(8));
            let srv = LiveServer::bind("127.0.0.1:0", bus.clone()).expect("bind endpoint");
            let addr = srv.local_addr();
            for _ in 0..2 {
                clients.push(std::thread::spawn(move || {
                    // Read until the hello frame plus one published frame
                    // arrive (the writer thread flushes asynchronously).
                    let s = std::net::TcpStream::connect(addr).expect("connect endpoint");
                    s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
                    let mut r = std::io::BufReader::new(s);
                    let mut lines = 0usize;
                    let mut buf = String::new();
                    let deadline = Instant::now() + Duration::from_secs(15);
                    while lines < 2 && Instant::now() < deadline {
                        buf.clear();
                        match r.read_line(&mut buf) {
                            Ok(0) => break,
                            Ok(_) => lines += 1,
                            Err(_) => {} // read timeout: check the deadline
                        }
                    }
                    lines
                }));
            }
            let t = Instant::now();
            while bus.stats().subscribers < 2 {
                assert!(
                    t.elapsed() < Duration::from_secs(10),
                    "clients failed to subscribe"
                );
                std::thread::yield_now();
            }
            observer = observer.with_bus(bus);
            server = Some(srv);
        }
        sim.step_n_with(STEPS, |sim| {
            observer.observe_distributed(sim);
        });
        if rank.rank() == 0 {
            assert_eq!(observer.records().len(), STEPS / OBSERVE_EVERY);
            for c in clients {
                let lines = c.join().expect("client thread");
                // At least the hello frame plus one published frame.
                assert!(lines >= 2, "live client saw only {lines} line(s)");
            }
            server.unwrap().shutdown();
        }
        std::mem::take(&mut sim.blocks)
    });
    assemble(&out, CELLS)
}

fn assert_bit_identical(label: &str, reference: &[f64], observed: &[f64]) {
    assert_eq!(reference.len(), observed.len());
    for (i, (a, b)) in reference.iter().zip(observed).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{label}[{i}] differs with the observability plane attached: {a:e} vs {b:e}"
        );
    }
}

#[test]
fn observability_plane_is_bit_inert_serial() {
    let (phi_off, mu_off) = run(1, false);
    let (phi_on, mu_on) = run(1, true);
    assert_bit_identical("phi", &phi_off, &phi_on);
    assert_bit_identical("mu", &mu_off, &mu_on);
}

#[test]
fn observability_plane_is_bit_inert_threaded() {
    let (phi_off, mu_off) = run(2, false);
    let (phi_on, mu_on) = run(2, true);
    assert_bit_identical("phi", &phi_off, &phi_on);
    assert_bit_identical("mu", &mu_off, &mu_on);
}

#[test]
fn sim_level_drop_counters_are_exact() {
    // One frame per observation (no slices, no metrics frames), bus
    // capacity 2, and a subscriber that never drains: of the 6 published
    // frames exactly 2 queue and exactly 4 drop — counted precisely.
    eutectica_comm::Universe::run(1, |rank| {
        let params = ModelParams::ag_al_cu();
        let decomp = Decomposition::new(DomainSpec::directional(CELLS, [1, 1, 1]));
        let mut sim = DistributedSim::new(
            &rank,
            params,
            decomp,
            KernelConfig::default(),
            OverlapOptions::default(),
        );
        sim.init_blocks(init);
        let bus = Arc::new(FrameBus::new(2));
        let sub = bus.subscribe();
        let cfg = ObservablesConfig {
            every: 2,
            slice_every: 0,
            slice_fields: vec![],
            slice_downsample: 2,
            lamella_offset: 4,
            metrics: false,
        };
        let mut observer = InSituObserver::new(cfg).with_bus(bus.clone());
        sim.step_n_with(STEPS, |sim| {
            observer.observe_distributed(sim);
        });
        let stats = bus.stats();
        assert_eq!(stats.published, 6, "observations at steps 2,4,..,12");
        assert_eq!(stats.sent, 2, "bounded queue holds exactly its capacity");
        assert_eq!(stats.dropped, 4, "every overflow frame counted");
        assert_eq!(sub.sent(), 2);
        assert_eq!(sub.dropped(), 4);
    });
}

#[test]
fn endpoint_streams_decodable_observables_and_slices() {
    eutectica_comm::Universe::run(1, |rank| {
        let params = ModelParams::ag_al_cu();
        let decomp = Decomposition::new(DomainSpec::directional(CELLS, [1, 1, 1]));
        let mut sim = DistributedSim::new(
            &rank,
            params,
            decomp,
            KernelConfig::default(),
            OverlapOptions::default(),
        );
        sim.init_blocks(init);
        let bus = Arc::new(FrameBus::new(64));
        let mut server = LiveServer::bind("127.0.0.1:0", bus.clone()).expect("bind endpoint");
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let client = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let s = std::net::TcpStream::connect(addr).expect("connect endpoint");
                s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
                let mut r = std::io::BufReader::new(s);
                let mut lines = Vec::new();
                let mut buf = String::new();
                while !stop.load(Ordering::Relaxed) {
                    buf.clear();
                    match r.read_line(&mut buf) {
                        Ok(0) => break,
                        Ok(_) => lines.push(buf.trim().to_string()),
                        Err(_) => {}
                    }
                }
                lines
            })
        };
        let t = Instant::now();
        while bus.stats().subscribers < 1 {
            assert!(
                t.elapsed() < Duration::from_secs(10),
                "client never subscribed"
            );
            std::thread::yield_now();
        }
        let mut observer =
            InSituObserver::new(ObservablesConfig::with_every(OBSERVE_EVERY)).with_bus(bus);
        sim.step_n_with(STEPS, |sim| {
            observer.observe_distributed(sim);
        });
        // Give the writer thread a moment to flush the queued frames.
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        let lines = client.join().expect("client thread");
        server.shutdown();

        let mut observables = 0;
        let mut slices = 0;
        for line in &lines {
            let v = eutectica_obsv::json::parse(line)
                .unwrap_or_else(|e| panic!("client received invalid JSON ({e}): {line}"));
            match v.get("type").and_then(|t| t.as_str()) {
                Some("observable") => {
                    assert!(v.get("front_mean").and_then(|x| x.as_f64()).is_some());
                    observables += 1;
                }
                Some("slice") => {
                    let w = v.get("w").and_then(|x| x.as_u64()).unwrap() as usize;
                    let h = v.get("h").and_then(|x| x.as_u64()).unwrap() as usize;
                    let data = v.get("data").and_then(|x| x.as_arr()).unwrap();
                    assert_eq!(data.len(), w * h, "slice frame data extent");
                    slices += 1;
                }
                _ => {} // hello / metrics frames
            }
        }
        assert!(observables >= 1, "no observable frame decoded: {lines:?}");
        assert!(slices >= 1, "no slice frame decoded");
    });
}

#[test]
fn comparator_flags_synthetic_regression_via_exit_code() {
    let dir = std::env::temp_dir().join(format!("eutectica_cmp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = |name: &str| dir.join(name).to_string_lossy().into_owned();

    let mut base = Trajectory::new("baseline");
    base.push("mu_mlups_simd_tz_buf", 100.0, "MLUP/s", true);
    base.push("ghost_exchange_mb_s", 500.0, "MB/s", true);
    base.write(&path("base.json")).unwrap();

    // 20% MLUP/s regression — beyond the 15% noise band.
    let mut cur = Trajectory::new("current");
    cur.push("mu_mlups_simd_tz_buf", 80.0, "MLUP/s", true);
    cur.push("ghost_exchange_mb_s", 510.0, "MB/s", true);
    cur.write(&path("cur.json")).unwrap();

    let bin = env!("CARGO_BIN_EXE_bench_compare");
    let run = |args: &[&str]| std::process::Command::new(bin).args(args).output().unwrap();

    let out = run(&[
        &path("base.json"),
        &path("cur.json"),
        "--noise-band",
        "0.15",
    ]);
    assert!(!out.status.success(), "regression must fail the gate");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("REGRESSION"),
        "report names the regression: {text}"
    );

    let out = run(&[
        &path("base.json"),
        &path("cur.json"),
        "--noise-band",
        "0.15",
        "--report-only",
    ]);
    assert!(out.status.success(), "--report-only never gates");

    let out = run(&[
        &path("base.json"),
        &path("base.json"),
        "--noise-band",
        "0.15",
    ]);
    assert!(out.status.success(), "identical trajectories pass");

    std::fs::remove_dir_all(&dir).ok();
}

/// ISSUE acceptance: a stalled TCP subscriber adds < 2% per-step wall time
/// on the fig7 workload (SimdTzBuf, 2 ranks). Wall-clock sensitive, so run
/// explicitly: `cargo test --release --test live_observability -- --ignored`.
#[test]
#[ignore = "wall-clock acceptance measurement; run explicitly"]
fn stalled_subscriber_overhead_under_two_percent() {
    use eutectica_core::kernels::OptLevel;

    fn fig7_walltime(stalled: bool) -> f64 {
        let out = eutectica_comm::Universe::run(2, move |rank| {
            let params = ModelParams::ag_al_cu();
            let decomp = Decomposition::new(DomainSpec::directional([40, 20, 20], [2, 1, 1]));
            let mut sim = DistributedSim::new(
                &rank,
                params,
                decomp,
                OptLevel::SimdTzBuf.config(),
                OverlapOptions::default(),
            );
            sim.init_blocks(|b| eutectica_core::init::init_planar_front(b, 0, 6));
            let mut observer = InSituObserver::new(ObservablesConfig::with_every(5));
            let mut server = None;
            let mut stalled_conn = None;
            if rank.rank() == 0 {
                let bus = Arc::new(FrameBus::new(4));
                let srv = LiveServer::bind("127.0.0.1:0", bus.clone()).expect("bind endpoint");
                if stalled {
                    // Connect and never read a byte: the kernel buffers
                    // fill, the writer thread blocks, the bounded queue
                    // overflows — and the time loop must not care.
                    let conn =
                        std::net::TcpStream::connect(srv.local_addr()).expect("connect endpoint");
                    let t = Instant::now();
                    while bus.stats().subscribers < 1 {
                        assert!(t.elapsed() < Duration::from_secs(10));
                        std::thread::yield_now();
                    }
                    stalled_conn = Some(conn);
                }
                observer = observer.with_bus(bus);
                server = Some(srv);
            }
            let t = Instant::now();
            sim.step_n_with(40, |sim| {
                observer.observe_distributed(sim);
            });
            let wall = t.elapsed().as_secs_f64();
            drop(stalled_conn);
            if let Some(mut srv) = server {
                srv.shutdown();
            }
            wall
        });
        out.into_iter().fold(0.0, f64::max)
    }

    // Warmup, then best-of-5 for both configurations (1-core containers
    // are noisy; the minimum is the least-disturbed run).
    fig7_walltime(false);
    fig7_walltime(true);
    let base = (0..5)
        .map(|_| fig7_walltime(false))
        .fold(f64::MAX, f64::min);
    let with_stall = (0..5).map(|_| fig7_walltime(true)).fold(f64::MAX, f64::min);
    let overhead = with_stall / base - 1.0;
    println!(
        "per-step wall: base {base:.4}s, stalled subscriber {with_stall:.4}s ({:+.2}%)",
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "stalled subscriber added {:.1}% per-step wall time (budget 2%)",
        overhead * 100.0
    );
}
