//! Integration: silent-corruption defense. Seeded bit-flips and NaNs
//! injected into φ/µ must be detected by the periodic health scans within
//! one scan cadence, recovered by an in-flight rollback (no universe
//! teardown), and the recovered run must finish bit-identical to an
//! uninjected one. Poisoned checkpoint sets (written after the corruption)
//! and sets corrupted on disk must be skipped in favour of older valid
//! ones, and an exhausted rollback budget must escalate to a full restart
//! through a typed per-rank failure.

use std::path::PathBuf;

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_comm::Universe;
use eutectica_core::health::{
    FaultKind, FieldFault, FieldFaultPlan, FieldTarget, HealthConfig, HealthMonitor,
};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{DistributedSim, OverlapOptions};
use eutectica_core::{N_COMP, N_PHASES};
use eutectica_pfio::ckpt;
use eutectica_pfio::resilient::{
    run_resilient, AttemptFailure, Cadence, RankFailure, RecoveryPolicy, ResilientOpts,
    ResilientOutcome,
};
use proptest::prelude::*;

fn init(b: &mut BlockState) {
    let seeds = eutectica_core::init::VoronoiSeeds::generate([16, 16], 4, [0.34, 0.33, 0.33], 42);
    eutectica_core::init::init_directional_block(b, &seeds, 5);
}

/// Fresh per-test scratch directory (removed before and after use).
fn tmp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("eut_ff_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Exact bit pattern of every interior φ/µ value plus block origins, in
/// global block-id order — equal fingerprints mean bit-identical states.
fn fingerprint(blocks: &[BlockState]) -> Vec<u64> {
    let mut out = Vec::new();
    for b in blocks {
        out.push(b.origin[0] as u64);
        out.push(b.origin[2] as u64);
        for (x, y, z) in b.dims.interior_iter() {
            for c in 0..N_PHASES {
                out.push(b.phi_src.at(c, x, y, z).to_bits());
            }
            for c in 0..N_COMP {
                out.push(b.mu_src.at(c, x, y, z).to_bits());
            }
        }
    }
    out
}

/// 2×2×1-block directional spec shared by the recovery cases.
fn spec() -> DomainSpec {
    DomainSpec::directional([16, 16, 12], [2, 2, 1])
}

/// Options with health scans at `scan_every` and checkpoints at `cadence`.
fn recovery_opts(root: PathBuf, cadence: usize, scan_every: usize) -> ResilientOpts {
    let mut opts = ResilientOpts::new(root);
    opts.cadence = Cadence::EverySteps(cadence);
    opts.recovery = RecoveryPolicy::with_health(
        HealthConfig::for_params(&ModelParams::ag_al_cu()).with_every(scan_every),
    );
    opts
}

fn run_with(opts: ResilientOpts, steps: usize) -> Result<ResilientOutcome, String> {
    run_resilient(
        ModelParams::ag_al_cu(),
        spec(),
        KernelConfig::default(),
        OverlapOptions::default(),
        steps,
        opts,
        init,
    )
    .map_err(|e| e.to_string())
}

/// NaN into φ component 0 of block 0 just before step `step` runs.
fn phi_nan_at(step: u64) -> FieldFaultPlan {
    FieldFaultPlan::new(0).inject(FieldFault {
        step,
        block: 0,
        cell: [3, 4, 5],
        target: FieldTarget::Phi(0),
        kind: FaultKind::Nan,
    })
}

#[test]
fn injected_nan_is_rolled_back_to_a_bit_identical_finish() {
    let steps = 12;

    let root = tmp_root("clean");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    let clean = run_with(opts, steps).expect("clean run");
    let _ = std::fs::remove_dir_all(&root);
    assert_eq!(clean.attempts, 1);
    assert_eq!(clean.rollbacks, 0, "clean run must not trip the scans");

    // NaN fires before step 9→10; the scan at step 10 (cadence 2) detects
    // it, and the rollback lands on the step-8 set (cadence 4).
    let root = tmp_root("nan");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    opts.recovery.field_fault_plans = vec![phi_nan_at(9)];
    let hurt = run_with(opts, steps).expect("recovered run");
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(hurt.attempts, 1, "recovery must stay in-flight, no restart");
    assert_eq!(hurt.rollbacks, 1, "exactly one rollback expected");
    assert_eq!(hurt.restore_skips, 0, "the step-8 set predates the fault");
    assert_eq!(clean.time.to_bits(), hurt.time.to_bits());
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&hurt.blocks),
        "recovered run diverged from the uninjected one"
    );
}

#[test]
fn threaded_detection_and_recovery_match_the_serial_run() {
    let steps = 12;

    let root = tmp_root("t_clean");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    let clean = run_with(opts, steps).expect("clean serial run");
    let _ = std::fs::remove_dir_all(&root);

    let root = tmp_root("t_nan");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    opts.threads = 2;
    opts.recovery.field_fault_plans = vec![phi_nan_at(9)];
    let hurt = run_with(opts, steps).expect("threaded recovered run");
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(hurt.attempts, 1);
    assert_eq!(hurt.rollbacks, 1, "threaded scans must detect identically");
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&hurt.blocks),
        "multi-thread recovery diverged from the serial clean run"
    );
}

#[test]
fn poisoned_checkpoint_sets_are_skipped_in_favour_of_older_valid_ones() {
    // Checkpoints every 2 steps but scans only every 6: the NaN injected
    // before step 3→4 lands *inside* the step-4 set before the step-6 scan
    // sees it. The rollback must reject the poisoned step-4 set (restores
    // fine, scans unhealthy) and descend to the clean step-2 set.
    let steps = 12;

    let root = tmp_root("p_clean");
    let mut opts = recovery_opts(root.clone(), 2, 6);
    opts.ranks = vec![2];
    let clean = run_with(opts, steps).expect("clean run");
    let _ = std::fs::remove_dir_all(&root);

    let root = tmp_root("poison");
    let mut opts = recovery_opts(root.clone(), 2, 6);
    opts.ranks = vec![2];
    opts.recovery.field_fault_plans = vec![phi_nan_at(3)];
    let hurt = run_with(opts, steps).expect("recovered run");
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(hurt.attempts, 1);
    assert_eq!(hurt.rollbacks, 1);
    assert_eq!(
        hurt.restore_skips, 1,
        "the poisoned step-4 set must be skipped exactly once"
    );
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&hurt.blocks),
        "recovery through a poisoned set diverged"
    );
}

#[test]
fn exhausted_rollback_budget_escalates_to_a_typed_restart() {
    // Two faults but budget for one rollback: the second unhealthy verdict
    // must end the attempt with RollbackExhausted (not a panic, not a
    // deadlock), and the fault-free second attempt completes the run.
    let steps = 12;
    let root = tmp_root("exhaust");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    opts.max_attempts = 2;
    opts.recovery.max_rollbacks = 1;
    opts.recovery.field_fault_plans = vec![phi_nan_at(5).inject(phi_nan_at(7).faults()[0])];
    let out = run_with(opts, steps).expect("second attempt must finish");
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(out.attempts, 2, "escalation must consume one extra attempt");
    assert_eq!(out.failures.len(), 1);
    match &out.failures[0] {
        AttemptFailure::Ranks(rs) => {
            assert_eq!(rs.len(), 2, "every rank reports the same typed failure");
            for r in rs {
                assert!(
                    matches!(r, RankFailure::RollbackExhausted { rollbacks: 2, .. }),
                    "unexpected rank failure: {r}"
                );
            }
        }
        other => panic!("expected typed rank failures, got: {other}"),
    }
    assert_eq!(out.rollbacks, 0, "the successful attempt was fault-free");
}

#[test]
fn on_disk_corruption_of_the_newest_set_falls_back_to_the_previous_one() {
    // Phase 1: a clean run leaves sets at steps 4 and 8 behind.
    let root = tmp_root("disk");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    run_with(opts, 12).expect("seeding run");

    // Flip one payload byte of a block file in the newest (step-8) set.
    let (step, dir) = ckpt::find_latest_checkpoint(&root).unwrap().unwrap();
    assert_eq!(step, 8);
    let victim = dir.join(ckpt::block_file_name(0));
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, bytes).unwrap();

    // Phase 2: resume towards step 16. The CRC-failing step-8 set must be
    // skipped (typed, per-rank consistent — not a rank-closure panic) and
    // the run resumes from step 4.
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    let resumed = run_with(opts, 16).expect("resume past the corrupt set");
    let _ = std::fs::remove_dir_all(&root);
    assert_eq!(resumed.attempts, 1, "corrupt set must not cost an attempt");
    assert!(
        resumed.restore_skips >= 1,
        "the corrupt set was not skipped"
    );

    // The trajectory from the step-4 set is the clean trajectory.
    let root = tmp_root("disk_clean");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    let clean = run_with(opts, 16).expect("clean reference");
    let _ = std::fs::remove_dir_all(&root);
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&resumed.blocks),
        "resume through a corrupt set diverged"
    );
}

#[test]
fn retention_keeps_only_the_newest_valid_sets() {
    let root = tmp_root("retain");
    let mut opts = recovery_opts(root.clone(), 2, 4);
    opts.ranks = vec![2];
    opts.retain_sets = Some(2);
    run_with(opts, 12).expect("run with retention");

    let dirs: Vec<_> = std::fs::read_dir(&root)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .collect();
    assert_eq!(
        dirs.len(),
        2,
        "retention must leave exactly the two newest sets"
    );
    let (latest, _) = ckpt::find_latest_checkpoint(&root).unwrap().unwrap();
    assert_eq!(latest, 10, "newest retained set is the last one written");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn chaos_seeded_fault_recovers_bit_identically() {
    // CI chaos matrix entry point: the seed comes from the environment so
    // the nightly job can sweep several deterministic corruptions.
    let seed: u64 = std::env::var("EUTECTICA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let steps = 12;

    let root = tmp_root("chaos_clean");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    let clean = run_with(opts, steps).expect("clean run");
    let _ = std::fs::remove_dir_all(&root);

    let root = tmp_root("chaos");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    // NaN is detectable wherever it lands; block/cell/component are
    // seed-derived. Fires before step 9→10, inside checkpointed history.
    opts.recovery.field_fault_plans = vec![FieldFaultPlan::random_fault(
        seed,
        9,
        4,
        [8, 8, 12],
        FaultKind::Nan,
    )];
    let hurt = run_with(opts, steps).expect("seeded recovery");
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(
        hurt.attempts, 1,
        "seed {seed}: recovery must stay in-flight"
    );
    assert_eq!(hurt.rollbacks, 1, "seed {seed}: one rollback expected");
    assert_eq!(
        fingerprint(&clean.blocks),
        fingerprint(&hurt.blocks),
        "seed {seed}: recovered run diverged"
    );
}

#[test]
fn rebalanced_rollback_restores_onto_the_migrated_placement() {
    // Dynamic rebalancing composes with the silent-corruption defense: a
    // forced migration swaps every block between the ranks after step 2, so
    // all later checkpoints are written by the *new* owners; the NaN
    // injected before step 9→10 then forces a rollback to the step-8 set,
    // which must restore onto the migrated placement — and the whole thing
    // must stay bit-identical to a static run that never migrated and never
    // faulted.
    use eutectica_blockgrid::rebalance::RebalancePolicy;
    let steps = 12;

    let root = tmp_root("rb_static");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    let static_clean = run_with(opts, steps).expect("static clean run");
    let _ = std::fs::remove_dir_all(&root);

    // spec() has 4 blocks placed [0,0,1,1] on 2 ranks; swap them all.
    let swap = RebalancePolicy::new(0, f64::INFINITY).with_forced_plan(2, vec![1, 1, 0, 0]);

    let root = tmp_root("rb_clean");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    opts.rebalance = Some(swap.clone());
    let clean = run_with(opts, steps).expect("rebalanced clean run");
    let _ = std::fs::remove_dir_all(&root);
    assert_eq!(clean.rollbacks, 0);
    assert_eq!(
        fingerprint(&static_clean.blocks),
        fingerprint(&clean.blocks),
        "migration alone must not change the physics"
    );

    let root = tmp_root("rb_nan");
    let mut opts = recovery_opts(root.clone(), 4, 2);
    opts.ranks = vec![2];
    opts.rebalance = Some(swap);
    opts.recovery.field_fault_plans = vec![phi_nan_at(9)];
    let hurt = run_with(opts, steps).expect("rebalanced recovered run");
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(hurt.attempts, 1, "recovery must stay in-flight");
    assert_eq!(hurt.rollbacks, 1, "exactly one rollback expected");
    assert_eq!(static_clean.time.to_bits(), hurt.time.to_bits());
    assert_eq!(
        fingerprint(&static_clean.blocks),
        fingerprint(&hurt.blocks),
        "rollback onto the migrated placement diverged from the static run"
    );
}

/// Acceptance gauge: at the default cadence the scan overhead on a 64³
/// single-rank domain stays under 2 % of step wall time. Wall-clock
/// dependent, so ignored by default; the chaos CI job runs it explicitly.
#[test]
#[ignore = "wall-clock acceptance measurement; run explicitly"]
fn scan_overhead_stays_under_two_percent_on_64_cubed() {
    let spec = DomainSpec::directional([64, 64, 64], [1, 1, 1]);
    let fracs = Universe::run(1, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            ModelParams::ag_al_cu(),
            Decomposition::new(spec),
            KernelConfig::default(),
            OverlapOptions::default(),
        );
        sim.init_blocks(init);
        sim.set_health_monitor(Some(HealthMonitor::new(HealthConfig::for_params(
            &ModelParams::ag_al_cu(),
        ))));
        let wall = std::time::Instant::now();
        for _ in 0..8 {
            sim.step();
        }
        let total = wall.elapsed().as_secs_f64();
        let snap = sim.telemetry().metrics_snapshot();
        assert_eq!(snap.counters["health/scans"], 2, "default cadence is 4");
        // Amortized over the cadence: total scan time vs total run time.
        snap.counters["health/scan_wall_ns"] as f64 * 1e-9 / total
    });
    let frac = fracs[0];
    assert!(
        frac < 0.02,
        "health scans took {:.2} % of run wall time at default cadence (budget 2 %)",
        frac * 100.0
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    /// Any single NaN, at any cell / component / step, in either field, is
    /// flagged by the scan cadence within one period: the fault fires
    /// before step k→k+1, so the first scan at step s ≡ 0 (mod every) with
    /// s ≥ k+1 must report unhealthy — and it must do so identically at
    /// every thread count. (NaN is the in-flight guarantee because it
    /// survives the sweeps: a φ NaN enters µ through h(φ), gradients and
    /// dφ/dt, and nothing ever clips µ. Exponent bit-flips on φ are instead
    /// neutralized within one step by the kernels' built-in simplex
    /// projection, so their scan-level detection guarantee — exercised by
    /// the `core::health` unit tests — applies where state is scanned
    /// directly, i.e. checkpoint validation on restore.)
    #[test]
    fn any_single_nan_is_detected_within_one_cadence(
        step in 1u64..5,
        cell in (0usize..8, 0usize..8, 0usize..8),
        phase in 0usize..N_PHASES,
        comp in 0usize..N_COMP,
        pick in 0usize..2,
        threads in 1usize..3,
    ) {
        let fault = FieldFault {
            step,
            block: 0,
            cell: [cell.0, cell.1, cell.2],
            target: match pick {
                1 => FieldTarget::Mu(comp),
                _ => FieldTarget::Phi(phase),
            },
            kind: FaultKind::Nan,
        };
        let every = 2usize;
        let spec = DomainSpec::directional([8, 8, 8], [1, 1, 1]);
        let detected = Universe::run(1, move |rank| {
            let mut sim = DistributedSim::new(
                &rank,
                ModelParams::ag_al_cu(),
                Decomposition::new(spec),
                KernelConfig::default(),
                OverlapOptions::default(),
            );
            sim.set_threads(threads);
            sim.init_blocks(init);
            let cfg = HealthConfig::for_params(&ModelParams::ag_al_cu()).with_every(every);
            sim.set_health_monitor(Some(
                HealthMonitor::new(cfg).with_faults(FieldFaultPlan::new(0).inject(fault)),
            ));
            let mut detected_at = None;
            for _ in 0..8 {
                sim.step();
                if detected_at.is_none() && sim.take_unhealthy_report().is_some() {
                    detected_at = Some(sim.step_index());
                }
            }
            detected_at
        });
        let detected_at = detected[0];
        // First scan at or after step+1, on the cadence grid.
        let expect = (step as usize + 1).next_multiple_of(every);
        prop_assert_eq!(
            detected_at, Some(expect),
            "fault {:?} (threads {}) missed its cadence window", fault, threads
        );
    }
}
