//! Placement invariance of dynamic load rebalancing: a run with in-flight
//! block migration must be *bit*-identical to the same run with static
//! placement — for periodic measured-cost rebalancing, for adversarial
//! forced migration plans that move every block, across serial and threaded
//! sweeps and every communication-hiding combination.
//!
//! Physics must never observe where a block lives.

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_blockgrid::rebalance::{CostEntry, RebalancePolicy};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::KernelConfig;
use eutectica_core::migrate::{decode_block, encode_block};
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{
    run_distributed_rebalanced, run_distributed_threaded, OverlapOptions, RebalanceStats,
};
use eutectica_core::{N_COMP, N_PHASES};
use proptest::prelude::*;
use std::collections::BTreeSet;

const DOMAIN: [usize; 3] = [8, 8, 16];
const BLOCKS: [usize; 3] = [2, 1, 2]; // 4 blocks: ids 0,1 low-z / 2,3 high-z
const STEPS: usize = 5;

/// A planar front low in the domain: blocks 0 and 1 hold the interface,
/// blocks 2 and 3 are pure liquid — a real cost imbalance, so periodic
/// policies actually have something to move.
fn init_fn(b: &mut BlockState) {
    eutectica_core::init::init_planar_front(b, 0, 4);
}

/// Baseline: static placement, no rebalancer attached at all. Blocks come
/// back per rank in ascending block-id order.
fn baseline(n_ranks: usize, threads: usize, overlap: OverlapOptions) -> Vec<BlockState> {
    run_distributed_threaded(
        ModelParams::ag_al_cu(),
        Decomposition::new(DomainSpec::directional(DOMAIN, BLOCKS)),
        n_ranks,
        threads,
        STEPS,
        KernelConfig::default(),
        overlap,
        init_fn,
    )
    .into_iter()
    .flat_map(|(blocks, _)| blocks)
    .collect()
}

/// Rebalanced run: same seed/steps with `policy` attached. Returns final
/// blocks re-sorted into global id order plus the per-rank stats.
fn rebalanced(
    n_ranks: usize,
    threads: usize,
    overlap: OverlapOptions,
    policy: RebalancePolicy,
) -> (Vec<BlockState>, Vec<RebalanceStats>) {
    let out = run_distributed_rebalanced(
        ModelParams::ag_al_cu(),
        Decomposition::new(DomainSpec::directional(DOMAIN, BLOCKS)),
        n_ranks,
        threads,
        STEPS,
        KernelConfig::default(),
        overlap,
        policy,
        init_fn,
    );
    let mut stats = Vec::new();
    let mut tagged: Vec<(usize, BlockState)> = Vec::new();
    for (blocks, st) in out {
        stats.push(st);
        tagged.extend(blocks);
    }
    tagged.sort_by_key(|(id, _)| *id);
    (tagged.into_iter().map(|(_, b)| b).collect(), stats)
}

/// Interiors bit-for-bit (ghosts excluded: under `hide_mu` the µ ghost
/// refresh is deferred by one step *by design*, in both runs).
fn assert_bit_identical(a: &[BlockState], b: &[BlockState], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: block count");
    for (bi, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.origin, y.origin, "{what}: block {bi} origin");
        for (cx, cy, cz) in x.dims.interior_iter() {
            for c in 0..N_PHASES {
                assert_eq!(
                    x.phi_src.at(c, cx, cy, cz).to_bits(),
                    y.phi_src.at(c, cx, cy, cz).to_bits(),
                    "{what}: phi[{c}] block {bi} at ({cx},{cy},{cz})"
                );
            }
            for c in 0..N_COMP {
                assert_eq!(
                    x.mu_src.at(c, cx, cy, cz).to_bits(),
                    y.mu_src.at(c, cx, cy, cz).to_bits(),
                    "{what}: mu[{c}] block {bi} at ({cx},{cy},{cz})"
                );
            }
        }
    }
}

/// Periodic measured-cost rebalancing never changes the physics, whether or
/// not any given check decides to migrate — serial and threaded sweeps, all
/// four communication-hiding combinations.
#[test]
fn periodic_rebalancing_is_bit_identical() {
    for overlap in OverlapOptions::ALL {
        for threads in [1usize, 3] {
            let base = baseline(2, threads, overlap);
            let (moved, stats) = rebalanced(2, threads, overlap, RebalancePolicy::new(2, 1.0));
            assert!(stats.iter().all(|s| s.checks >= 2), "checks must run");
            assert_bit_identical(
                &base,
                &moved,
                &format!("periodic threads={threads} {overlap:?}"),
            );
        }
    }
}

/// Adversarial forced plans swap *every* block between the ranks mid-run —
/// twice — and the result is still bit-identical to never moving anything.
#[test]
fn adversarial_forced_plans_migrate_every_block_bit_identically() {
    for overlap in OverlapOptions::ALL {
        for threads in [1usize, 3] {
            let base = baseline(2, threads, overlap);
            // Static placement is [0,0,1,1]; after step 2 swap the ranks
            // wholesale, after step 4 swap back. Every block migrates twice.
            let policy = RebalancePolicy::new(0, f64::INFINITY)
                .with_forced_plan(2, vec![1, 1, 0, 0])
                .with_forced_plan(4, vec![0, 0, 1, 1]);
            let (moved, stats) = rebalanced(2, threads, overlap, policy);
            let migrated: BTreeSet<usize> = stats
                .iter()
                .flat_map(|s| s.migrated_away.iter().copied())
                .collect();
            assert_eq!(
                migrated,
                (0..4).collect::<BTreeSet<_>>(),
                "every block must migrate at least once"
            );
            let sent: u64 = stats.iter().map(|s| s.blocks_sent).sum();
            let received: u64 = stats.iter().map(|s| s.blocks_received).sum();
            assert_eq!(sent, 8, "4 blocks x 2 forced swaps");
            assert_eq!(sent, received);
            assert!(stats.iter().all(|s| s.rebalances == 2));
            assert_bit_identical(
                &base,
                &moved,
                &format!("forced threads={threads} {overlap:?}"),
            );
        }
    }
}

/// `threshold = inf` measures but never migrates: the rebalancer in
/// pure-observation mode is exactly the static run.
#[test]
fn infinite_threshold_observes_without_migrating() {
    let overlap = OverlapOptions::default();
    let base = baseline(2, 1, overlap);
    let (moved, stats) = rebalanced(2, 1, overlap, RebalancePolicy::new(2, f64::INFINITY));
    for s in &stats {
        assert_eq!(s.rebalances, 0);
        assert_eq!(s.blocks_sent, 0);
        assert!(s.migrated_away.is_empty());
        assert!(s.checks >= 2);
        assert!(s.first_imbalance_before.unwrap() >= 1.0);
    }
    assert_bit_identical(&base, &moved, "observe-only");
}

/// CI matrix entry point: `EUTECTICA_TEST_RANKS` × `EUTECTICA_TEST_THREADS`
/// ({1,4} × {1,4}) runs a forced rotation plan (every block to the next
/// rank, then the next again) on that layout and compares bit-for-bit
/// against the serial single-rank static baseline.
#[test]
fn matrix_combo_rebalanced_matches_static_serial_baseline() {
    let get = |k: &str, d: usize| {
        std::env::var(k)
            .ok()
            .map(|v| v.parse().expect("rank/thread counts must be integers"))
            .unwrap_or(d)
    };
    let ranks = get("EUTECTICA_TEST_RANKS", 2);
    let threads = get("EUTECTICA_TEST_THREADS", 2);
    let overlap = OverlapOptions::default();
    let decomp = Decomposition::new(DomainSpec::directional(DOMAIN, BLOCKS));
    let static_rank: Vec<usize> = (0..4).map(|id| decomp.rank_of(id, ranks)).collect();
    let rotate =
        |by: usize| -> Vec<usize> { static_rank.iter().map(|&r| (r + by) % ranks).collect() };
    let policy = RebalancePolicy::new(0, f64::INFINITY)
        .with_forced_plan(1, rotate(1))
        .with_forced_plan(3, rotate(2));
    let base = baseline(1, 1, overlap);
    let (moved, stats) = rebalanced(ranks, threads, overlap, policy);
    if ranks > 1 {
        let sent: u64 = stats.iter().map(|s| s.blocks_sent).sum();
        assert!(sent > 0, "rotation on {ranks} ranks must migrate blocks");
    }
    assert_bit_identical(
        &base,
        &moved,
        &format!("matrix ranks={ranks} threads={threads}"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Block-level migration round trip: *all four* persistent buffers (φ
    /// and µ, src and the staggered half-step dst targets), every ghost
    /// cell, the window-shifted origin, and the cost-model entry survive
    /// serialize → ship → deserialize bit-exactly for arbitrary dims.
    #[test]
    fn migrated_block_roundtrips_bit_identically(
        nx in 1usize..6, ny in 1usize..6, nz in 1usize..6,
        ox in 0usize..64, oz in 0usize..1024,
        seed in any::<u64>(),
    ) {
        let dims = GridDims::new(nx, ny, nz, 1);
        let mut st = BlockState::new(dims, [ox, 0, oz]);
        let mut s = seed | 1;
        let mut next = || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            f64::from_bits(s.wrapping_mul(0x2545_f491_4f6c_dd1d))
        };
        for v in st.phi_src.raw_mut() { *v = next(); }
        for v in st.phi_dst.raw_mut() { *v = next(); }
        for v in st.mu_src.raw_mut() { *v = next(); }
        for v in st.mu_dst.raw_mut() { *v = next(); }
        let entry = CostEntry { measured: Some(f64::from_bits(seed | 1)), prior: 2.25 };
        let bytes = encode_block(&st, 9, &entry);
        let (id, back, e) = decode_block(&bytes, dims, u64::MAX).unwrap();
        prop_assert_eq!(id, 9);
        prop_assert_eq!(e, entry);
        prop_assert_eq!(back.origin, st.origin);
        for (a, b) in [
            (st.phi_src.raw(), back.phi_src.raw()),
            (st.phi_dst.raw(), back.phi_dst.raw()),
            (st.mu_src.raw(), back.mu_src.raw()),
            (st.mu_dst.raw(), back.mu_dst.raw()),
        ] {
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
