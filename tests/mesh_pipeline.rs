//! Integration: simulation → per-block isosurface extraction → hierarchical
//! reduction over ranks → watertight, physically plausible surface (the
//! Sec. 3.2 output pipeline end-to-end).

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_comm::Universe;
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::timeloop::{DistributedSim, OverlapOptions};
use eutectica_core::LIQ;
use eutectica_mesh::extract::extract_isosurface;
use eutectica_mesh::reduce::{reduce_over_ranks, ReduceOptions};
use eutectica_mesh::TriMesh;
use std::sync::Arc;

#[test]
fn distributed_solidification_yields_stitched_front_mesh() {
    let params = ModelParams::ag_al_cu();
    let spec = DomainSpec::directional([16, 16, 32], [1, 1, 4]);
    let decomp = Decomposition::new(spec);
    let params = Arc::new(params);
    let decomp = Arc::new(decomp);

    let results: Vec<Option<TriMesh>> = Universe::run(4, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            (*params).clone(),
            (*decomp).clone(),
            KernelConfig::default(),
            OverlapOptions {
                hide_mu: true,
                hide_phi: false,
            },
        );
        sim.init_blocks(|b| eutectica_core::init::init_planar_front(b, 0, 10));
        sim.step_n(10);

        // Extract the solid/liquid interface (1 − φ_ℓ ≥ 0.5 ⇔ φ_ℓ ≤ 0.5):
        // extract the liquid field and flip orientation conceptually.
        let b = &sim.blocks[0];
        let mesh = extract_isosurface(
            b.phi_src.comp(LIQ),
            b.dims,
            [b.origin[0] as f64, b.origin[1] as f64, b.origin[2] as f64],
            0.5,
        );
        reduce_over_ranks(&rank, mesh, &ReduceOptions::default())
    });

    let mesh = results[0].as_ref().expect("rank 0 holds the mesh");
    assert!(results[1..].iter().all(|r| r.is_none()));
    assert!(mesh.num_triangles() > 100, "no front extracted");
    // The front spans the whole periodic cross section; its open edges (at
    // the domain side walls) are allowed, but there must be no interior
    // cracks: every open edge lies on the domain boundary.
    let (lo, hi) = mesh.bounding_box();
    assert!(
        lo[2] > 5.0 && hi[2] < 20.0,
        "front at z∈[{},{}]",
        lo[2],
        hi[2]
    );
    // All triangles near z ≈ 10 (a planar front stays planar-ish).
    let mean_z: f64 = mesh.vertices.iter().map(|v| v[2]).sum::<f64>() / mesh.num_vertices() as f64;
    assert!((mean_z - 10.0).abs() < 3.0, "front drifted to z = {mean_z}");
}

#[test]
fn per_phase_meshes_cover_all_solids() {
    let mut params = ModelParams::ag_al_cu();
    params.t0 = 0.95;
    let mut sim = eutectica_core::solver::Simulation::new(params, [24, 24, 24]).unwrap();
    sim.init_directional(5);
    sim.step_n(20);
    for phase in 0..3 {
        let mesh = extract_isosurface(sim.state.phi_src.comp(phase), sim.state.dims, [0.0; 3], 0.5);
        assert!(
            mesh.num_triangles() > 0,
            "phase {phase} has no interface mesh"
        );
    }
}
