//! Quickstart: set up a small directional-solidification simulation of the
//! ternary eutectic Ag-Al-Cu system, run it, and inspect basic observables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--observe-every N` to sample the in-situ physics observables
//! every N steps, and `--metrics-out observables.ndjson` to stream them
//! to a file as NDJSON (one typed frame per line).

use eutectica_core::prelude::*;
use eutectica_obsv::{InSituObserver, ObservablesConfig};
use eutectica_thermo::Phase;

fn main() {
    // Model parameters: the nondimensionalized Ag-Al-Cu system of the paper
    // with a frozen temperature gradient moving at velocity v (Fig. 2).
    let mut params = ModelParams::ag_al_cu();
    params.t0 = 0.95; // undercooling at the bottom of the domain
    params
        .validate()
        .expect("parameters satisfy the CFL limits");

    // A 32×32×64-cell domain, liquid-filled, with Voronoi-tessellated solid
    // nuclei at the bottom (Sec. 2.1).
    let mut sim = Simulation::new(params, [32, 32, 64]).expect("valid setup");
    sim.init_directional(42);

    println!("initial solid fraction: {:.3}", sim.solid_fraction());
    println!(
        "phase fractions (Al, Ag2Al, Al2Cu, liquid): {:?}",
        sim.phase_fractions().map(|f| (f * 1000.0).round() / 1000.0)
    );

    // Optional in-situ observability plane (provably inert when off).
    let mut observer = eutectica_bench::observe_every_arg().map(|every| {
        let obs = InSituObserver::new(ObservablesConfig::with_every(every));
        match eutectica_bench::metrics_out_arg() {
            Some(path) => obs
                .with_output_path(&path)
                .expect("create --metrics-out file"),
            None => obs,
        }
    });

    // Run 500 explicit-Euler steps (Algorithm 1 with the fully optimized
    // kernels: explicit SIMD, T(z) precompute, staggered buffers,
    // shortcuts).
    let steps = 500;
    let t = std::time::Instant::now();
    match observer.as_mut() {
        Some(obs) => {
            for _ in 0..steps {
                sim.step();
                obs.observe_single(&sim);
            }
        }
        None => sim.step_n(steps),
    }
    let dt = t.elapsed().as_secs_f64();
    let cells = 32 * 32 * 64;
    println!();
    println!(
        "{steps} steps in {:.2} s  ->  {:.1} MLUP/s",
        dt,
        (cells * steps) as f64 / dt / 1e6
    );
    println!();
    println!("after {} time units:", sim.time());
    println!("  solid fraction : {:.3}", sim.solid_fraction());
    println!("  front position : z = {:.0}", sim.front_position());
    for p in Phase::ALL {
        println!("  {:8}: {:.3}", p.name(), sim.phase_fractions()[p as usize]);
    }
    println!("  mean chemical potentials: {:?}", sim.mean_mu());

    if let Some(obs) = &observer {
        println!();
        println!("observables sampled: {} record(s)", obs.records().len());
        if let Some(last) = obs.records().last() {
            println!(
                "  last: front z = {:.2} (rms {:.2}), velocity {:.4} cells/t, undercooling {:.4}",
                last.front_mean, last.front_rms, last.front_velocity, last.undercooling
            );
        }
    }
}
