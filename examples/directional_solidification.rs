//! Directional solidification of the ternary eutectic Ag-Al-Cu — the
//! production scenario of the paper (Fig. 10, scaled to a workstation).
//!
//! Runs a moving-window simulation, periodically writes the per-phase
//! interface meshes (the paper's mesh-based output pipeline, Sec. 3.2),
//! takes a cross-section pattern census (rings / connections / chains /
//! bricks, the Fig. 10 comparison), and finishes with a two-point
//! correlation + PCA microstructure summary.
//!
//! ```sh
//! cargo run --release --example directional_solidification
//! ```
//!
//! Pass `--observe-every N` to sample the in-situ physics observables
//! (front kinetics, phase fractions, lamellar spacing, undercooling)
//! every N steps, and `--metrics-out observables.ndjson` to stream the
//! typed frames to a file.

use eutectica_analysis::correlation::{radial_average, two_point_correlation};
use eutectica_analysis::front::{front_height_map, front_mean, front_roughness, front_velocity};
use eutectica_analysis::patterns::census_slice;
use eutectica_analysis::pca::Pca;
use eutectica_core::prelude::*;
use eutectica_mesh::extract::extract_isosurface;
use eutectica_mesh::reduce::{reduce_local, ReduceOptions};
use eutectica_thermo::Phase;

fn main() {
    let mut params = ModelParams::ag_al_cu();
    params.t0 = 0.93;
    params.grad_g = 0.002;
    params.vel_v = 0.05;

    let (nx, ny, nz) = (48usize, 48usize, 64usize);
    let mut sim = Simulation::new(params, [nx, ny, nz]).expect("valid setup");
    sim.init_directional(2026);
    sim.enable_moving_window(0.6);

    std::fs::create_dir_all("results").ok();
    let rounds = 6;
    let steps_per_round = 250;
    println!(
        "directional solidification: {nx}x{ny}x{nz}, moving window, {} steps",
        rounds * steps_per_round
    );
    println!();

    // Optional in-situ observability plane (provably inert when off).
    let mut observer = eutectica_bench::observe_every_arg().map(|every| {
        let obs = eutectica_obsv::InSituObserver::new(
            eutectica_obsv::ObservablesConfig::with_every(every),
        );
        match eutectica_bench::metrics_out_arg() {
            Some(path) => obs
                .with_output_path(&path)
                .expect("create --metrics-out file"),
            None => obs,
        }
    });

    let mut front_maps: Vec<(f64, Vec<f64>)> = Vec::new();
    for round in 1..=rounds {
        match observer.as_mut() {
            Some(obs) => {
                for _ in 0..steps_per_round {
                    sim.step();
                    obs.observe_single(&sim);
                }
            }
            None => sim.step_n(steps_per_round),
        }
        let map = front_height_map(&sim.state);
        println!(
            "step {:5}: solid {:.3}, front z = {:.1} (rms roughness {:.2}), window shifts {}",
            round * steps_per_round,
            sim.solid_fraction(),
            front_mean(&map),
            front_roughness(&map),
            sim.window_shifts()
        );
        front_maps.push((sim.time(), map));
    }
    if front_maps.len() >= 2 {
        let (t0, m0) = &front_maps[0];
        let (t1, m1) = front_maps.last().unwrap();
        println!(
            "mean front velocity over the run: {:.4} cells/time (pulling velocity v = {:.4})",
            front_velocity(m0, m1, t1 - t0),
            sim.params.vel_v
        );
    }
    println!();

    // --- Mesh output: one interface mesh per phase, hierarchically reduced
    // (Sec. 3.2 pipeline), written as STL.
    for phase in [Phase::AlFcc, Phase::Ag2Al, Phase::Al2Cu] {
        let mesh = extract_isosurface(
            sim.state.phi_src.comp(phase as usize),
            sim.state.dims,
            [0.0, 0.0, sim.state.origin[2] as f64],
            0.5,
        );
        let reduced = reduce_local(vec![mesh], &ReduceOptions::default());
        let path = format!("results/solidification_{}.stl", phase.name());
        if let Ok(mut f) = std::fs::File::create(&path) {
            reduced.write_stl(&mut f).ok();
            println!(
                "wrote {path}: {} vertices, {} triangles",
                reduced.num_vertices(),
                reduced.num_triangles()
            );
        }
    }
    println!();

    // --- Cross-section pattern census in the solidified region (Fig. 10:
    // "chained brick-like structures that are connected or form ring-like
    // structures").
    let z_solid = sim.state.dims.ghost + 4; // well below the front
    println!("pattern census at slice z = {z_solid} (cross section ⊥ growth):");
    for phase in [Phase::AlFcc, Phase::Ag2Al, Phase::Al2Cu] {
        let c = census_slice(&sim.state, phase as usize, z_solid, 4);
        println!(
            "  {:8}: {:2} rings, {:2} connections, {:2} chains, {:2} bricks",
            phase.name(),
            c.rings,
            c.connections,
            c.chains,
            c.bricks
        );
    }
    println!();

    // --- Quantitative microstructure: two-point correlations of the three
    // solid phases in a 32³ solid subvolume, radially averaged, compared by
    // PCA (the paper's announced quantitative analysis).
    let sub = 32usize;
    let g = sim.state.dims.ghost;
    let mut features: Vec<Vec<f64>> = Vec::new();
    for phase in 0..3 {
        let mask: Vec<f64> = (0..sub * sub * sub)
            .map(|i| {
                let (x, y, z) = (i % sub, (i / sub) % sub, i / (sub * sub));
                (sim.state.phi_src.at(phase, x + g, y + g, z + g) > 0.5) as u8 as f64
            })
            .collect();
        let corr = two_point_correlation(&mask, [sub, sub, sub]);
        let rad = radial_average(&corr, [sub, sub, sub], 12);
        println!(
            "  S2 radial ({}): {:?}",
            Phase::ALL[phase].name(),
            rad.iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
        features.push(rad);
    }
    let pca = Pca::fit(&features);
    println!(
        "  PCA over the S2 profiles: first component explains {:.0}% of the variance",
        100.0 * pca.explained_variance(1)
    );
    println!();
    println!("STL meshes are in results/ — load them in ParaView/MeshLab to see the");
    println!("lamellar microstructure (cf. Fig. 10a).");

    if let Some(obs) = &observer {
        println!();
        println!("observables sampled: {} record(s)", obs.records().len());
        if let Some(last) = obs.records().last() {
            println!(
                "  last: front z = {:.2}, velocity {:.4} cells/t, lamellae {:?} (λ {:?}), undercooling {:.4}",
                last.front_mean,
                last.front_velocity,
                last.lamella_count,
                last.lamellar_spacing
                    .map(|s| (s * 100.0).round() / 100.0),
                last.undercooling
            );
        }
    }
}
