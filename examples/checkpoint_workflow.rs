//! Checkpoint/restart workflow (Sec. 3.2): run a simulation, write a
//! single-precision checkpoint and a VTK snapshot, plan the checkpoint
//! cadence from measured costs, then restart from the checkpoint and verify
//! the trajectories agree.
//!
//! ```sh
//! cargo run --release --example checkpoint_workflow
//! ```

use eutectica_core::prelude::*;
use eutectica_pfio::{
    checkpoint_interval, checkpoint_size, read_checkpoint, write_checkpoint, write_vtk,
};
use std::time::Instant;

fn main() {
    let mut params = ModelParams::ag_al_cu();
    params.t0 = 0.95;
    let cells = [24usize, 24, 48];
    let mut sim = Simulation::new(params.clone(), cells).expect("valid setup");
    sim.init_directional(99);

    std::fs::create_dir_all("results").ok();

    // Phase 1: run and measure step cost.
    let t = Instant::now();
    sim.step_n(200);
    let step_time = t.elapsed().as_secs_f64() / 200.0;

    // Write a checkpoint (f32: half the in-memory footprint) and measure it.
    let ckpt_path = "results/checkpoint.eut";
    let t = Instant::now();
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(ckpt_path).unwrap());
        write_checkpoint(&mut f, &sim.state, sim.time()).unwrap();
    }
    let ckpt_time = t.elapsed().as_secs_f64();
    println!(
        "step: {:.2} ms, checkpoint: {:.2} ms ({} KiB on disk, {} KiB in memory)",
        step_time * 1e3,
        ckpt_time * 1e3,
        checkpoint_size(sim.state.dims) / 1024,
        sim.state.dims.volume() * 6 * 8 / 1024,
    );
    println!(
        "recommended checkpoint interval for 1% overhead: every {} steps",
        checkpoint_interval(step_time, ckpt_time, 0.01)
    );

    // A VTK snapshot for visual inspection.
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create("results/snapshot.vtk").unwrap());
        write_vtk(&mut f, &sim.state, "eutectica snapshot").unwrap();
    }
    println!("wrote results/snapshot.vtk (phi0..3, phase_id, mu0..1)");

    // Phase 2: continue the original for 100 more steps.
    sim.step_n(100);

    // Phase 3: restart from the checkpoint and run the same 100 steps.
    let (state, time) = {
        let mut f = std::io::BufReader::new(std::fs::File::open(ckpt_path).unwrap());
        read_checkpoint(&mut f).unwrap()
    };
    let mut resumed = Simulation::new(params, cells).expect("valid setup");
    resumed.state = state;
    resumed.state.apply_bc_src();
    resumed.state.sync_dst_from_src();
    println!("restarted at t = {time}");
    resumed.step_n(100);

    let diff = (sim.solid_fraction() - resumed.solid_fraction()).abs();
    println!(
        "solid fraction after 100 post-checkpoint steps: continuous {:.6}, restarted {:.6} (|Δ| = {:.2e})",
        sim.solid_fraction(),
        resumed.solid_fraction(),
        diff
    );
    assert!(diff < 1e-4, "restart diverged");
    println!("restart agrees within single-precision rounding.");
}
