//! Scaling study: run the distributed time loop on thread-backed ranks
//! (correctness + communication structure) and project the weak-scaling
//! curves of the paper's three machines from measured single-core rates.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::timeloop::{run_distributed, OverlapOptions};
use eutectica_perfmodel::machines::{all_machines, weak_scaling};

fn main() {
    let params = ModelParams::ag_al_cu();

    // --- Part 1: real distributed runs over thread ranks on a fixed
    // 32×32×16 domain split into four 16³ blocks; the fields must be
    // identical regardless of how many ranks share the blocks.
    println!("distributed runs (fixed 32x32x16 domain, 4 blocks of 16^3):");
    let mut reference: Option<f64> = None;
    for ranks in [1usize, 2, 4] {
        let blocks = [2usize, 2, 1];
        let spec = DomainSpec::directional([32, 32, 16], blocks);
        let t = std::time::Instant::now();
        let out = run_distributed(
            params.clone(),
            Decomposition::new(spec),
            ranks,
            20,
            KernelConfig::default(),
            OverlapOptions {
                hide_mu: true,
                hide_phi: false,
            },
            |b| {
                let seeds = eutectica_core::init::VoronoiSeeds::generate(
                    [32, 32],
                    8,
                    [0.34, 0.33, 0.33],
                    1,
                );
                eutectica_core::init::init_directional_block(b, &seeds, 5);
            },
        );
        let elapsed = t.elapsed().as_secs_f64();
        // Checksum of the φ field over all blocks for cross-rank-count
        // comparison (block (0,0,0) exists in every configuration).
        let b0 = out
            .iter()
            .flat_map(|(blocks, _)| blocks.iter())
            .find(|b| b.origin == [0, 0, 0])
            .unwrap();
        let checksum: f64 = b0.phi_src.comp(0).iter().sum();
        match reference {
            None => reference = Some(checksum),
            Some(r) => assert!(
                (checksum - r).abs() < 1e-9,
                "rank-count changed the physics: {checksum} vs {r}"
            ),
        }
        let comm: f64 = out
            .iter()
            .map(|(_, t)| (t.phi_comm + t.mu_comm).as_secs_f64())
            .sum::<f64>()
            / ranks as f64;
        println!(
            "  {ranks} rank(s): {:6.2} s wall, {:5.1}% in communication, checksum {checksum:.6}",
            elapsed,
            100.0 * comm / elapsed
        );
    }
    println!("  -> identical checksums: domain decomposition does not change results");
    println!();

    // --- Part 2: machine-model projection (Fig. 9 style).
    println!("projected weak scaling (60^3 cells per core, measured rate 25 MLUP/s):");
    for m in all_machines() {
        let cores: Vec<usize> = (0..)
            .map(|k| 1usize << k)
            .take_while(|&p| p <= m.max_cores)
            .collect();
        let pts = weak_scaling(&m, [60; 3], 25.0, true, &cores);
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        println!(
            "  {:9}: {:6.2} MLUP/s/core at {:>6} cores -> {:6.2} at {:>6} cores ({:.0}% efficiency)",
            m.name,
            first.mlups_per_core,
            first.cores,
            last.mlups_per_core,
            last.cores,
            100.0 * last.mlups_per_core / first.mlups_per_core
        );
    }
}
