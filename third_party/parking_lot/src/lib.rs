//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! poisoning-free API, implemented over `std::sync` (poison errors are
//! unwrapped — a panicked critical section aborts the wrapping test anyway).

/// Mutual exclusion lock whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let rw = RwLock::new(3);
        assert_eq!(*rw.read(), 3);
        *rw.write() = 4;
        assert_eq!(rw.into_inner(), 4);
    }
}
