//! Offline shim for `serde`: marker traits with blanket implementations and
//! no-op derive macros. Nothing in this workspace performs actual serde
//! serialization (checkpoint I/O is a hand-rolled binary format in
//! `eutectica-pfio`); the `#[derive(Serialize, Deserialize)]` attributes on
//! parameter and grid types are kept so the real `serde` can be dropped back
//! in when network access is available.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
