//! Offline shim for the `bytes` crate: a cheaply clonable, immutable,
//! contiguous byte buffer. Covers the API surface used by this workspace.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer (`Arc`-backed; `clone` is O(1)).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self {
            data: Arc::from(slice),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View as a byte slice.
    #[allow(clippy::should_implement_trait)] // mirrors the real bytes crate's inherent method
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::copy_from_slice(&[9])[..], &[9]);
    }
}
