//! Offline shim for `proptest`: the `proptest!` macro, composable
//! strategies, and `prop_assert*` macros, running a configurable number of
//! randomized cases per test. Deterministic per test name (seeded by an FNV
//! hash of the test name and the case index); no shrinking — a failing case
//! reports the sampled inputs via `Debug` instead.

/// Test-runner types: configuration, RNG, failure reporting.
pub mod test_runner {
    /// Per-block configuration, set via `#![proptest_config(...)]`.
    #[derive(Copy, Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure with a rendered message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure from any message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// The rendered message.
        pub fn message(&self) -> &str {
            match self {
                TestCaseError::Fail(m) => m,
            }
        }
    }

    /// Deterministic SplitMix64 RNG driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy yielding a constant.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Arbitrary finite doubles of wildly varying magnitude.
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            loop {
                let v = f32::from_bits(rng.next_u64() as u32);
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification: an exact size or a half-open range.
    #[derive(Copy, Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array::uniform2` …).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `[S::Value; N]` from `N` independent draws.
    pub struct ArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.element.sample(rng))
        }
    }

    macro_rules! uniform_n {
        ($($fn_name:ident => $n:literal),*) => {$(
            /// Array of independent draws from `element`.
            pub fn $fn_name<S: Strategy>(element: S) -> ArrayStrategy<S, $n> {
                ArrayStrategy { element }
            }
        )*};
    }
    uniform_n!(uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5, uniform6 => 6);
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::{array, collection, strategy};
    }
}

/// Define property tests: each `fn name(arg in strategy, …) { body }` becomes
/// a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            $(let $arg = $strat;)+
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case as u64);
                $(let $arg = ($arg).sample(&mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __cfg.cases,
                        __e.message(),
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __l = $a;
        let __r = $b;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __l, __r
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __l = $a;
        let __r = $b;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __l = $a;
        let __r = $b;
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -2.0..2.0f64, c in any::<bool>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(usize::from(c) <= 1);
        }

        #[test]
        fn composite_strategies(v in prop::collection::vec(0u32..10, 2..5),
                                arr in prop::array::uniform2(-1.0..1.0f64),
                                t in (1usize..4, 0.0..1.0f64).prop_map(|(n, x)| n as f64 + x)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(arr[0] >= -1.0 && arr[1] < 1.0);
            prop_assert!((1.0..4.0).contains(&t));
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(arr[0] + 2.0, arr[0]);
        }
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                #[test]
                fn always_fails(x in 0usize..3) {
                    prop_assert!(x > 100, "x too small: {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("x too small"), "{msg}");
        assert!(msg.contains("inputs: x ="), "{msg}");
    }
}
