//! Offline shim for `crossbeam-channel`: unbounded channels backed by
//! `std::sync::mpsc`. Covers the API surface used by this workspace
//! (`unbounded`, `Sender::send`, `Receiver::recv`, `Receiver::try_recv`,
//! `Receiver::recv_timeout`).

use std::sync::mpsc;
use std::time::Duration;

/// Error returned when sending on a channel whose receiver hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned when receiving on a channel whose senders all hung up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// All senders disconnected.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders disconnected.
    Disconnected,
}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Send a message; fails only if the receiver was dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner.send(msg).map_err(|e| SendError(e.0))
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Block until a message arrives or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41).unwrap());
        tx.send(1).unwrap();
        let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
        assert_eq!(sum, 42);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
