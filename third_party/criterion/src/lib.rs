//! Offline shim for `criterion`: runs each benchmark for a configurable
//! measurement time, reports the median iteration time (and throughput when
//! set) to stdout. No statistical analysis, plots, or baseline comparison.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least 2 samples");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            _name: name,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let time = self.measurement_time;
        run_one(&id.into(), None, sample_size, time, f);
        self
    }
}

/// A named group of benchmarks sharing throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least 2 samples");
        self.criterion.sample_size = n;
        self
    }

    /// Wall-clock budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run one benchmark of the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &id.into(),
            self.throughput,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Close the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    budget: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate the iteration count for ~budget/samples per sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = budget / samples as u32;
    let iters = (per_sample.as_secs_f64() / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:10.2} Melem/s", n as f64 / median / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  {:10.2} MiB/s", n as f64 / median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "  {id:<28} median {} (min {}, max {}, {samples}x{iters} iters){rate}",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:8.3} s ")
    } else if secs >= 1e-3 {
        format!("{:8.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:8.3} µs", secs * 1e6)
    } else {
        format!("{:8.1} ns", secs * 1e9)
    }
}

/// Define a benchmark harness entry: either
/// `criterion_group!(name, target1, target2)` or the
/// `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_something(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    criterion_group! {
        name = selftest;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(30));
        targets = bench_something
    }

    #[test]
    fn harness_runs() {
        selftest();
    }
}
