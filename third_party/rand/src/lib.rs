//! Offline shim for `rand` 0.9: a deterministic SplitMix64 generator behind
//! the `StdRng`/`SeedableRng`/`Rng` API surface this workspace uses.
//!
//! The stream differs from upstream `StdRng` (ChaCha12); workspace code only
//! uses seeded RNGs for arbitrary-but-reproducible test data, so any
//! deterministic, well-mixed stream is equivalent.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full value range ("standard"
/// distribution; floats sample `[0, 1)`).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (shim for upstream `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
            let i = r.random_range(3usize..9);
            assert!((3..9).contains(&i));
            let j = r.random_range(0..=4u32);
            assert!(j <= 4);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
        // Streams from different seeds differ.
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }
}
