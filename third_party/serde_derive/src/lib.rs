//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//! The `serde` shim's `Serialize`/`Deserialize` marker traits are blanket
//! implemented, so an empty expansion keeps every derive site valid.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
