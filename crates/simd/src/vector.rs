//! Backend-generic vector traits.
//!
//! [`SimdF64x4`] abstracts the 4-wide f64 vector API over the concrete
//! backends ([`crate::scalar::F64x4`] and, on x86-64, [`crate::avx2::F64x4`])
//! so the explicitly vectorized kernels in `eutectica-core` can be written
//! once and *instantiated per ISA*. The monomorphic instantiations are then
//! selected at runtime (feature detection + autotuning) instead of at
//! compile time — the compile-time `cfg(target_feature)` alias remains as
//! the default instantiation.
//!
//! Both backends implement every operation with identical semantics (same
//! summation order, same FMA rounding — asserted bit-for-bit by the
//! equivalence tests in [`crate::avx2`]), so swapping the instantiation of a
//! kernel never changes its results.

use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Comparison mask companion of a [`SimdF64x4`] backend: one boolean per
/// lane, in whatever representation the ISA prefers.
pub trait SimdMask4: Copy + Send + Sync + 'static {
    /// The vector type this mask selects over.
    type Vector: SimdF64x4<Mask = Self>;

    /// True if any lane is set.
    fn any(self) -> bool;
    /// True if all lanes are set.
    fn all(self) -> bool;
    /// Lanewise select: lane i = if mask { a } else { b }.
    fn select(self, a: Self::Vector, b: Self::Vector) -> Self::Vector;
    /// Lanewise logical and.
    fn and(self, o: Self) -> Self;
    /// Lanewise logical or.
    fn or(self, o: Self) -> Self;
    /// Bitmask of set lanes (bit i = lane i).
    fn bitmask(self) -> u8;
}

/// Four f64 lanes, generic over the ISA backend.
///
/// Mirrors the inherent API of the concrete backend types one-to-one; see
/// [`crate::scalar::F64x4`] for the reference semantics of each operation.
pub trait SimdF64x4:
    Copy
    + Send
    + Sync
    + core::fmt::Debug
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Mul<f64, Output = Self>
    + Add<f64, Output = Self>
    + 'static
{
    /// Comparison mask type of this backend.
    type Mask: SimdMask4<Vector = Self>;

    /// All lanes set to `v`.
    fn splat(v: f64) -> Self;
    /// All lanes zero.
    fn zero() -> Self;
    /// Construct from an array, lane i = `a[i]`.
    fn from_array(a: [f64; 4]) -> Self;
    /// Extract all lanes.
    fn to_array(self) -> [f64; 4];
    /// Load 4 consecutive doubles from `slice[offset..offset+4]`.
    fn load(slice: &[f64], offset: usize) -> Self;
    /// Store 4 consecutive doubles to `slice[offset..offset+4]`.
    fn store(self, slice: &mut [f64], offset: usize);
    /// Extract lane `i` (0..4).
    fn extract(self, i: usize) -> f64;
    /// Replace lane `i` with `v`, returning the new vector.
    fn replace(self, i: usize, v: f64) -> Self;
    /// Fused multiply-add: `self * b + c` (single rounding).
    fn mul_add(self, b: Self, c: Self) -> Self;
    /// Fused multiply-subtract: `self * b - c`.
    fn mul_sub(self, b: Self, c: Self) -> Self;
    /// Lanewise square root.
    fn sqrt(self) -> Self;
    /// Lanewise absolute value.
    fn abs(self) -> Self;
    /// Lanewise minimum.
    fn min(self, o: Self) -> Self;
    /// Lanewise maximum.
    fn max(self, o: Self) -> Self;
    /// Exact lanewise reciprocal square root.
    fn rsqrt(self) -> Self;
    /// Fast lanewise reciprocal square root (Lomont + Newton steps).
    fn rsqrt_fast(self, iters: u32) -> Self;
    /// Horizontal sum `(l0+l2) + (l1+l3)`.
    fn hsum(self) -> f64;
    /// Horizontal sum broadcast to all lanes.
    fn hsum_splat(self) -> Self;
    /// Broadcast lane `I` to all lanes.
    fn broadcast_lane<const I: usize>(self) -> Self;
    /// Arbitrary lane permutation: result lane i = `self[[A,B,C,D][i]]`.
    fn permute<const A: usize, const B: usize, const C: usize, const D: usize>(self) -> Self;
    /// Rotate lanes left by one: `[l1, l2, l3, l0]`.
    fn rotate_lanes_left(self) -> Self;
    /// Lanewise `self < o`.
    fn lt(self, o: Self) -> Self::Mask;
    /// Lanewise `self <= o`.
    fn le(self, o: Self) -> Self::Mask;
    /// Lanewise `self > o`.
    fn gt(self, o: Self) -> Self::Mask;
    /// Lanewise `self >= o`.
    fn ge(self, o: Self) -> Self::Mask;
}

/// Forward the trait to a backend's identical inherent API.
macro_rules! forward_simd_impl {
    ($vec:ty, $mask:ty) => {
        impl SimdMask4 for $mask {
            type Vector = $vec;

            #[inline(always)]
            fn any(self) -> bool {
                <$mask>::any(self)
            }
            #[inline(always)]
            fn all(self) -> bool {
                <$mask>::all(self)
            }
            #[inline(always)]
            fn select(self, a: $vec, b: $vec) -> $vec {
                <$mask>::select(self, a, b)
            }
            #[inline(always)]
            fn and(self, o: Self) -> Self {
                <$mask>::and(self, o)
            }
            #[inline(always)]
            fn or(self, o: Self) -> Self {
                <$mask>::or(self, o)
            }
            #[inline(always)]
            fn bitmask(self) -> u8 {
                <$mask>::bitmask(self)
            }
        }

        impl SimdF64x4 for $vec {
            type Mask = $mask;

            #[inline(always)]
            fn splat(v: f64) -> Self {
                <$vec>::splat(v)
            }
            #[inline(always)]
            fn zero() -> Self {
                <$vec>::zero()
            }
            #[inline(always)]
            fn from_array(a: [f64; 4]) -> Self {
                <$vec>::from_array(a)
            }
            #[inline(always)]
            fn to_array(self) -> [f64; 4] {
                <$vec>::to_array(self)
            }
            #[inline(always)]
            fn load(slice: &[f64], offset: usize) -> Self {
                <$vec>::load(slice, offset)
            }
            #[inline(always)]
            fn store(self, slice: &mut [f64], offset: usize) {
                <$vec>::store(self, slice, offset)
            }
            #[inline(always)]
            fn extract(self, i: usize) -> f64 {
                <$vec>::extract(self, i)
            }
            #[inline(always)]
            fn replace(self, i: usize, v: f64) -> Self {
                <$vec>::replace(self, i, v)
            }
            #[inline(always)]
            fn mul_add(self, b: Self, c: Self) -> Self {
                <$vec>::mul_add(self, b, c)
            }
            #[inline(always)]
            fn mul_sub(self, b: Self, c: Self) -> Self {
                <$vec>::mul_sub(self, b, c)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$vec>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$vec>::abs(self)
            }
            #[inline(always)]
            fn min(self, o: Self) -> Self {
                <$vec>::min(self, o)
            }
            #[inline(always)]
            fn max(self, o: Self) -> Self {
                <$vec>::max(self, o)
            }
            #[inline(always)]
            fn rsqrt(self) -> Self {
                <$vec>::rsqrt(self)
            }
            #[inline(always)]
            fn rsqrt_fast(self, iters: u32) -> Self {
                <$vec>::rsqrt_fast(self, iters)
            }
            #[inline(always)]
            fn hsum(self) -> f64 {
                <$vec>::hsum(self)
            }
            #[inline(always)]
            fn hsum_splat(self) -> Self {
                <$vec>::hsum_splat(self)
            }
            #[inline(always)]
            fn broadcast_lane<const I: usize>(self) -> Self {
                <$vec>::broadcast_lane::<I>(self)
            }
            #[inline(always)]
            fn permute<const A: usize, const B: usize, const C: usize, const D: usize>(
                self,
            ) -> Self {
                <$vec>::permute::<A, B, C, D>(self)
            }
            #[inline(always)]
            fn rotate_lanes_left(self) -> Self {
                <$vec>::rotate_lanes_left(self)
            }
            #[inline(always)]
            fn lt(self, o: Self) -> Self::Mask {
                <$vec>::lt(self, o)
            }
            #[inline(always)]
            fn le(self, o: Self) -> Self::Mask {
                <$vec>::le(self, o)
            }
            #[inline(always)]
            fn gt(self, o: Self) -> Self::Mask {
                <$vec>::gt(self, o)
            }
            #[inline(always)]
            fn ge(self, o: Self) -> Self::Mask {
                <$vec>::ge(self, o)
            }
        }
    };
}

forward_simd_impl!(crate::scalar::F64x4, crate::scalar::Mask4);

#[cfg(target_arch = "x86_64")]
forward_simd_impl!(crate::avx2::F64x4, crate::avx2::Mask4);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<V: SimdF64x4>(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
        let (va, vb) = (V::from_array(a), V::from_array(b));
        let m = va.gt(vb);
        m.select(va.mul_add(vb, V::splat(1.0)), va + vb).to_array()
    }

    #[test]
    fn generic_code_matches_across_backends() {
        let a = [1.0, -2.0, 3.5, 0.25];
        let b = [0.5, 4.0, 3.5, -1.0];
        let s = generic_sum::<crate::scalar::F64x4>(a, b);
        #[cfg(target_arch = "x86_64")]
        {
            let v = generic_sum::<crate::avx2::F64x4>(a, b);
            assert_eq!(s.map(f64::to_bits), v.map(f64::to_bits));
        }
        // lane 2: a == b, so gt is false and the plain sum is selected.
        assert_eq!(s[2], 7.0);
    }
}
