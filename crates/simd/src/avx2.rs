//! AVX2 + FMA backend.
//!
//! Compiled on every x86-64 target. When the build itself targets AVX2+FMA
//! (e.g. `-C target-cpu=native`) this type is also the crate-level
//! [`crate::F64x4`] alias; otherwise it is reached through the runtime
//! dispatch layer, whose `#[target_feature(enable = "avx2,fma")]` kernel
//! wrappers (gated by [`crate::avx2_available`]) give LLVM the features for
//! real 256-bit codegen. Outside such wrappers the intrinsics are still
//! legal — LLVM legalizes them to narrower operations with identical
//! semantics — so compiling this module featureless is safe, just slower.
//!
//! Each operation documents the instruction(s) it maps to. The
//! backend-equivalence tests at the bottom verify bit-exact agreement with
//! the [`crate::scalar`] reference for every operation (the scalar backend
//! deliberately mirrors AVX2 summation order and FMA rounding).

#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Four f64 lanes in one `__m256d` register.
#[derive(Copy, Clone, Debug)]
#[repr(transparent)]
pub struct F64x4(pub(crate) __m256d);

/// Comparison mask: one all-ones/all-zeros 64-bit lane per element.
#[derive(Copy, Clone, Debug)]
#[repr(transparent)]
pub struct Mask4(pub(crate) __m256d);

impl Default for F64x4 {
    #[inline(always)]
    fn default() -> Self {
        Self::zero()
    }
}

impl F64x4 {
    /// All lanes set to `v` (`vbroadcastsd`).
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self(unsafe { _mm256_set1_pd(v) })
    }

    /// All lanes zero (`vxorpd`).
    #[inline(always)]
    pub fn zero() -> Self {
        Self(unsafe { _mm256_setzero_pd() })
    }

    /// Construct from an array, lane i = `a[i]`.
    #[inline(always)]
    pub fn from_array(a: [f64; 4]) -> Self {
        Self(unsafe { _mm256_loadu_pd(a.as_ptr()) })
    }

    /// Extract all lanes.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        let mut out = [0.0; 4];
        unsafe { _mm256_storeu_pd(out.as_mut_ptr(), self.0) };
        out
    }

    /// Load 4 consecutive doubles from `slice[offset..offset+4]` (`vmovupd`).
    #[inline(always)]
    pub fn load(slice: &[f64], offset: usize) -> Self {
        assert!(offset + 4 <= slice.len());
        Self(unsafe { _mm256_loadu_pd(slice.as_ptr().add(offset)) })
    }

    /// Store 4 consecutive doubles to `slice[offset..offset+4]` (`vmovupd`).
    #[inline(always)]
    pub fn store(self, slice: &mut [f64], offset: usize) {
        assert!(offset + 4 <= slice.len());
        unsafe { _mm256_storeu_pd(slice.as_mut_ptr().add(offset), self.0) };
    }

    /// Extract lane `i` (0..4).
    #[inline(always)]
    pub fn extract(self, i: usize) -> f64 {
        self.to_array()[i]
    }

    /// Replace lane `i` with `v`, returning the new vector.
    #[inline(always)]
    pub fn replace(self, i: usize, v: f64) -> Self {
        let mut a = self.to_array();
        a[i] = v;
        Self::from_array(a)
    }

    /// Fused multiply-add `self * b + c` (`vfmadd213pd`, single rounding).
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self(unsafe { _mm256_fmadd_pd(self.0, b.0, c.0) })
    }

    /// Fused multiply-subtract `self * b - c` (`vfmsub213pd`).
    #[inline(always)]
    pub fn mul_sub(self, b: Self, c: Self) -> Self {
        Self(unsafe { _mm256_fmsub_pd(self.0, b.0, c.0) })
    }

    /// Lanewise square root (`vsqrtpd`).
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        Self(unsafe { _mm256_sqrt_pd(self.0) })
    }

    /// Lanewise absolute value (`vandpd` with sign-bit mask).
    #[inline(always)]
    pub fn abs(self) -> Self {
        let mask = unsafe { _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF)) };
        Self(unsafe { _mm256_and_pd(self.0, mask) })
    }

    /// Lanewise minimum (`vminpd`).
    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        Self(unsafe { _mm256_min_pd(self.0, o.0) })
    }

    /// Lanewise maximum (`vmaxpd`).
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        Self(unsafe { _mm256_max_pd(self.0, o.0) })
    }

    /// Exact lanewise reciprocal square root (`vsqrtpd` + `vdivpd`).
    #[inline(always)]
    pub fn rsqrt(self) -> Self {
        Self::splat(1.0) / self.sqrt()
    }

    /// Fast lanewise reciprocal square root: Lomont bit trick done with
    /// integer SIMD (`vpsrlq` + `vpsubq`) followed by `iters` Newton steps.
    #[inline(always)]
    pub fn rsqrt_fast(self, iters: u32) -> Self {
        unsafe {
            let magic = _mm256_set1_epi64x(0x5FE6_EB50_C7B5_37A9u64 as i64);
            let i = _mm256_castpd_si256(self.0);
            let i = _mm256_sub_epi64(magic, _mm256_srli_epi64::<1>(i));
            let mut y = Self(_mm256_castsi256_pd(i));
            let half = Self::splat(0.5) * self;
            let three_halves = Self::splat(1.5);
            for _ in 0..iters {
                y = y * (three_halves - half * y * y);
            }
            y
        }
    }

    /// Horizontal sum: `(l0+l2) + (l1+l3)` (`vextractf128` + adds).
    #[inline(always)]
    pub fn hsum(self) -> f64 {
        unsafe {
            let hi = _mm256_extractf128_pd::<1>(self.0);
            let lo = _mm256_castpd256_pd128(self.0);
            let s = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
            let shuf = _mm_unpackhi_pd(s, s);
            _mm_cvtsd_f64(_mm_add_sd(s, shuf))
        }
    }

    /// Horizontal sum broadcast to all lanes.
    #[inline(always)]
    pub fn hsum_splat(self) -> Self {
        unsafe {
            // [l0+l2, l1+l3, l2+l0, l3+l1]
            let swapped = _mm256_permute2f128_pd::<0x01>(self.0, self.0);
            let s = _mm256_add_pd(self.0, swapped);
            // add the lane-swapped pairs: every lane becomes (l0+l2)+(l1+l3)
            let shuf = _mm256_shuffle_pd::<0b0101>(s, s);
            Self(_mm256_add_pd(s, shuf))
        }
    }

    /// Broadcast lane `I` to all lanes (`vpermpd`).
    #[inline(always)]
    pub fn broadcast_lane<const I: usize>(self) -> Self {
        unsafe {
            match I {
                0 => Self(_mm256_permute4x64_pd::<0b00_00_00_00>(self.0)),
                1 => Self(_mm256_permute4x64_pd::<0b01_01_01_01>(self.0)),
                2 => Self(_mm256_permute4x64_pd::<0b10_10_10_10>(self.0)),
                3 => Self(_mm256_permute4x64_pd::<0b11_11_11_11>(self.0)),
                _ => unreachable!("lane index out of range"),
            }
        }
    }

    /// Arbitrary lane permutation: result lane i = `self[[A,B,C,D][i]]`.
    ///
    /// Written as a scalar shuffle; LLVM lowers it to `vpermpd`/`vshufpd`
    /// sequences. The hot kernels only use [`Self::broadcast_lane`] and
    /// [`Self::rotate_lanes_left`], which map to a single `vpermpd`.
    #[inline(always)]
    pub fn permute<const A: usize, const B: usize, const C: usize, const D: usize>(self) -> Self {
        let a = self.to_array();
        Self::from_array([a[A], a[B], a[C], a[D]])
    }

    /// Rotate lanes left by one: `[l1, l2, l3, l0]` (`vpermpd` imm 0x39).
    #[inline(always)]
    pub fn rotate_lanes_left(self) -> Self {
        Self(unsafe { _mm256_permute4x64_pd::<0b00_11_10_01>(self.0) })
    }

    /// Lanewise `self < o` (`vcmppd` LT_OQ).
    #[inline(always)]
    pub fn lt(self, o: Self) -> Mask4 {
        Mask4(unsafe { _mm256_cmp_pd::<_CMP_LT_OQ>(self.0, o.0) })
    }

    /// Lanewise `self <= o` (`vcmppd` LE_OQ).
    #[inline(always)]
    pub fn le(self, o: Self) -> Mask4 {
        Mask4(unsafe { _mm256_cmp_pd::<_CMP_LE_OQ>(self.0, o.0) })
    }

    /// Lanewise `self > o`.
    #[inline(always)]
    pub fn gt(self, o: Self) -> Mask4 {
        Mask4(unsafe { _mm256_cmp_pd::<_CMP_GT_OQ>(self.0, o.0) })
    }

    /// Lanewise `self >= o`.
    #[inline(always)]
    pub fn ge(self, o: Self) -> Mask4 {
        Mask4(unsafe { _mm256_cmp_pd::<_CMP_GE_OQ>(self.0, o.0) })
    }
}

impl Mask4 {
    /// True if any lane is set (`vmovmskpd` != 0).
    #[inline(always)]
    pub fn any(self) -> bool {
        self.bitmask() != 0
    }

    /// True if all lanes are set (`vmovmskpd` == 0b1111).
    #[inline(always)]
    pub fn all(self) -> bool {
        self.bitmask() == 0b1111
    }

    /// Lanewise select: lane i = if mask { a } else { b } (`vblendvpd`).
    #[inline(always)]
    pub fn select(self, a: F64x4, b: F64x4) -> F64x4 {
        F64x4(unsafe { _mm256_blendv_pd(b.0, a.0, self.0) })
    }

    /// Lanewise logical and (`vandpd`).
    #[inline(always)]
    pub fn and(self, o: Self) -> Self {
        Mask4(unsafe { _mm256_and_pd(self.0, o.0) })
    }

    /// Lanewise logical or (`vorpd`).
    #[inline(always)]
    pub fn or(self, o: Self) -> Self {
        Mask4(unsafe { _mm256_or_pd(self.0, o.0) })
    }

    /// Bitmask of set lanes (bit i = lane i), `vmovmskpd`.
    #[inline(always)]
    pub fn bitmask(self) -> u8 {
        (unsafe { _mm256_movemask_pd(self.0) }) as u8 & 0b1111
    }
}

impl Add for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Self(unsafe { _mm256_add_pd(self.0, o.0) })
    }
}

impl Sub for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        Self(unsafe { _mm256_sub_pd(self.0, o.0) })
    }
}

impl Mul for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        Self(unsafe { _mm256_mul_pd(self.0, o.0) })
    }
}

impl Div for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn div(self, o: Self) -> Self {
        Self(unsafe { _mm256_div_pd(self.0, o.0) })
    }
}

impl AddAssign for F64x4 {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl SubAssign for F64x4 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl MulAssign for F64x4 {
    #[inline(always)]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl Neg for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::zero() - self
    }
}

impl Mul<f64> for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, s: f64) -> Self {
        self * Self::splat(s)
    }
}

impl Add<f64> for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, s: f64) -> Self {
        self + Self::splat(s)
    }
}

#[cfg(test)]
mod tests {
    use super::F64x4 as V;
    use crate::scalar::F64x4 as S;

    const CASES: [[f64; 4]; 6] = [
        [1.0, 2.0, 3.0, 4.0],
        [0.0, -1.0, 1e-10, 1e10],
        [0.25, 0.25, 0.25, 0.25],
        [-3.5, 7.25, -0.125, 9.75],
        [1e-300, 1e300, 2.0, 0.5],
        [0.1, 0.2, 0.3, 0.4],
    ];

    fn pairs() -> impl Iterator<Item = ([f64; 4], [f64; 4])> {
        CASES
            .iter()
            .flat_map(|a| CASES.iter().map(move |b| (*a, *b)))
    }

    /// Bitwise equality so NaN lanes (e.g. 0/0) compare equal across backends.
    #[track_caller]
    fn assert_bits_eq(l: [f64; 4], r: [f64; 4]) {
        assert_eq!(l.map(f64::to_bits), r.map(f64::to_bits), "{l:?} vs {r:?}");
    }

    #[test]
    fn binops_match_scalar() {
        for (a, b) in pairs() {
            let (va, vb) = (V::from_array(a), V::from_array(b));
            let (sa, sb) = (S::from_array(a), S::from_array(b));
            assert_bits_eq((va + vb).to_array(), (sa + sb).to_array());
            assert_bits_eq((va - vb).to_array(), (sa - sb).to_array());
            assert_bits_eq((va * vb).to_array(), (sa * sb).to_array());
            assert_bits_eq((va / vb).to_array(), (sa / sb).to_array());
            assert_bits_eq(va.min(vb).to_array(), sa.min(sb).to_array());
            assert_bits_eq(va.max(vb).to_array(), sa.max(sb).to_array());
            assert_bits_eq(
                va.mul_add(vb, V::splat(0.7)).to_array(),
                sa.mul_add(sb, S::splat(0.7)).to_array(),
            );
            assert_bits_eq(
                va.mul_sub(vb, V::splat(0.7)).to_array(),
                sa.mul_sub(sb, S::splat(0.7)).to_array(),
            );
        }
    }

    #[test]
    fn unops_match_scalar() {
        for a in CASES {
            let va = V::from_array(a);
            let sa = S::from_array(a);
            assert_eq!(va.abs().to_array(), sa.abs().to_array());
            assert_eq!((-va).to_array(), (-sa).to_array());
            assert_eq!(va.hsum(), sa.hsum());
            assert_eq!(va.hsum_splat().to_array(), sa.hsum_splat().to_array());
            assert_eq!(
                va.rotate_lanes_left().to_array(),
                sa.rotate_lanes_left().to_array()
            );
            assert_eq!(
                va.broadcast_lane::<2>().to_array(),
                sa.broadcast_lane::<2>().to_array()
            );
            assert_eq!(
                va.permute::<3, 1, 0, 2>().to_array(),
                sa.permute::<3, 1, 0, 2>().to_array()
            );
        }
    }

    #[test]
    fn sqrt_family_match_scalar() {
        for a in CASES {
            if a.iter().any(|&x| x <= 0.0) {
                continue;
            }
            let va = V::from_array(a);
            let sa = S::from_array(a);
            assert_eq!(va.sqrt().to_array(), sa.sqrt().to_array());
            assert_eq!(va.rsqrt().to_array(), sa.rsqrt().to_array());
            assert_eq!(va.rsqrt_fast(3).to_array(), sa.rsqrt_fast(3).to_array());
        }
    }

    #[test]
    fn masks_match_scalar() {
        for (a, b) in pairs() {
            let (va, vb) = (V::from_array(a), V::from_array(b));
            let (sa, sb) = (S::from_array(a), S::from_array(b));
            assert_eq!(va.lt(vb).bitmask(), sa.lt(sb).bitmask());
            assert_eq!(va.le(vb).bitmask(), sa.le(sb).bitmask());
            assert_eq!(va.gt(vb).bitmask(), sa.gt(sb).bitmask());
            assert_eq!(va.ge(vb).bitmask(), sa.ge(sb).bitmask());
            let m = va.lt(vb);
            let sm = sa.lt(sb);
            assert_eq!(m.select(va, vb).to_array(), sm.select(sa, sb).to_array());
            assert_eq!(m.any(), sm.any());
            assert_eq!(m.all(), sm.all());
        }
    }

    #[test]
    fn lane_access() {
        let v = V::from_array([9.0, 8.0, 7.0, 6.0]);
        assert_eq!(v.extract(0), 9.0);
        assert_eq!(v.extract(3), 6.0);
        assert_eq!(v.replace(1, 0.5).to_array(), [9.0, 0.5, 7.0, 6.0]);
    }
}
