//! Portable 4-wide double-precision SIMD abstraction layer.
//!
//! This crate is the Rust analog of the "lightweight abstraction layer" the
//! SC'15 paper describes in Sec. 3.3: a common API over the machine's vector
//! extensions so the explicitly vectorized φ- and µ-kernels stay portable.
//! The paper's layer covered SSE2/SSE4/AVX/AVX2 and Blue Gene/Q QPX; ours
//! provides
//!
//! * an **AVX2 + FMA backend** ([`avx2`]), compiled on every x86-64 target
//!   and selected either at compile time (when the build targets a CPU with
//!   those extensions, e.g. `-C target-cpu=native`) or at *runtime* through
//!   the [`SimdF64x4`] trait plus [`avx2_available`] feature detection, and
//! * a **portable scalar backend** ([`scalar`]) used on other targets or when
//!   the `force-scalar` feature is enabled (used by the optimization-ladder
//!   benchmarks to isolate the benefit of explicit vectorization).
//!
//! All operations are provided on the 4-lane vector type [`F64x4`] and its
//! comparison-mask companion [`Mask4`] — and, backend-generically, through
//! the [`SimdF64x4`] / [`SimdMask4`] traits, which let callers write a
//! kernel once and instantiate it per ISA for runtime dispatch. Like the
//! paper's API, not every function maps to a single instruction on every
//! ISA: lane permutes are one `vpermpd` on AVX2 but shuffles in the scalar
//! backend; the API hides the difference.
//!
//! The width of 4 doubles is not arbitrary: the paper vectorizes the φ-kernel
//! *cellwise*, mapping the **four phase-field components of one cell** to the
//! four vector lanes, and the µ-kernel *four-cells-at-a-time*. Both uses are
//! exercised heavily by `eutectica-core`.
//!
//! # Example
//!
//! ```
//! use eutectica_simd::F64x4;
//!
//! let phi = F64x4::from_array([0.1, 0.2, 0.3, 0.4]);
//! let sum = phi.hsum_splat();              // Σφ broadcast to all lanes
//! let h = (phi * phi) / (phi * phi).hsum_splat(); // Moelans interpolation
//! assert!((sum.extract(0) - 1.0).abs() < 1e-15);
//! assert!((h.to_array().iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod scalar;
pub mod vector;

pub use vector::{SimdF64x4, SimdMask4};

// The AVX2 backend is compiled on every x86-64 build (not only when the
// build *targets* AVX2): its intrinsics are legal to compile without the
// target feature, and the runtime-dispatch layer in `eutectica-core`
// instantiates the kernels with it inside `#[target_feature]` wrappers
// gated by `avx2_available()`. `force-scalar` only removes it from the
// *selectable* backends, so the forced-fallback build still type-checks.
#[cfg(target_arch = "x86_64")]
pub mod avx2;

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(feature = "force-scalar")
))]
pub use avx2::{F64x4, Mask4};

#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(feature = "force-scalar")
)))]
pub use scalar::{F64x4, Mask4};

/// Number of lanes in [`F64x4`].
pub const LANES: usize = 4;

/// Name of the backend selected at compile time (`"avx2"` or `"scalar"`).
///
/// Reported by the benchmark harness so figure outputs record which ISA the
/// measurements were taken with.
pub const BACKEND: &str = {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(feature = "force-scalar")
    ))]
    {
        "avx2"
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(feature = "force-scalar")
    )))]
    {
        "scalar"
    }
};

/// True when the AVX2 + FMA backend may be *selected* at runtime: the host
/// CPU supports both extensions and the `force-scalar` feature is off.
///
/// This is a runtime check (`is_x86_feature_detected!`), independent of the
/// features the binary was compiled with — a build without
/// `-C target-cpu=native` still returns true on an AVX2-capable host, which
/// is exactly the case the runtime-dispatched kernels exist for.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
    {
        false
    }
}

/// True when the host CPU itself supports AVX2 + FMA, *ignoring* the
/// `force-scalar` feature. Together with [`avx2_available`] this
/// distinguishes "the host can't" from "the build refuses": a true here
/// with a false there means the binary is deliberately degraded, which the
/// solver surfaces as a one-time rank-0 warning instead of silently
/// benchmarking scalar code under a "SIMD" label.
#[inline]
pub fn host_has_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Name of the best backend selectable at *runtime* on this host
/// (`"avx2"` or `"scalar"`), as opposed to the compile-time [`BACKEND`].
#[inline]
pub fn runtime_backend() -> &'static str {
    if avx2_available() {
        "avx2"
    } else {
        "scalar"
    }
}

/// Scalar fast inverse square root (Lomont's method, double precision).
///
/// The paper replaces `1/sqrt(x)` used for vector normalization in the
/// anti-trapping current by "approximated values provided by a fast inverse
/// square root algorithm [20]" (Lomont). `iters` Newton–Raphson refinements
/// are applied; 2 give ≈1e-5 relative error, 4 reach near machine precision.
#[inline(always)]
pub fn rsqrt_fast_scalar(x: f64, iters: u32) -> f64 {
    debug_assert!(x > 0.0);
    let i = x.to_bits();
    // Double-precision magic constant from Lomont's report.
    let i = 0x5FE6EB50C7B537A9u64.wrapping_sub(i >> 1);
    let mut y = f64::from_bits(i);
    let half = 0.5 * x;
    for _ in 0..iters {
        y = y * (1.5 - half * y * y);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsqrt_fast_converges() {
        for &x in &[1e-8f64, 0.3, 1.0, 2.0, 123.0, 1e12] {
            let exact = 1.0 / x.sqrt();
            let approx2 = rsqrt_fast_scalar(x, 2);
            let approx4 = rsqrt_fast_scalar(x, 4);
            assert!(
                ((approx2 - exact) / exact).abs() < 1e-4,
                "2 iters too inaccurate at {x}"
            );
            assert!(
                ((approx4 - exact) / exact).abs() < 1e-14,
                "4 iters too inaccurate at {x}"
            );
        }
    }

    #[test]
    fn backend_is_reported() {
        assert!(BACKEND == "avx2" || BACKEND == "scalar");
        assert!(runtime_backend() == "avx2" || runtime_backend() == "scalar");
        // The compile-time backend is never better than what the host
        // supports at runtime (avx2 alias implies an avx2-capable host,
        // unless force-scalar hides it).
        if BACKEND == "avx2" {
            assert!(avx2_available());
        }
        #[cfg(feature = "force-scalar")]
        {
            assert_eq!(BACKEND, "scalar");
            assert!(!avx2_available());
            assert_eq!(runtime_backend(), "scalar");
        }
    }
}
