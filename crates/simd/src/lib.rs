//! Portable 4-wide double-precision SIMD abstraction layer.
//!
//! This crate is the Rust analog of the "lightweight abstraction layer" the
//! SC'15 paper describes in Sec. 3.3: a common API over the machine's vector
//! extensions so the explicitly vectorized φ- and µ-kernels stay portable.
//! The paper's layer covered SSE2/SSE4/AVX/AVX2 and Blue Gene/Q QPX; ours
//! provides
//!
//! * an **AVX2 + FMA backend** ([`avx2`]) selected at compile time when the
//!   build targets a CPU with those extensions (the workspace builds with
//!   `-C target-cpu=native`, mirroring waLBerla's per-machine builds), and
//! * a **portable scalar backend** ([`scalar`]) used on other targets or when
//!   the `force-scalar` feature is enabled (used by the optimization-ladder
//!   benchmarks to isolate the benefit of explicit vectorization).
//!
//! All operations are provided on the 4-lane vector type [`F64x4`] and its
//! comparison-mask companion [`Mask4`]. Like the paper's API, not every
//! function maps to a single instruction on every ISA: lane permutes are one
//! `vpermpd` on AVX2 but shuffles in the scalar backend; the API hides the
//! difference.
//!
//! The width of 4 doubles is not arbitrary: the paper vectorizes the φ-kernel
//! *cellwise*, mapping the **four phase-field components of one cell** to the
//! four vector lanes, and the µ-kernel *four-cells-at-a-time*. Both uses are
//! exercised heavily by `eutectica-core`.
//!
//! # Example
//!
//! ```
//! use eutectica_simd::F64x4;
//!
//! let phi = F64x4::from_array([0.1, 0.2, 0.3, 0.4]);
//! let sum = phi.hsum_splat();              // Σφ broadcast to all lanes
//! let h = (phi * phi) / (phi * phi).hsum_splat(); // Moelans interpolation
//! assert!((sum.extract(0) - 1.0).abs() < 1e-15);
//! assert!((h.to_array().iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod scalar;

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(feature = "force-scalar")
))]
pub mod avx2;

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(feature = "force-scalar")
))]
pub use avx2::{F64x4, Mask4};

#[cfg(not(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(feature = "force-scalar")
)))]
pub use scalar::{F64x4, Mask4};

/// Number of lanes in [`F64x4`].
pub const LANES: usize = 4;

/// Name of the backend selected at compile time (`"avx2"` or `"scalar"`).
///
/// Reported by the benchmark harness so figure outputs record which ISA the
/// measurements were taken with.
pub const BACKEND: &str = {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(feature = "force-scalar")
    ))]
    {
        "avx2"
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(feature = "force-scalar")
    )))]
    {
        "scalar"
    }
};

/// Scalar fast inverse square root (Lomont's method, double precision).
///
/// The paper replaces `1/sqrt(x)` used for vector normalization in the
/// anti-trapping current by "approximated values provided by a fast inverse
/// square root algorithm [20]" (Lomont). `iters` Newton–Raphson refinements
/// are applied; 2 give ≈1e-5 relative error, 4 reach near machine precision.
#[inline(always)]
pub fn rsqrt_fast_scalar(x: f64, iters: u32) -> f64 {
    debug_assert!(x > 0.0);
    let i = x.to_bits();
    // Double-precision magic constant from Lomont's report.
    let i = 0x5FE6EB50C7B537A9u64.wrapping_sub(i >> 1);
    let mut y = f64::from_bits(i);
    let half = 0.5 * x;
    for _ in 0..iters {
        y = y * (1.5 - half * y * y);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsqrt_fast_converges() {
        for &x in &[1e-8f64, 0.3, 1.0, 2.0, 123.0, 1e12] {
            let exact = 1.0 / x.sqrt();
            let approx2 = rsqrt_fast_scalar(x, 2);
            let approx4 = rsqrt_fast_scalar(x, 4);
            assert!(
                ((approx2 - exact) / exact).abs() < 1e-4,
                "2 iters too inaccurate at {x}"
            );
            assert!(
                ((approx4 - exact) / exact).abs() < 1e-14,
                "4 iters too inaccurate at {x}"
            );
        }
    }

    #[test]
    fn backend_is_reported() {
        assert!(BACKEND == "avx2" || BACKEND == "scalar");
    }
}
