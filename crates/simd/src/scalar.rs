//! Portable scalar backend: the reference semantics for every operation.
//!
//! Every operation here defines the *meaning* of the corresponding AVX2
//! operation; the backend-equivalence test suite checks the two agree
//! bit-for-bit (up to documented FMA contraction differences).

use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Four f64 lanes, portable implementation.
#[derive(Copy, Clone, Debug, Default)]
#[repr(C, align(32))]
pub struct F64x4(pub(crate) [f64; 4]);

/// Comparison mask for [`F64x4`]; one boolean per lane.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Mask4(pub(crate) [bool; 4]);

impl F64x4 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self([0.0; 4])
    }

    /// Construct from an array, lane i = `a[i]`.
    #[inline(always)]
    pub fn from_array(a: [f64; 4]) -> Self {
        Self(a)
    }

    /// Extract all lanes.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }

    /// Load 4 consecutive doubles from `slice[offset..offset+4]`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the range is out of bounds.
    #[inline(always)]
    pub fn load(slice: &[f64], offset: usize) -> Self {
        Self([
            slice[offset],
            slice[offset + 1],
            slice[offset + 2],
            slice[offset + 3],
        ])
    }

    /// Store 4 consecutive doubles to `slice[offset..offset+4]`.
    #[inline(always)]
    pub fn store(self, slice: &mut [f64], offset: usize) {
        slice[offset..offset + 4].copy_from_slice(&self.0);
    }

    /// Extract lane `i` (0..4).
    #[inline(always)]
    pub fn extract(self, i: usize) -> f64 {
        self.0[i]
    }

    /// Replace lane `i` with `v`, returning the new vector.
    #[inline(always)]
    pub fn replace(mut self, i: usize, v: f64) -> Self {
        self.0[i] = v;
        self
    }

    /// Fused multiply-add: `self * b + c`, one rounding in the AVX2 backend.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self([
            self.0[0].mul_add(b.0[0], c.0[0]),
            self.0[1].mul_add(b.0[1], c.0[1]),
            self.0[2].mul_add(b.0[2], c.0[2]),
            self.0[3].mul_add(b.0[3], c.0[3]),
        ])
    }

    /// Fused multiply-subtract: `self * b - c`.
    #[inline(always)]
    pub fn mul_sub(self, b: Self, c: Self) -> Self {
        Self([
            self.0[0].mul_add(b.0[0], -c.0[0]),
            self.0[1].mul_add(b.0[1], -c.0[1]),
            self.0[2].mul_add(b.0[2], -c.0[2]),
            self.0[3].mul_add(b.0[3], -c.0[3]),
        ])
    }

    /// Lanewise square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        Self(self.0.map(f64::sqrt))
    }

    /// Lanewise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        Self(self.0.map(f64::abs))
    }

    /// Lanewise minimum.
    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        Self([
            self.0[0].min(o.0[0]),
            self.0[1].min(o.0[1]),
            self.0[2].min(o.0[2]),
            self.0[3].min(o.0[3]),
        ])
    }

    /// Lanewise maximum.
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        Self([
            self.0[0].max(o.0[0]),
            self.0[1].max(o.0[1]),
            self.0[2].max(o.0[2]),
            self.0[3].max(o.0[3]),
        ])
    }

    /// Exact lanewise reciprocal square root (`1/sqrt(x)`).
    #[inline(always)]
    pub fn rsqrt(self) -> Self {
        Self(self.0.map(|x| 1.0 / x.sqrt()))
    }

    /// Fast lanewise reciprocal square root (Lomont bit trick + `iters`
    /// Newton refinements). See [`crate::rsqrt_fast_scalar`].
    #[inline(always)]
    pub fn rsqrt_fast(self, iters: u32) -> Self {
        Self(self.0.map(|x| crate::rsqrt_fast_scalar(x, iters)))
    }

    /// Horizontal sum of all four lanes.
    ///
    /// Summation order matches the AVX2 backend: `(l0+l2) + (l1+l3)`.
    #[inline(always)]
    pub fn hsum(self) -> f64 {
        (self.0[0] + self.0[2]) + (self.0[1] + self.0[3])
    }

    /// Horizontal sum broadcast to all lanes.
    #[inline(always)]
    pub fn hsum_splat(self) -> Self {
        Self::splat(self.hsum())
    }

    /// Broadcast lane `I` to all lanes (one `vpermpd` on AVX2).
    #[inline(always)]
    pub fn broadcast_lane<const I: usize>(self) -> Self {
        Self::splat(self.0[I])
    }

    /// Arbitrary lane permutation: result lane i = `self[[A,B,C,D][i]]`.
    #[inline(always)]
    pub fn permute<const A: usize, const B: usize, const C: usize, const D: usize>(self) -> Self {
        Self([self.0[A], self.0[B], self.0[C], self.0[D]])
    }

    /// Rotate lanes left by one: `[l1, l2, l3, l0]`.
    #[inline(always)]
    pub fn rotate_lanes_left(self) -> Self {
        self.permute::<1, 2, 3, 0>()
    }

    /// Lanewise `self < o`.
    #[inline(always)]
    pub fn lt(self, o: Self) -> Mask4 {
        Mask4([
            self.0[0] < o.0[0],
            self.0[1] < o.0[1],
            self.0[2] < o.0[2],
            self.0[3] < o.0[3],
        ])
    }

    /// Lanewise `self <= o`.
    #[inline(always)]
    pub fn le(self, o: Self) -> Mask4 {
        Mask4([
            self.0[0] <= o.0[0],
            self.0[1] <= o.0[1],
            self.0[2] <= o.0[2],
            self.0[3] <= o.0[3],
        ])
    }

    /// Lanewise `self > o`.
    #[inline(always)]
    pub fn gt(self, o: Self) -> Mask4 {
        o.lt(self)
    }

    /// Lanewise `self >= o`.
    #[inline(always)]
    pub fn ge(self, o: Self) -> Mask4 {
        o.le(self)
    }
}

impl Mask4 {
    /// True if any lane is set.
    #[inline(always)]
    pub fn any(self) -> bool {
        self.0[0] | self.0[1] | self.0[2] | self.0[3]
    }

    /// True if all lanes are set.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.0[0] & self.0[1] & self.0[2] & self.0[3]
    }

    /// Lanewise select: lane i = if mask { a } else { b }.
    #[inline(always)]
    pub fn select(self, a: F64x4, b: F64x4) -> F64x4 {
        F64x4([
            if self.0[0] { a.0[0] } else { b.0[0] },
            if self.0[1] { a.0[1] } else { b.0[1] },
            if self.0[2] { a.0[2] } else { b.0[2] },
            if self.0[3] { a.0[3] } else { b.0[3] },
        ])
    }

    /// Lanewise logical and.
    #[inline(always)]
    pub fn and(self, o: Self) -> Self {
        Mask4([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }

    /// Lanewise logical or.
    #[inline(always)]
    pub fn or(self, o: Self) -> Self {
        Mask4([
            self.0[0] | o.0[0],
            self.0[1] | o.0[1],
            self.0[2] | o.0[2],
            self.0[3] | o.0[3],
        ])
    }

    /// Bitmask of set lanes (bit i = lane i), like `vmovmskpd`.
    #[inline(always)]
    pub fn bitmask(self) -> u8 {
        (self.0[0] as u8) | (self.0[1] as u8) << 1 | (self.0[2] as u8) << 2 | (self.0[3] as u8) << 3
    }
}

macro_rules! impl_binop {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = Self;
            #[inline(always)]
            fn $fn(self, o: Self) -> Self {
                Self([
                    self.0[0] $op o.0[0],
                    self.0[1] $op o.0[1],
                    self.0[2] $op o.0[2],
                    self.0[3] $op o.0[3],
                ])
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl AddAssign for F64x4 {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl SubAssign for F64x4 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl MulAssign for F64x4 {
    #[inline(always)]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl Neg for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

impl Mul<f64> for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, s: f64) -> Self {
        self * Self::splat(s)
    }
}

impl Add<f64> for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, s: f64) -> Self {
        self + Self::splat(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = F64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::splat(2.0);
        assert_eq!((a + b).to_array(), [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a * b).to_array(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a - b).to_array(), [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a / b).to_array(), [0.5, 1.0, 1.5, 2.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn horizontal_and_permute() {
        let a = F64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.hsum(), 10.0);
        assert_eq!(a.hsum_splat().to_array(), [10.0; 4]);
        assert_eq!(a.broadcast_lane::<2>().to_array(), [3.0; 4]);
        assert_eq!(a.rotate_lanes_left().to_array(), [2.0, 3.0, 4.0, 1.0]);
        assert_eq!(a.permute::<3, 3, 0, 1>().to_array(), [4.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn masks_and_select() {
        let a = F64x4::from_array([1.0, 5.0, 3.0, 0.0]);
        let b = F64x4::splat(2.0);
        let m = a.lt(b);
        assert_eq!(m.bitmask(), 0b1001);
        assert!(m.any());
        assert!(!m.all());
        let sel = m.select(F64x4::splat(-1.0), F64x4::splat(1.0));
        assert_eq!(sel.to_array(), [-1.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn load_store_roundtrip() {
        let data = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let v = F64x4::load(&data, 1);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0, 4.0]);
        let mut out = [0.0; 6];
        v.store(&mut out, 2);
        assert_eq!(out, [0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
