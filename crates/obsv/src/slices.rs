//! Downsampled 2-D field slices for live streaming.
//!
//! A slice is one x–y cross-section of φ (one phase) or µ (one component)
//! at a fixed global z, downsampled by an integer stride. Each rank
//! extracts the cells it owns, the pieces are gathered to rank 0 and
//! assembled into a full-domain frame small enough to push over the live
//! endpoint every few steps (a 512² plane at stride 4 is 16 k values).
//!
//! Extraction reads `phi_src`/`mu_src` only — it never writes to the
//! simulation state, which is half of the observability plane's inertness
//! guarantee (the other half being collective-order discipline, see
//! [`crate::observables`]).

use eutectica_comm::{bytes_to_f64s, f64s_to_bytes, Rank};
use eutectica_core::state::BlockState;
use eutectica_telemetry::JsonObject;

/// Which field a slice samples.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SliceField {
    /// Order parameter of one phase (0..N_PHASES).
    Phi(usize),
    /// Chemical potential of one component (0..N_COMP).
    Mu(usize),
}

impl SliceField {
    /// Wire name, e.g. `"phi0"` / `"mu1"`.
    pub fn name(self) -> String {
        match self {
            SliceField::Phi(p) => format!("phi{p}"),
            SliceField::Mu(c) => format!("mu{c}"),
        }
    }

    fn sample(self, b: &BlockState, x: usize, y: usize, z: usize) -> f64 {
        match self {
            SliceField::Phi(p) => b.phi_src.at(p, x, y, z),
            SliceField::Mu(c) => b.mu_src.at(c, x, y, z),
        }
    }
}

/// One assembled cross-section, ready for the wire.
#[derive(Clone, Debug)]
pub struct SliceFrame {
    /// Field sampled.
    pub field: SliceField,
    /// Time-loop step the slice was taken at.
    pub step: usize,
    /// Simulation time.
    pub time: f64,
    /// Global z of the cross-section (window coordinates).
    pub z: usize,
    /// Downsampling stride in x and y.
    pub downsample: usize,
    /// Downsampled width (x extent).
    pub w: usize,
    /// Downsampled height (y extent).
    pub h: usize,
    /// Row-major values, x fastest; `w * h` entries.
    pub data: Vec<f64>,
}

impl SliceFrame {
    /// NDJSON wire form: `{"type":"slice","field":...,"data":[...]}`.
    pub fn to_json(&self) -> String {
        let mut data = String::with_capacity(self.data.len() * 8 + 2);
        data.push('[');
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                data.push(',');
            }
            let v = if v.is_finite() { *v } else { 0.0 };
            // 5 significant digits keeps frames small; this is a viz
            // stream, not a checkpoint.
            data.push_str(&format!("{v:.5}"));
        }
        data.push(']');
        JsonObject::new()
            .str_field("type", "slice")
            .str_field("field", &self.field.name())
            .int_field("step", self.step as u64)
            .num_field("time", self.time)
            .int_field("z", self.z as u64)
            .int_field("downsample", self.downsample as u64)
            .int_field("w", self.w as u64)
            .int_field("h", self.h as u64)
            .raw_field("data", &data)
            .finish()
    }
}

/// Downsampled extent of `n` cells at stride `ds`.
fn ds_extent(n: usize, ds: usize) -> usize {
    n.div_ceil(ds)
}

/// Extract the locally owned downsampled cells of the cross-section as
/// `(flat_index, value)` pairs in the `w × h` downsampled grid.
fn extract_local(
    blocks: &[BlockState],
    domain_cells: [usize; 3],
    field: SliceField,
    z: usize,
    ds: usize,
) -> Vec<(u32, f64)> {
    let w = ds_extent(domain_cells[0], ds);
    let mut out = Vec::new();
    for b in blocks {
        let g = b.dims.ghost;
        let [ox, oy, oz] = b.origin;
        if z < oz || z >= oz + b.dims.nz {
            continue;
        }
        let lz = z - oz + g;
        for gy in (0..domain_cells[1]).step_by(ds) {
            if gy < oy || gy >= oy + b.dims.ny {
                continue;
            }
            for gx in (0..domain_cells[0]).step_by(ds) {
                if gx < ox || gx >= ox + b.dims.nx {
                    continue;
                }
                let v = field.sample(b, gx - ox + g, gy - oy + g, lz);
                let idx = (gy / ds) * w + gx / ds;
                out.push((idx as u32, v));
            }
        }
    }
    out
}

/// Single-process cross-section: extract the full downsampled plane from
/// locally held blocks (the examples path — no communication). Returns
/// `w × h` row-major values.
pub fn slice_local(
    blocks: &[BlockState],
    domain_cells: [usize; 3],
    field: SliceField,
    z: usize,
    ds: usize,
) -> Vec<f64> {
    assert!(ds >= 1, "downsample stride must be >= 1");
    let w = ds_extent(domain_cells[0], ds);
    let h = ds_extent(domain_cells[1], ds);
    let mut data = vec![0.0f64; w * h];
    for (idx, v) in extract_local(blocks, domain_cells, field, z, ds) {
        data[idx as usize] = v;
    }
    data
}

/// Collectively gather one cross-section to rank 0.
///
/// Every rank must call this with identical `(field, z, ds)` arguments
/// (it performs one `gather`). Returns `Some(frame)` on rank 0, `None`
/// elsewhere. Cells nobody owns (impossible for a valid decomposition)
/// would remain 0.
#[allow(clippy::too_many_arguments)] // a collective: all call sites pass the full tuple
pub fn gather_slice(
    rank: &Rank,
    blocks: &[BlockState],
    domain_cells: [usize; 3],
    field: SliceField,
    step: usize,
    time: f64,
    z: usize,
    ds: usize,
) -> Option<SliceFrame> {
    assert!(ds >= 1, "downsample stride must be >= 1");
    let local = extract_local(blocks, domain_cells, field, z, ds);
    // Encode (idx, value) pairs as f64s — indices up to 2^32 are exact.
    let mut flat = Vec::with_capacity(local.len() * 2);
    for (idx, v) in &local {
        flat.push(*idx as f64);
        flat.push(*v);
    }
    let pieces = rank.gather(0, f64s_to_bytes(&flat))?;

    let w = ds_extent(domain_cells[0], ds);
    let h = ds_extent(domain_cells[1], ds);
    let mut data = vec![0.0f64; w * h];
    for piece in pieces {
        let vals = bytes_to_f64s(&piece);
        for pair in vals.chunks_exact(2) {
            let idx = pair[0] as usize;
            if idx < data.len() {
                data[idx] = pair[1];
            }
        }
    }
    Some(SliceFrame {
        field,
        step,
        time,
        z,
        downsample: ds,
        w,
        h,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::GridDims;

    fn block_with_gradient(origin: [usize; 3], n: usize) -> BlockState {
        let mut b = BlockState::new(GridDims::cube(n), origin);
        let g = b.dims.ghost;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let v = (origin[0] + x) as f64 + 10.0 * (origin[1] + y) as f64;
                    b.phi_src.comp_mut(0)[b.dims.idx(x + g, y + g, z + g)] = v;
                }
            }
        }
        b
    }

    #[test]
    fn extracts_downsampled_cells_in_global_coords() {
        let blocks = vec![
            block_with_gradient([0, 0, 0], 4),
            block_with_gradient([4, 0, 0], 4),
        ];
        let cells = [8, 4, 4];
        let pairs = extract_local(&blocks, cells, SliceField::Phi(0), 2, 2);
        // Stride 2 over 8×4 → 4×2 grid, all owned locally.
        assert_eq!(pairs.len(), 8);
        let w = ds_extent(cells[0], 2);
        for (idx, v) in pairs {
            let gx = (idx as usize % w) * 2;
            let gy = (idx as usize / w) * 2;
            assert_eq!(v, gx as f64 + 10.0 * gy as f64);
        }
    }

    #[test]
    fn slice_json_round_trips() {
        let frame = SliceFrame {
            field: SliceField::Mu(1),
            step: 40,
            time: 3.2,
            z: 12,
            downsample: 2,
            w: 2,
            h: 2,
            data: vec![0.5, -0.25, f64::NAN, 1.0],
        };
        let v = crate::json::parse(&frame.to_json()).unwrap();
        assert_eq!(v.str("type"), Some("slice"));
        assert_eq!(v.str("field"), Some("mu1"));
        assert_eq!(v.get("z").unwrap().as_u64(), Some(12));
        let data = v.get("data").unwrap().as_arr().unwrap();
        assert_eq!(data.len(), 4);
        assert_eq!(data[1].as_f64(), Some(-0.25));
        assert_eq!(data[2].as_f64(), Some(0.0)); // non-finite scrubbed
    }
}
