//! Live in-situ observability plane for the eutectic solver.
//!
//! The paper's workflow is batch-shaped: run, checkpoint, post-process.
//! This crate turns the running solver into something that *serves
//! traffic*, with three pillars:
//!
//! 1. **In-situ observables** ([`observables`]) — a cadenced collective
//!    reducer computing front position/velocity/roughness, phase
//!    fractions, a lamella census with spacing estimate, undercooling,
//!    and interface density from the live distributed state, emitted as
//!    typed [`ObservableRecord`]s.
//! 2. **Subscription endpoint** ([`server`], [`bus`]) — a dependency-free
//!    TCP/HTTP server on rank 0 streaming newline-delimited JSON metrics
//!    and downsampled 2-D field slices ([`slices`]) to N concurrent
//!    subscribers over bounded-lag broadcast channels. Slow consumers
//!    drop frames (counted exactly), they never stall the sweep.
//! 3. **Perf trajectories** ([`trajectory`]) — stable-schema
//!    `BENCH_<name>.json` files recording machine info, build flags and
//!    benchmark measurements, plus a comparator that flags regressions
//!    beyond a noise band.
//!
//! Everything here is *inert* by construction: observation reads
//! `phi_src`/`mu_src` only and communicates via fresh collectives in
//! identical order on every rank, so fields stay bit-identical with the
//! plane on or off (`tests/live_observability.rs` enforces it).

#![deny(missing_docs)]

pub mod bus;
pub mod jobs;
pub mod json;
pub mod observables;
pub mod server;
pub mod slices;
pub mod trajectory;

pub use bus::{BusStats, FrameBus, Subscription};
pub use jobs::JobRecord;
pub use observables::{InSituObserver, ObservableRecord, ObservablesConfig, RecoveryRecord};
pub use server::LiveServer;
pub use slices::{gather_slice, SliceField, SliceFrame};
pub use trajectory::{compare, Comparison, Trajectory};
