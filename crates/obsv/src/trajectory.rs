//! Perf-trajectory files (`BENCH_<name>.json`) and their comparator.
//!
//! A trajectory records, in a stable schema, what a benchmark run
//! measured and on what: machine info, build flags, and a flat list of
//! keyed entries (per-kernel MLUP/s, ghost-exchange bandwidth, overheads).
//! Committing one per machine class keeps the repo honest about speed —
//! the comparator diffs two trajectories and flags changes beyond a noise
//! band, so a perf regression fails review instead of landing silently.
//!
//! Schema v1 (`schema_version: 1`):
//!
//! ```json
//! {
//!   "type": "trajectory", "schema_version": 1, "name": "baseline",
//!   "created_unix": 1754000000,
//!   "machine": {"os": "linux", "arch": "x86_64",
//!               "cpu_model": "...", "logical_cores": 8},
//!   "build": {"profile": "release", "simd": "avx2,fma"},
//!   "entries": [
//!     {"key": "phi_mlups", "value": 7.1, "unit": "MLUP/s",
//!      "higher_is_better": true}
//!   ]
//! }
//! ```
//!
//! Comparisons match entries by `key`; keys present on only one side are
//! reported but are not regressions (benchmarks grow over time).

use eutectica_telemetry::JsonObject;

use crate::json::{parse, Value};

/// Current schema version written by [`Trajectory::to_json`].
pub const SCHEMA_VERSION: u64 = 1;

/// Host description captured with each trajectory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// CPU model string from `/proc/cpuinfo` (or `"unknown"`).
    pub cpu_model: String,
    /// Logical cores visible to the process.
    pub logical_cores: u64,
}

impl MachineInfo {
    /// Probe the current host.
    pub fn detect() -> Self {
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|m| m.trim().to_string())
            })
            .unwrap_or_else(|| "unknown".to_string());
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpu_model,
            logical_cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// Build configuration captured with each trajectory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildInfo {
    /// `"release"` or `"debug"`.
    pub profile: String,
    /// Comma-separated SIMD target features compiled in.
    pub simd: String,
    /// Kernel backend resolved at *runtime* (`"avx2"` or `"portable"`) —
    /// on a capable host this reads `"avx2"` even when `simd` is empty
    /// (runtime dispatch), so "SIMD" rows can be audited against what
    /// actually ran.
    pub kernel_backend: String,
}

impl BuildInfo {
    /// Describe the current build.
    pub fn detect() -> Self {
        let mut simd = Vec::new();
        if cfg!(target_feature = "avx512f") {
            simd.push("avx512f");
        }
        if cfg!(target_feature = "avx2") {
            simd.push("avx2");
        }
        if cfg!(target_feature = "fma") {
            simd.push("fma");
        }
        if cfg!(target_feature = "sse4.2") {
            simd.push("sse4.2");
        }
        if cfg!(target_feature = "neon") {
            simd.push("neon");
        }
        Self {
            profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            simd: simd.join(","),
            kernel_backend: eutectica_core::kernels::backend::active_simd_backend().to_string(),
        }
    }
}

/// One measured quantity.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajEntry {
    /// Stable identifier, e.g. `"mu_mlups_simd_tz_buf"`.
    pub key: String,
    /// Measured value.
    pub value: f64,
    /// Unit label, e.g. `"MLUP/s"`, `"MB/s"`, `"%"`.
    pub unit: String,
    /// Direction of goodness — drives the regression test.
    pub higher_is_better: bool,
}

/// A full perf-trajectory file.
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    /// Schema version of the file this was read from / will write.
    pub schema_version: u64,
    /// Trajectory name (e.g. `"baseline"`).
    pub name: String,
    /// Unix timestamp of the recording run.
    pub created_unix: u64,
    /// Host description.
    pub machine: MachineInfo,
    /// Build description.
    pub build: BuildInfo,
    /// Measured entries, in recording order.
    pub entries: Vec<TrajEntry>,
}

impl Trajectory {
    /// Fresh trajectory for the current host and build, stamped now.
    pub fn new(name: &str) -> Self {
        let created_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Self {
            schema_version: SCHEMA_VERSION,
            name: name.to_string(),
            created_unix,
            machine: MachineInfo::detect(),
            build: BuildInfo::detect(),
            entries: Vec::new(),
        }
    }

    /// Append one measurement.
    pub fn push(&mut self, key: &str, value: f64, unit: &str, higher_is_better: bool) {
        self.entries.push(TrajEntry {
            key: key.to_string(),
            value,
            unit: unit.to_string(),
            higher_is_better,
        });
    }

    /// Value of the entry with `key`, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.iter().find(|e| e.key == key).map(|e| e.value)
    }

    /// Serialize (pretty-printed, one entry per line — the file is meant
    /// to live in git).
    pub fn to_json(&self) -> String {
        let machine = JsonObject::new()
            .str_field("os", &self.machine.os)
            .str_field("arch", &self.machine.arch)
            .str_field("cpu_model", &self.machine.cpu_model)
            .int_field("logical_cores", self.machine.logical_cores)
            .finish();
        let build = JsonObject::new()
            .str_field("profile", &self.build.profile)
            .str_field("simd", &self.build.simd)
            .str_field("kernel_backend", &self.build.kernel_backend)
            .finish();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"type\": \"trajectory\",\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!(
            "  \"name\": \"{}\",\n",
            eutectica_telemetry::escape(&self.name)
        ));
        out.push_str(&format!("  \"created_unix\": {},\n", self.created_unix));
        out.push_str(&format!("  \"machine\": {machine},\n"));
        out.push_str(&format!("  \"build\": {build},\n"));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let line = JsonObject::new()
                .str_field("key", &e.key)
                .num_field("value", e.value)
                .str_field("unit", &e.unit)
                .raw_field(
                    "higher_is_better",
                    if e.higher_is_better { "true" } else { "false" },
                )
                .finish();
            out.push_str("    ");
            out.push_str(&line);
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a trajectory file.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let sv = v.num("schema_version").ok_or("missing schema_version")? as u64;
        if sv == 0 || sv > SCHEMA_VERSION {
            return Err(format!("unsupported schema_version {sv}"));
        }
        let req_str = |obj: &Value, k: &str| -> Result<String, String> {
            obj.str(k)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string '{k}'"))
        };
        let machine = v.get("machine").ok_or("missing machine")?;
        let build = v.get("build").ok_or("missing build")?;
        let mut entries = Vec::new();
        for e in v
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or("missing entries")?
        {
            entries.push(TrajEntry {
                key: req_str(e, "key")?,
                value: e.num("value").ok_or("entry missing value")?,
                unit: req_str(e, "unit")?,
                higher_is_better: matches!(e.get("higher_is_better"), Some(Value::Bool(true))),
            });
        }
        Ok(Self {
            schema_version: sv,
            name: req_str(&v, "name")?,
            created_unix: v.num("created_unix").unwrap_or(0.0) as u64,
            machine: MachineInfo {
                os: req_str(machine, "os")?,
                arch: req_str(machine, "arch")?,
                cpu_model: req_str(machine, "cpu_model")?,
                logical_cores: machine.num("logical_cores").unwrap_or(0.0) as u64,
            },
            build: BuildInfo {
                profile: req_str(build, "profile")?,
                simd: req_str(build, "simd")?,
                // Absent in pre-runtime-dispatch files.
                kernel_backend: build.str("kernel_backend").unwrap_or("unknown").to_string(),
            },
            entries,
        })
    }

    /// Write to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read from `path`.
    pub fn read(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Self::from_json(&text)
    }
}

/// One entry's base-vs-current delta.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Entry key.
    pub key: String,
    /// Unit label (from the current side).
    pub unit: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change in the *goodness* direction: positive is
    /// better, negative is worse, regardless of `higher_is_better`.
    pub rel_change: f64,
}

/// Result of comparing two trajectories.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Noise band the comparison used.
    pub noise_band: f64,
    /// Entries worse than the noise band allows.
    pub regressions: Vec<Delta>,
    /// Entries better beyond the noise band.
    pub improvements: Vec<Delta>,
    /// Entries within the band.
    pub unchanged: Vec<Delta>,
    /// Keys present in the baseline but not the current file.
    pub missing: Vec<String>,
    /// Keys present only in the current file (new benchmarks).
    pub added: Vec<String>,
}

impl Comparison {
    /// True if any entry regressed beyond the noise band.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let pct = |d: &Delta| format!("{:+.1}%", 100.0 * d.rel_change);
        out.push_str(&format!(
            "trajectory comparison (noise band {:.0}%):\n",
            100.0 * self.noise_band
        ));
        for d in &self.regressions {
            out.push_str(&format!(
                "  REGRESSION  {:30} {:>12.3} -> {:>12.3} {}  ({})\n",
                d.key,
                d.base,
                d.current,
                d.unit,
                pct(d)
            ));
        }
        for d in &self.improvements {
            out.push_str(&format!(
                "  improved    {:30} {:>12.3} -> {:>12.3} {}  ({})\n",
                d.key,
                d.base,
                d.current,
                d.unit,
                pct(d)
            ));
        }
        for d in &self.unchanged {
            out.push_str(&format!(
                "  ok          {:30} {:>12.3} -> {:>12.3} {}  ({})\n",
                d.key,
                d.base,
                d.current,
                d.unit,
                pct(d)
            ));
        }
        for k in &self.missing {
            out.push_str(&format!("  missing     {k:30} (in baseline only)\n"));
        }
        for k in &self.added {
            out.push_str(&format!("  new         {k:30} (no baseline)\n"));
        }
        out.push_str(&format!(
            "{} regression(s), {} improvement(s), {} unchanged\n",
            self.regressions.len(),
            self.improvements.len(),
            self.unchanged.len()
        ));
        out
    }
}

/// Compare `current` against `base`: an entry regresses when it is worse
/// than `noise_band` (relative) in its goodness direction.
pub fn compare(base: &Trajectory, current: &Trajectory, noise_band: f64) -> Comparison {
    assert!((0.0..1.0).contains(&noise_band), "noise band in [0, 1)");
    let mut cmp = Comparison {
        noise_band,
        ..Comparison::default()
    };
    for b in &base.entries {
        let Some(c) = current.entries.iter().find(|c| c.key == b.key) else {
            cmp.missing.push(b.key.clone());
            continue;
        };
        // Relative change oriented so that positive == better.
        let raw = if b.value.abs() > f64::EPSILON {
            (c.value - b.value) / b.value.abs()
        } else if c.value == b.value {
            0.0
        } else {
            f64::INFINITY * (c.value - b.value).signum()
        };
        let rel_change = if b.higher_is_better { raw } else { -raw };
        let delta = Delta {
            key: b.key.clone(),
            unit: c.unit.clone(),
            base: b.value,
            current: c.value,
            rel_change,
        };
        if rel_change < -noise_band {
            cmp.regressions.push(delta);
        } else if rel_change > noise_band {
            cmp.improvements.push(delta);
        } else {
            cmp.unchanged.push(delta);
        }
    }
    for c in &current.entries {
        if !base.entries.iter().any(|b| b.key == c.key) {
            cmp.added.push(c.key.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(pairs: &[(&str, f64, bool)]) -> Trajectory {
        let mut t = Trajectory::new("test");
        for (k, v, hib) in pairs {
            t.push(k, *v, "MLUP/s", *hib);
        }
        t
    }

    #[test]
    fn json_round_trips() {
        let t = traj(&[("phi_mlups", 7.125, true), ("overhead_pct", 1.5, false)]);
        let back = Trajectory::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn regression_beyond_band_is_flagged() {
        let base = traj(&[("mu_mlups", 10.0, true)]);
        let bad = traj(&[("mu_mlups", 8.0, true)]); // -20%
        let cmp = compare(&base, &bad, 0.10);
        assert!(cmp.has_regressions());
        assert_eq!(cmp.regressions[0].key, "mu_mlups");
        assert!(cmp.regressions[0].rel_change < -0.15);
        assert!(cmp.report().contains("REGRESSION"));
    }

    #[test]
    fn noise_band_absorbs_small_changes() {
        let base = traj(&[("mu_mlups", 10.0, true)]);
        let ok = traj(&[("mu_mlups", 9.5, true)]); // -5%
        let cmp = compare(&base, &ok, 0.10);
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.unchanged.len(), 1);
    }

    #[test]
    fn lower_is_better_direction() {
        let base = traj(&[("overhead_pct", 1.0, false)]);
        let worse = traj(&[("overhead_pct", 2.0, false)]);
        let better = traj(&[("overhead_pct", 0.5, false)]);
        assert!(compare(&base, &worse, 0.10).has_regressions());
        let cmp = compare(&base, &better, 0.10);
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.improvements.len(), 1);
    }

    #[test]
    fn missing_and_added_keys_are_not_regressions() {
        let base = traj(&[("a", 1.0, true), ("b", 2.0, true)]);
        let cur = traj(&[("a", 1.0, true), ("c", 3.0, true)]);
        let cmp = compare(&base, &cur, 0.05);
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.missing, vec!["b".to_string()]);
        assert_eq!(cmp.added, vec!["c".to_string()]);
    }
}
