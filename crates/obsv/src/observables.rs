//! In-situ physics observables computed from the *running* distributed
//! state, without checkpointing.
//!
//! At a configurable step cadence the observer reduces, across all ranks:
//! front position / RMS roughness / velocity, per-phase fractions, a
//! cross-section lamella census with a lamellar-spacing estimate,
//! interface-area density, and the undercooling at the front. The result
//! is a typed [`ObservableRecord`], written as NDJSON to an optional
//! metrics file and published to an optional [`FrameBus`] (the live
//! endpoint) on rank 0.
//!
//! ## Inertness
//!
//! Observation only *reads* `phi_src`/`mu_src` and only *communicates*
//! via fresh collectives (`Rank::gather`/`Rank::broadcast` and the
//! slice gathers) executed in identical order on every rank at the same
//! step — it never writes simulation state and never reorders the sweep's
//! own messages, so fields are bit-identical with the plane on or off
//! (enforced by `tests/live_observability.rs`).
//!
//! ## Front position from integrated solid content
//!
//! Per-column front height maps ([`eutectica_analysis::front`]) are not
//! additive across a z-decomposed domain, so the distributed reducer uses
//! the integrated solid content per column, Σ_z (1 − φ_ℓ), which is: the
//! two agree for a sharp front, and the content sum is exact under any
//! block decomposition and under moving-window shifts (block origins
//! carry the lab-frame offset).

use std::io::Write as _;
use std::sync::Arc;

use eutectica_analysis::ccl::label_3d;
use eutectica_comm::{bytes_to_f64s, f64s_to_bytes};
use eutectica_core::solver::Simulation;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::DistributedSim;
use eutectica_core::{LIQ, N_PHASES};
use eutectica_telemetry::{JsonObject, Telemetry};

use crate::bus::FrameBus;
use crate::json::Value;
use crate::slices::{gather_slice, SliceField};

/// Number of solid phases (census targets).
const N_SOLID: usize = 3;

/// What to observe, and how often.
#[derive(Clone, Debug)]
pub struct ObservablesConfig {
    /// Observation cadence in time-loop steps (0 disables everything).
    pub every: usize,
    /// Emit streamed field-slice frames every `slice_every`-th observation
    /// (0 disables slice frames; the lamella census is unaffected).
    pub slice_every: usize,
    /// Fields streamed as slice frames.
    pub slice_fields: Vec<SliceField>,
    /// Downsampling stride of streamed slice frames.
    pub slice_downsample: usize,
    /// The census cross-section sits this many cells below the mean front.
    pub lamella_offset: usize,
    /// Also publish telemetry counter/gauge frames with each observation.
    pub metrics: bool,
}

impl Default for ObservablesConfig {
    fn default() -> Self {
        Self {
            every: 20,
            slice_every: 1,
            slice_fields: vec![SliceField::Phi(0), SliceField::Mu(0)],
            slice_downsample: 2,
            lamella_offset: 4,
            metrics: true,
        }
    }
}

impl ObservablesConfig {
    /// Config observing every `every` steps, defaults elsewhere.
    pub fn with_every(every: usize) -> Self {
        Self {
            every,
            ..Self::default()
        }
    }
}

/// One cadenced in-situ observation (global, lab-frame quantities).
#[derive(Clone, Debug, PartialEq)]
pub struct ObservableRecord {
    /// Time-loop step.
    pub step: usize,
    /// Simulation time.
    pub time: f64,
    /// Mean front position in lab-frame cells (window shifts included).
    pub front_mean: f64,
    /// RMS front roughness in cells.
    pub front_rms: f64,
    /// Mean front velocity in cells/time since the previous observation
    /// (0 on the first).
    pub front_velocity: f64,
    /// Global solid fraction.
    pub solid_fraction: f64,
    /// Global per-phase volume fractions (order: solid phases, liquid).
    pub phase_fractions: [f64; N_PHASES],
    /// Lamellae per solid phase in the census cross-section.
    pub lamella_count: [u64; N_SOLID],
    /// Lamellar-spacing estimate per solid phase: √(cross-section area /
    /// count) in cells; 0 where the phase has no lamellae.
    pub lamellar_spacing: [f64; N_SOLID],
    /// Lab-frame z of the census cross-section.
    pub census_z: usize,
    /// Undercooling ΔT = T_eu − T(front, t) at the mean front position.
    pub undercooling: f64,
    /// Diffuse-interface area density ∫|∇φ_α| dV / V over solid phases.
    pub interface_density: f64,
    /// Moving-window shifts so far.
    pub window_shifts: usize,
}

impl ObservableRecord {
    /// NDJSON wire form: `{"type":"observable",...}`.
    pub fn to_json(&self) -> String {
        let arr_f = |v: &[f64]| {
            let items: Vec<String> = v
                .iter()
                .map(|x| format!("{}", if x.is_finite() { *x } else { 0.0 }))
                .collect();
            format!("[{}]", items.join(","))
        };
        let arr_u = |v: &[u64]| {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(","))
        };
        JsonObject::new()
            .str_field("type", "observable")
            .int_field("step", self.step as u64)
            .num_field("time", self.time)
            .num_field("front_mean", self.front_mean)
            .num_field("front_rms", self.front_rms)
            .num_field("front_velocity", self.front_velocity)
            .num_field("solid_fraction", self.solid_fraction)
            .raw_field("phase_fractions", &arr_f(&self.phase_fractions))
            .raw_field("lamella_count", &arr_u(&self.lamella_count))
            .raw_field("lamellar_spacing", &arr_f(&self.lamellar_spacing))
            .int_field("census_z", self.census_z as u64)
            .num_field("undercooling", self.undercooling)
            .num_field("interface_density", self.interface_density)
            .int_field("window_shifts", self.window_shifts as u64)
            .finish()
    }

    /// Parse a wire frame back into a record (the smoke client / tests).
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v = crate::json::parse(line)?;
        if v.str("type") != Some("observable") {
            return Err("not an observable frame".into());
        }
        let num = |k: &str| v.num(k).ok_or_else(|| format!("missing field '{k}'"));
        let int = |k: &str| -> Result<u64, String> { num(k).map(|x| x as u64) };
        let arr = |k: &str| -> Result<&[Value], String> {
            v.get(k)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("missing array '{k}'"))
        };
        let mut phase_fractions = [0.0; N_PHASES];
        for (i, x) in arr("phase_fractions")?.iter().take(N_PHASES).enumerate() {
            phase_fractions[i] = x.as_f64().unwrap_or(0.0);
        }
        let mut lamella_count = [0u64; N_SOLID];
        let mut lamellar_spacing = [0.0; N_SOLID];
        for (i, x) in arr("lamella_count")?.iter().take(N_SOLID).enumerate() {
            lamella_count[i] = x.as_u64().unwrap_or(0);
        }
        for (i, x) in arr("lamellar_spacing")?.iter().take(N_SOLID).enumerate() {
            lamellar_spacing[i] = x.as_f64().unwrap_or(0.0);
        }
        Ok(Self {
            step: int("step")? as usize,
            time: num("time")?,
            front_mean: num("front_mean")?,
            front_rms: num("front_rms")?,
            front_velocity: num("front_velocity")?,
            solid_fraction: num("solid_fraction")?,
            phase_fractions,
            lamella_count,
            lamellar_spacing,
            census_z: int("census_z")? as usize,
            undercooling: num("undercooling")?,
            interface_density: num("interface_density")?,
            window_shifts: int("window_shifts")? as usize,
        })
    }
}

/// One shrink-recovery event: a rank death absorbed in-flight by the
/// membership-epoch protocol. Published on the live NDJSON plane as a
/// `{"type":"recovery"}` frame so dashboards can annotate the perf and
/// physics trajectories with the exact step a shrink happened.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryRecord {
    /// Step at which the death was detected.
    pub step: usize,
    /// Membership epoch installed by the recovery round.
    pub epoch: u64,
    /// Ranks newly declared dead in this round.
    pub dead_ranks: Vec<u64>,
    /// Surviving rank count after the shrink.
    pub survivors: u64,
    /// Blocks re-homed off the dead ranks.
    pub blocks_rehomed: u64,
    /// Replica frame bytes moved over the wire (0 for disk restores).
    pub bytes_moved: u64,
    /// Lost-state source: `"disk"` or `"buddy"`.
    pub source: String,
    /// Step the survivors resumed from.
    pub restored_step: usize,
    /// Wall-clock cost of the recovery in seconds.
    pub recovery_secs: f64,
}

impl RecoveryRecord {
    /// NDJSON wire form: `{"type":"recovery",...}`.
    pub fn to_json(&self) -> String {
        let dead: Vec<String> = self.dead_ranks.iter().map(|r| r.to_string()).collect();
        JsonObject::new()
            .str_field("type", "recovery")
            .int_field("step", self.step as u64)
            .int_field("epoch", self.epoch)
            .raw_field("dead_ranks", &format!("[{}]", dead.join(",")))
            .int_field("survivors", self.survivors)
            .int_field("blocks_rehomed", self.blocks_rehomed)
            .int_field("bytes_moved", self.bytes_moved)
            .str_field("source", &self.source)
            .int_field("restored_step", self.restored_step as u64)
            .num_field("recovery_secs", self.recovery_secs)
            .finish()
    }

    /// Parse a wire frame back into a record (the smoke client / tests).
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v = crate::json::parse(line)?;
        if v.str("type") != Some("recovery") {
            return Err("not a recovery frame".into());
        }
        let num = |k: &str| v.num(k).ok_or_else(|| format!("missing field '{k}'"));
        let int = |k: &str| -> Result<u64, String> { num(k).map(|x| x as u64) };
        let dead_ranks = v
            .get("dead_ranks")
            .and_then(Value::as_arr)
            .ok_or("missing array 'dead_ranks'")?
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        Ok(Self {
            step: int("step")? as usize,
            epoch: int("epoch")?,
            dead_ranks,
            survivors: int("survivors")?,
            blocks_rehomed: int("blocks_rehomed")?,
            bytes_moved: int("bytes_moved")?,
            source: v.str("source").unwrap_or_default().to_string(),
            restored_step: int("restored_step")? as usize,
            recovery_secs: num("recovery_secs")?,
        })
    }
}

/// Rank-local partial sums, reduced to rank 0 in one gather.
struct Partials {
    /// Smallest block origin z (lab frame) — the domain bottom.
    min_origin_z: f64,
    /// Interior cells summed over local blocks.
    cells: f64,
    /// Σ φ_p over local interiors, per phase.
    phase_sums: [f64; N_PHASES],
    /// Σ |∇φ| over local interiors (density × volume).
    interface_total: f64,
    /// Integrated solid content Σ_z (1 − φ_ℓ) per global (x, y) column;
    /// full cross-section, zero where not locally owned.
    col_solid: Vec<f64>,
}

impl Partials {
    fn compute(blocks: &[BlockState], domain_cells: [usize; 3]) -> Self {
        let ncols = domain_cells[0] * domain_cells[1];
        let mut p = Self {
            min_origin_z: f64::INFINITY,
            cells: 0.0,
            phase_sums: [0.0; N_PHASES],
            interface_total: 0.0,
            col_solid: vec![0.0; ncols],
        };
        for b in blocks {
            let d = b.dims;
            let g = d.ghost;
            p.min_origin_z = p.min_origin_z.min(b.origin[2] as f64);
            p.cells += d.interior_volume() as f64;
            p.interface_total +=
                eutectica_analysis::front::interface_area_density(b) * d.interior_volume() as f64;
            for ph in 0..N_PHASES {
                let comp = b.phi_src.comp(ph);
                let mut s = 0.0;
                for z in g..g + d.nz {
                    for y in g..g + d.ny {
                        let row = d.idx(g, y, z);
                        s += comp[row..row + d.nx].iter().sum::<f64>();
                    }
                }
                p.phase_sums[ph] += s;
            }
            let liq = b.phi_src.comp(LIQ);
            for y in 0..d.ny {
                for x in 0..d.nx {
                    let col = (b.origin[1] + y) * domain_cells[0] + b.origin[0] + x;
                    let mut s = 0.0;
                    for z in 0..d.nz {
                        s += 1.0 - liq[d.idx(x + g, y + g, z + g)];
                    }
                    p.col_solid[col] += s;
                }
            }
        }
        p
    }

    fn to_f64s(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(7 + self.col_solid.len());
        out.push(self.min_origin_z);
        out.push(self.cells);
        out.extend_from_slice(&self.phase_sums);
        out.push(self.interface_total);
        out.extend_from_slice(&self.col_solid);
        out
    }

    fn merge_f64s(&mut self, vals: &[f64]) {
        self.min_origin_z = self.min_origin_z.min(vals[0]);
        self.cells += vals[1];
        for (i, s) in self.phase_sums.iter_mut().enumerate() {
            *s += vals[2 + i];
        }
        self.interface_total += vals[2 + N_PHASES];
        let base = 3 + N_PHASES;
        for (c, v) in self.col_solid.iter_mut().zip(&vals[base..]) {
            *c += v;
        }
    }

    fn empty(domain_cells: [usize; 3]) -> Self {
        Self {
            min_origin_z: f64::INFINITY,
            cells: 0.0,
            phase_sums: [0.0; N_PHASES],
            interface_total: 0.0,
            col_solid: vec![0.0; domain_cells[0] * domain_cells[1]],
        }
    }
}

/// The in-situ observer: reduce, record, stream.
pub struct InSituObserver {
    cfg: ObservablesConfig,
    /// (time, lab-frame front) at the previous observation.
    prev_front: Option<(f64, f64)>,
    observations: u64,
    out: Option<std::io::BufWriter<std::fs::File>>,
    bus: Option<Arc<FrameBus>>,
    records: Vec<ObservableRecord>,
}

impl InSituObserver {
    /// Observer with the given config, no outputs attached.
    pub fn new(cfg: ObservablesConfig) -> Self {
        Self {
            cfg,
            prev_front: None,
            observations: 0,
            out: None,
            bus: None,
            records: Vec::new(),
        }
    }

    /// Write NDJSON records (and slice/metrics frames) to `path`.
    /// Only meaningful on rank 0 — other ranks never emit.
    pub fn with_output_path(mut self, path: &str) -> std::io::Result<Self> {
        self.out = Some(std::io::BufWriter::new(std::fs::File::create(path)?));
        Ok(self)
    }

    /// Publish frames to `bus` (the live endpoint's broadcast hub).
    pub fn with_bus(mut self, bus: Arc<FrameBus>) -> Self {
        self.bus = Some(bus);
        self
    }

    /// The config in use.
    pub fn config(&self) -> &ObservablesConfig {
        &self.cfg
    }

    /// Records accumulated on this rank (rank 0 only; empty elsewhere).
    pub fn records(&self) -> &[ObservableRecord] {
        &self.records
    }

    /// Whether step `step` is an observation step under this config.
    pub fn due(&self, step: usize) -> bool {
        self.cfg.every != 0 && step > 0 && step % self.cfg.every == 0
    }

    /// Observe a distributed simulation. **Collective**: every rank must
    /// call this at the same steps (drive it from the same step hook on
    /// all ranks). Cheap no-op on non-observation steps. Returns the new
    /// record on rank 0.
    pub fn observe_distributed(&mut self, sim: &DistributedSim) -> Option<ObservableRecord> {
        if !self.due(sim.step_index()) {
            return None;
        }
        let rank = sim.comm_rank();
        let domain_cells = sim.decomp().spec.cells;
        let local = Partials::compute(&sim.blocks, domain_cells);

        // 1. Reduce partials to rank 0.
        let pieces = rank.gather(0, f64s_to_bytes(&local.to_f64s()));
        let reduced = pieces.map(|pieces| {
            let mut total = Partials::empty(domain_cells);
            for piece in &pieces {
                total.merge_f64s(&bytes_to_f64s(piece));
            }
            total
        });

        // 2. Rank 0 fixes the census plane; everyone learns it.
        let census_z = {
            let z = reduced.as_ref().map_or(0.0, |t| {
                let ncols = t.col_solid.len().max(1) as f64;
                let front = t.min_origin_z + t.col_solid.iter().sum::<f64>() / ncols;
                let lo = t.min_origin_z;
                let hi = t.min_origin_z + (domain_cells[2] - 1) as f64;
                (front - self.cfg.lamella_offset as f64).clamp(lo, hi)
            });
            let bytes = rank.broadcast(0, f64s_to_bytes(&[z]));
            bytes_to_f64s(&bytes)[0].round() as usize
        };

        // 3. Full-resolution census slices of the solid phases.
        let mut lamella_count = [0u64; N_SOLID];
        let mut lamellar_spacing = [0.0; N_SOLID];
        for (ph, (count, spacing)) in lamella_count
            .iter_mut()
            .zip(lamellar_spacing.iter_mut())
            .enumerate()
        {
            let frame = gather_slice(
                rank,
                &sim.blocks,
                domain_cells,
                SliceField::Phi(ph),
                sim.step_index(),
                sim.time(),
                census_z,
                1,
            );
            if let Some(frame) = frame {
                let mask: Vec<bool> = frame.data.iter().map(|&v| v > 0.5).collect();
                let labels = label_3d(&mask, [frame.w, frame.h, 1], [true, true, false]);
                *count = labels.count as u64;
                if labels.count > 0 {
                    *spacing = ((frame.w * frame.h) as f64 / labels.count as f64).sqrt();
                }
            }
        }

        // 4. Streamed slice frames (cadenced separately).
        self.observations += 1;
        let slices_due =
            self.cfg.slice_every != 0 && self.observations % self.cfg.slice_every as u64 == 0;
        let mut slice_frames = Vec::new();
        if slices_due {
            for &field in &self.cfg.slice_fields {
                let frame = gather_slice(
                    rank,
                    &sim.blocks,
                    domain_cells,
                    field,
                    sim.step_index(),
                    sim.time(),
                    census_z,
                    self.cfg.slice_downsample.max(1),
                );
                slice_frames.extend(frame);
            }
        }

        // 5. Rank 0 finalizes and emits; other ranks are done.
        let total = reduced?;
        let record = finalize(
            &total,
            domain_cells,
            sim,
            census_z,
            lamella_count,
            lamellar_spacing,
            &mut self.prev_front,
        );
        self.emit(&record, &slice_frames, sim.telemetry());
        self.records.push(record.clone());
        Some(record)
    }

    /// Observe a single-process [`Simulation`] (the examples path). Same
    /// record, no communication.
    pub fn observe_single(&mut self, sim: &Simulation) -> Option<ObservableRecord> {
        if !self.due(sim.steps()) {
            return None;
        }
        let d = sim.state.dims;
        let domain_cells = [d.nx, d.ny, d.nz];
        let blocks = std::slice::from_ref(&sim.state);
        let total = Partials::compute(blocks, domain_cells);

        let ncols = total.col_solid.len().max(1) as f64;
        let front = total.min_origin_z + total.col_solid.iter().sum::<f64>() / ncols;
        let lo = total.min_origin_z;
        let hi = total.min_origin_z + (domain_cells[2] - 1) as f64;
        let census_z = (front - self.cfg.lamella_offset as f64)
            .clamp(lo, hi)
            .round() as usize;

        let mut lamella_count = [0u64; N_SOLID];
        let mut lamellar_spacing = [0.0; N_SOLID];
        for ph in 0..N_SOLID {
            let frame =
                crate::slices::slice_local(blocks, domain_cells, SliceField::Phi(ph), census_z, 1);
            let mask: Vec<bool> = frame.iter().map(|&v| v > 0.5).collect();
            let labels = label_3d(
                &mask,
                [domain_cells[0], domain_cells[1], 1],
                [true, true, false],
            );
            lamella_count[ph] = labels.count as u64;
            if labels.count > 0 {
                lamellar_spacing[ph] =
                    ((domain_cells[0] * domain_cells[1]) as f64 / labels.count as f64).sqrt();
            }
        }

        self.observations += 1;
        let slices_due =
            self.cfg.slice_every != 0 && self.observations % self.cfg.slice_every as u64 == 0;
        let mut slice_frames = Vec::new();
        if slices_due {
            for &field in &self.cfg.slice_fields {
                let ds = self.cfg.slice_downsample.max(1);
                let data = crate::slices::slice_local(blocks, domain_cells, field, census_z, ds);
                slice_frames.push(crate::slices::SliceFrame {
                    field,
                    step: sim.steps(),
                    time: sim.time(),
                    z: census_z,
                    downsample: ds,
                    w: domain_cells[0].div_ceil(ds),
                    h: domain_cells[1].div_ceil(ds),
                    data,
                });
            }
        }

        let record = finalize_common(
            &total,
            domain_cells,
            &sim.params,
            sim.params.sys.t_eu,
            sim.steps(),
            sim.time(),
            sim.window_shifts(),
            census_z,
            lamella_count,
            lamellar_spacing,
            &mut self.prev_front,
        );
        self.emit(&record, &slice_frames, sim.telemetry());
        self.records.push(record.clone());
        Some(record)
    }

    /// Write + publish one observation's frames and surface bus drop
    /// counters in telemetry.
    fn emit(
        &mut self,
        record: &ObservableRecord,
        slices: &[crate::slices::SliceFrame],
        tel: &Telemetry,
    ) {
        let mut frames: Vec<String> = Vec::with_capacity(slices.len() + 2);
        frames.push(record.to_json());
        for s in slices {
            frames.push(s.to_json());
        }
        if self.cfg.metrics {
            frames.push(metrics_frame(tel, record.step, record.time));
        }
        for f in &frames {
            if let Some(out) = &mut self.out {
                let _ = writeln!(out, "{f}");
            }
            if let Some(bus) = &self.bus {
                bus.publish(Arc::from(f.as_str()));
            }
        }
        if let Some(out) = &mut self.out {
            let _ = out.flush();
        }
        tel.counter_add("obsv_frames", frames.len() as u64);
        if let Some(bus) = &self.bus {
            let stats = bus.stats();
            tel.gauge_set("obsv_bus_dropped", stats.dropped as f64);
            tel.gauge_set("obsv_bus_subscribers", stats.subscribers as f64);
        }
    }
}

/// Telemetry counters/gauges as one `{"type":"metrics"}` frame, read via
/// the torn-read-safe [`Telemetry::sample`] cut.
pub fn metrics_frame(tel: &Telemetry, step: usize, time: f64) -> String {
    let snap = tel.sample().metrics;
    let mut counters = JsonObject::new();
    for (k, v) in &snap.counters {
        counters = counters.int_field(k, *v);
    }
    let mut gauges = JsonObject::new();
    for (k, v) in &snap.gauges {
        gauges = gauges.num_field(k, *v);
    }
    JsonObject::new()
        .str_field("type", "metrics")
        .int_field("step", step as u64)
        .num_field("time", time)
        .raw_field("counters", &counters.finish())
        .raw_field("gauges", &gauges.finish())
        .finish()
}

/// Distributed finalize: pull scalar context off the sim, defer to
/// [`finalize_common`].
fn finalize(
    total: &Partials,
    domain_cells: [usize; 3],
    sim: &DistributedSim,
    census_z: usize,
    lamella_count: [u64; N_SOLID],
    lamellar_spacing: [f64; N_SOLID],
    prev_front: &mut Option<(f64, f64)>,
) -> ObservableRecord {
    finalize_common(
        total,
        domain_cells,
        &sim.params,
        sim.params.sys.t_eu,
        sim.step_index(),
        sim.time(),
        sim.window_shifts(),
        census_z,
        lamella_count,
        lamellar_spacing,
        prev_front,
    )
}

#[allow(clippy::too_many_arguments)]
fn finalize_common(
    total: &Partials,
    domain_cells: [usize; 3],
    params: &eutectica_core::params::ModelParams,
    t_eu: f64,
    step: usize,
    time: f64,
    window_shifts: usize,
    census_z: usize,
    lamella_count: [u64; N_SOLID],
    lamellar_spacing: [f64; N_SOLID],
    prev_front: &mut Option<(f64, f64)>,
) -> ObservableRecord {
    let ncols = total.col_solid.len().max(1) as f64;
    let mean_content = total.col_solid.iter().sum::<f64>() / ncols;
    let front_mean = total.min_origin_z + mean_content;
    let front_rms = (total
        .col_solid
        .iter()
        .map(|c| (c - mean_content) * (c - mean_content))
        .sum::<f64>()
        / ncols)
        .sqrt();
    let front_velocity = match prev_front {
        Some((t0, f0)) if time > *t0 => (front_mean - *f0) / (time - *t0),
        _ => 0.0,
    };
    *prev_front = Some((time, front_mean));

    let cells = total.cells.max(1.0);
    let mut phase_fractions = [0.0; N_PHASES];
    for (f, s) in phase_fractions.iter_mut().zip(&total.phase_sums) {
        *f = s / cells;
    }
    let _ = domain_cells;
    ObservableRecord {
        step,
        time,
        front_mean,
        front_rms,
        front_velocity,
        solid_fraction: 1.0 - phase_fractions[LIQ],
        phase_fractions,
        lamella_count,
        lamellar_spacing,
        census_z,
        undercooling: t_eu - params.temperature(front_mean, time),
        interface_density: total.interface_total / cells,
        window_shifts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_core::params::ModelParams;

    #[test]
    fn record_json_round_trips() {
        let rec = ObservableRecord {
            step: 40,
            time: 3.2,
            front_mean: 12.5,
            front_rms: 0.75,
            front_velocity: 0.41,
            solid_fraction: 0.39,
            phase_fractions: [0.1, 0.14, 0.15, 0.61],
            lamella_count: [3, 2, 4],
            lamellar_spacing: [9.2, 11.3, 8.0],
            census_z: 8,
            undercooling: 0.021,
            interface_density: 0.33,
            window_shifts: 5,
        };
        let back = ObservableRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn planar_front_observables_are_sane() {
        let params = ModelParams::ag_al_cu();
        let mut sim = Simulation::new(params, [12, 12, 24]).unwrap();
        sim.init_planar(0, 10); // solid AlFcc below z = 10
        let mut obs = InSituObserver::new(ObservablesConfig::with_every(1));
        // due() requires step > 0; fake one observation by stepping 0 times
        // is not possible, so drive via the partials directly.
        let d = sim.state.dims;
        let total = Partials::compute(std::slice::from_ref(&sim.state), [d.nx, d.ny, d.nz]);
        let rec = finalize_common(
            &total,
            [d.nx, d.ny, d.nz],
            &sim.params,
            sim.params.sys.t_eu,
            0,
            0.0,
            0,
            6,
            [1, 0, 0],
            [12.0, 0.0, 0.0],
            &mut obs.prev_front,
        );
        // Sharp planar front at z = 10: integrated content == height.
        assert!(
            (rec.front_mean - 10.0).abs() < 0.5,
            "front {}",
            rec.front_mean
        );
        assert!(rec.front_rms < 1e-9);
        assert!((rec.solid_fraction - 10.0 / 24.0).abs() < 0.05);
        assert!((rec.phase_fractions[0] - rec.solid_fraction).abs() < 1e-9);
        assert!(rec.undercooling.is_finite());
    }

    #[test]
    fn cadence_gates_observation() {
        let obs = InSituObserver::new(ObservablesConfig::with_every(20));
        assert!(!obs.due(0));
        assert!(!obs.due(19));
        assert!(obs.due(20));
        assert!(obs.due(40));
        let off = InSituObserver::new(ObservablesConfig::with_every(0));
        assert!(!off.due(20));
    }

    #[test]
    fn recovery_record_round_trips_through_ndjson() {
        let rec = RecoveryRecord {
            step: 6,
            epoch: 2,
            dead_ranks: vec![1, 3],
            survivors: 2,
            blocks_rehomed: 3,
            bytes_moved: 269_346,
            source: "buddy".into(),
            restored_step: 4,
            recovery_secs: 0.0025,
        };
        let line = rec.to_json();
        assert!(line.starts_with("{\"type\":\"recovery\""), "{line}");
        let back = RecoveryRecord::from_json(&line).expect("parse");
        assert_eq!(back, rec);
        assert!(RecoveryRecord::from_json("{\"type\":\"metrics\"}").is_err());
    }
}
