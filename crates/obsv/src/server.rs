//! Live subscription endpoint: a dependency-free blocking TCP server that
//! streams NDJSON observability frames to N concurrent subscribers.
//!
//! Runs on rank 0 only (the observer reduces everything there). Each
//! accepted connection gets its own bounded-lag [`Subscription`] off the
//! shared [`FrameBus`] and a dedicated writer thread, so a slow socket
//! blocks *its* writer thread, never the accept loop and never the
//! publisher (the time loop). Slow consumers lose frames — see
//! [`crate::bus`] — they do not slow the simulation.
//!
//! ## Protocol
//!
//! Plain TCP clients (e.g. `nc host port`) receive newline-delimited JSON
//! immediately. If the client's first bytes look like an HTTP request
//! (`GET ...`), a minimal `HTTP/1.0 200` header with
//! `Content-Type: application/x-ndjson` is sent first and the stream
//! follows until the connection closes; this makes
//! `curl http://host:port/` work. Frame types on the wire:
//!
//! - `{"type":"observable",...}` — physics observables ([`crate::observables`])
//! - `{"type":"slice",...}` — downsampled 2-D field slices ([`crate::slices`])
//! - `{"type":"metrics",...}` — telemetry counter/gauge samples
//! - `{"type":"hello",...}` — one greeting frame per connection

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::bus::{FrameBus, Subscription};

/// How long a connection writer waits for the next frame before checking
/// the shutdown flag again.
const POLL: Duration = Duration::from_millis(100);

/// Live NDJSON endpoint bound to a TCP port.
pub struct LiveServer {
    addr: std::net::SocketAddr,
    bus: Arc<FrameBus>,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl LiveServer {
    /// Bind `addr` (use port 0 for an OS-assigned port) and start the
    /// accept loop. Frames published to `bus` from now on are streamed to
    /// every connected client.
    pub fn bind(addr: &str, bus: Arc<FrameBus>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let bus = bus.clone();
            let stop = stop.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("obsv-accept".into())
                .spawn(move || accept_loop(listener, bus, stop, connections))
                .expect("spawn accept thread")
        };
        Ok(Self {
            addr: local,
            bus,
            stop,
            connections,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The frame bus this server streams from.
    pub fn bus(&self) -> &Arc<FrameBus> {
        &self.bus
    }

    /// Total connections ever accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Stop accepting and wake the accept loop; established connections
    /// drain and close as their writers observe the flag.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is parked in accept(); poke it with a throwaway
        // connection so it observes the flag without waiting for a client.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    bus: Arc<FrameBus>,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
) {
    loop {
        let Ok((stream, peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let n = connections.fetch_add(1, Ordering::Relaxed);
        let sub = bus.subscribe();
        let stop = stop.clone();
        let _ = std::thread::Builder::new()
            .name(format!("obsv-conn-{n}"))
            .spawn(move || serve_connection(stream, peer, sub, stop));
    }
}

fn serve_connection(
    mut stream: TcpStream,
    peer: std::net::SocketAddr,
    sub: Subscription,
    stop: Arc<AtomicBool>,
) {
    // Sniff for an HTTP request line. Plain TCP subscribers send nothing,
    // so give them a short window and fall through to raw NDJSON.
    let mut is_http = false;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut probe = [0u8; 512];
    if let Ok(n) = stream.read(&mut probe) {
        is_http = probe[..n].starts_with(b"GET ") || probe[..n].starts_with(b"HEAD ");
    }
    let _ = stream.set_read_timeout(None);
    if is_http
        && stream
            .write_all(
                b"HTTP/1.0 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
            )
            .is_err()
    {
        return;
    }

    let hello = eutectica_telemetry::JsonObject::new()
        .str_field("type", "hello")
        .str_field("peer", &peer.to_string())
        .str_field("format", "ndjson")
        .finish();
    if write_line(&mut stream, &hello).is_err() {
        return;
    }

    loop {
        match sub.recv_timeout(POLL) {
            // A failed write means the client went away; Subscription drop
            // detaches us from the bus.
            Some(frame) if write_line(&mut stream, &frame).is_err() => return,
            Some(_) => {}
            None if stop.load(Ordering::SeqCst) => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            None => {}
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn serves_frames_to_tcp_client() {
        let bus = Arc::new(FrameBus::new(16));
        let mut server = LiveServer::bind("127.0.0.1:0", bus.clone()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = std::io::BufReader::new(stream);

        let mut hello = String::new();
        reader.read_line(&mut hello).unwrap();
        assert!(hello.contains("\"type\":\"hello\""), "got: {hello}");

        // Wait for the connection's subscription to attach before publishing.
        let t = std::time::Instant::now();
        while bus.stats().subscribers == 0 && t.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        bus.publish(Arc::from(r#"{"type":"observable","step":1}"#));
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), r#"{"type":"observable","step":1}"#);
        server.shutdown();
    }

    #[test]
    fn http_get_receives_header_then_frames() {
        let bus = Arc::new(FrameBus::new(16));
        let mut server = LiveServer::bind("127.0.0.1:0", bus.clone()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("HTTP/1.0 200"), "got: {line}");
        // Skip headers until the blank line, then expect the hello frame.
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line == "\n" {
                break;
            }
        }
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"type\":\"hello\""), "got: {line}");
        server.shutdown();
    }

    #[test]
    fn shutdown_terminates_promptly() {
        let bus = Arc::new(FrameBus::new(4));
        let mut server = LiveServer::bind("127.0.0.1:0", bus).unwrap();
        let t = std::time::Instant::now();
        server.shutdown();
        assert!(t.elapsed() < Duration::from_secs(5));
    }
}
