//! Campaign fleet progress frames: the `{"type":"job"}` NDJSON record.
//!
//! The campaign collector rank emits one [`JobRecord`] per job per
//! progress round onto the same [`crate::FrameBus`] the live endpoint
//! serves, so a subscriber watching a parameter sweep sees every job's
//! step count, owner rank, rollback count, and — once done — its field
//! checksum, interleaved with the usual observable/metrics frames.

use crate::json::Value;
use eutectica_telemetry::JsonObject;

/// Progress of one campaign job, as streamed to the collector rank and
/// published on the observability plane.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Dense job key from `CampaignSpec` expansion.
    pub job: u32,
    /// Human-readable parameter-point label (e.g. `v0.0200_g0.0010_c0_s42`).
    pub label: String,
    /// Rank currently stepping the job.
    pub rank: u64,
    /// Campaign progress round the frame was recorded in.
    pub round: u64,
    /// Completed steps.
    pub step: u64,
    /// Step target from the spec.
    pub steps_total: u64,
    /// Rollbacks consumed so far from the job's budget.
    pub rollbacks: u64,
    /// `"active"`, `"done"`, or `"failed"`.
    pub status: String,
    /// FNV-1a 64 checksum over the interior field bits; `0` until done.
    pub checksum: u64,
}

impl JobRecord {
    /// NDJSON wire form: `{"type":"job",...}`. The checksum travels as a
    /// fixed-width hex *string* — JSON numbers are f64 and would truncate
    /// a 64-bit digest.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str_field("type", "job")
            .int_field("job", u64::from(self.job))
            .str_field("label", &self.label)
            .int_field("rank", self.rank)
            .int_field("round", self.round)
            .int_field("step", self.step)
            .int_field("steps_total", self.steps_total)
            .int_field("rollbacks", self.rollbacks)
            .str_field("status", &self.status)
            .str_field("checksum", &format!("{:016x}", self.checksum))
            .finish()
    }

    /// Parse a wire frame back into a record (smoke clients / tests).
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v = crate::json::parse(line)?;
        if v.str("type") != Some("job") {
            return Err("not a job frame".into());
        }
        let int = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing field '{k}'"))
        };
        let checksum = v
            .str("checksum")
            .ok_or("missing field 'checksum'")
            .and_then(|s| u64::from_str_radix(s, 16).map_err(|_| "bad checksum hex"))?;
        Ok(Self {
            job: int("job")? as u32,
            label: v.str("label").unwrap_or_default().to_string(),
            rank: int("rank")?,
            round: int("round")?,
            step: int("step")?,
            steps_total: int("steps_total")?,
            rollbacks: int("rollbacks")?,
            status: v.str("status").ok_or("missing field 'status'")?.to_string(),
            checksum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_frame_round_trips() {
        let rec = JobRecord {
            job: 17,
            label: "v0.0200_g0.0010_c1_s7".into(),
            rank: 3,
            round: 12,
            step: 48,
            steps_total: 64,
            rollbacks: 1,
            status: "active".into(),
            checksum: 0xdead_beef_0123_4567,
        };
        let line = rec.to_json();
        assert!(line.starts_with("{\"type\":\"job\""), "{line}");
        let back = JobRecord::from_json(&line).expect("parse");
        assert_eq!(back, rec);
        // Checksums above 2^53 survive the hex-string encoding exactly.
        assert_eq!(back.checksum, 0xdead_beef_0123_4567);
        // Other frame types are rejected.
        assert!(JobRecord::from_json("{\"type\":\"metrics\"}").is_err());
        assert!(JobRecord::from_json("{\"type\":\"job\"}").is_err());
    }
}
