//! Bounded-lag broadcast of observability frames.
//!
//! The simulation publishes frames (NDJSON lines) at its own rate; any
//! number of subscribers consume at theirs. The two rates are decoupled by
//! a bounded per-subscriber queue: [`FrameBus::publish`] *never blocks* —
//! when a subscriber's queue is full the frame is dropped for that
//! subscriber and its drop counter advances. A stalled, slow, or
//! disconnecting consumer therefore costs the time loop one `try_send`
//! per frame, nothing more (the inertness and step-budget guarantees of
//! the observability plane rest on this property).
//!
//! Frames are reference-counted (`Arc<str>`), so fan-out to N subscribers
//! clones a pointer, not the payload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shared counters of one subscriber, visible from both ends.
#[derive(Debug, Default)]
struct SubCounters {
    /// Frames enqueued for this subscriber.
    sent: AtomicU64,
    /// Frames dropped because the subscriber's queue was full.
    dropped: AtomicU64,
}

struct SubEntry {
    id: u64,
    tx: SyncSender<Arc<str>>,
    counters: Arc<SubCounters>,
}

/// Aggregate counters of a [`FrameBus`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Frames ever published (independent of subscriber count).
    pub published: u64,
    /// Sum of frames enqueued across all subscribers, ever.
    pub sent: u64,
    /// Sum of frames dropped across all subscribers, ever (bounded-lag
    /// back-pressure releases; disconnect purges are not counted here).
    pub dropped: u64,
    /// Currently connected subscribers.
    pub subscribers: usize,
}

/// Broadcast hub: one publisher side, N bounded-queue subscribers.
pub struct FrameBus {
    capacity: usize,
    subs: Mutex<Vec<SubEntry>>,
    next_id: AtomicU64,
    published: AtomicU64,
    sent: AtomicU64,
    dropped: AtomicU64,
}

impl FrameBus {
    /// New bus whose subscribers each buffer up to `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "subscriber queues need capacity >= 1");
        Self {
            capacity,
            subs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            published: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Per-subscriber queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attach a new subscriber; frames published from now on are delivered
    /// to (or dropped for) it until the [`Subscription`] is dropped.
    pub fn subscribe(self: &Arc<Self>) -> Subscription {
        let (tx, rx) = std::sync::mpsc::sync_channel(self.capacity);
        let counters = Arc::new(SubCounters::default());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().unwrap().push(SubEntry {
            id,
            tx,
            counters: counters.clone(),
        });
        Subscription {
            bus: self.clone(),
            id,
            rx,
            counters,
        }
    }

    /// Broadcast one frame. Never blocks: full queues drop the frame (per
    /// subscriber), disconnected subscribers are removed. Returns the
    /// number of subscribers the frame was actually enqueued for.
    pub fn publish(&self, frame: Arc<str>) -> usize {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut subs = self.subs.lock().unwrap();
        let mut delivered = 0;
        subs.retain(|s| match s.tx.try_send(frame.clone()) {
            Ok(()) => {
                s.counters.sent.fetch_add(1, Ordering::Relaxed);
                self.sent.fetch_add(1, Ordering::Relaxed);
                delivered += 1;
                true
            }
            Err(TrySendError::Full(_)) => {
                s.counters.dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
        delivered
    }

    /// Aggregate counters (drop counts are exact: every publish either
    /// enqueues or increments `dropped`, per subscriber).
    pub fn stats(&self) -> BusStats {
        BusStats {
            published: self.published.load(Ordering::Relaxed),
            sent: self.sent.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            subscribers: self.subs.lock().unwrap().len(),
        }
    }

    fn unsubscribe(&self, id: u64) {
        self.subs.lock().unwrap().retain(|s| s.id != id);
    }
}

impl std::fmt::Debug for FrameBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameBus")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Consumer end of one bounded subscriber queue.
pub struct Subscription {
    bus: Arc<FrameBus>,
    id: u64,
    rx: Receiver<Arc<str>>,
    counters: Arc<SubCounters>,
}

impl Subscription {
    /// Next frame, waiting up to `timeout`. `None` on timeout; once the
    /// publisher side is gone and the queue drained, also `None`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Arc<str>> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Next frame if one is already queued.
    pub fn try_recv(&self) -> Option<Arc<str>> {
        self.rx.try_recv().ok()
    }

    /// Frames enqueued for this subscriber so far.
    pub fn sent(&self) -> u64 {
        self.counters.sent.load(Ordering::Relaxed)
    }

    /// Frames dropped for this subscriber so far (publisher found the
    /// queue full).
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Eager removal keeps stats().subscribers honest even if nothing
        // is published after the disconnect.
        self.bus.unsubscribe(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_delivers_to_all() {
        let bus = Arc::new(FrameBus::new(8));
        let a = bus.subscribe();
        let b = bus.subscribe();
        assert_eq!(bus.publish(Arc::from("x")), 2);
        assert_eq!(
            a.recv_timeout(Duration::from_secs(1)).unwrap().as_ref(),
            "x"
        );
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().as_ref(),
            "x"
        );
    }

    #[test]
    fn full_queue_drops_exactly() {
        let bus = Arc::new(FrameBus::new(3));
        let sub = bus.subscribe();
        for i in 0..10 {
            bus.publish(Arc::from(format!("{i}").as_str()));
        }
        assert_eq!(sub.sent(), 3);
        assert_eq!(sub.dropped(), 7);
        let s = bus.stats();
        assert_eq!((s.published, s.sent, s.dropped), (10, 3, 7));
        // The three oldest frames survive (queue, not ring): 0, 1, 2.
        assert_eq!(sub.try_recv().unwrap().as_ref(), "0");
    }

    #[test]
    fn disconnect_removes_subscriber() {
        let bus = Arc::new(FrameBus::new(2));
        let sub = bus.subscribe();
        assert_eq!(bus.stats().subscribers, 1);
        drop(sub);
        assert_eq!(bus.stats().subscribers, 0);
        assert_eq!(bus.publish(Arc::from("x")), 0);
    }

    #[test]
    fn publish_never_blocks_on_stalled_subscriber() {
        let bus = Arc::new(FrameBus::new(1));
        let _stalled = bus.subscribe(); // never reads
        let t = std::time::Instant::now();
        for _ in 0..100_000 {
            bus.publish(Arc::from("frame"));
        }
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "publish must be wait-free against stalled consumers"
        );
        assert_eq!(bus.stats().dropped, 99_999);
    }
}
