//! Minimal JSON parsing for the observability wire format.
//!
//! The workspace has no serde_json; emission goes through
//! [`eutectica_telemetry::JsonObject`], and this module provides the
//! matching reader: enough of RFC 8259 to decode observable/slice frames
//! off the live endpoint and to load perf-trajectory files for the
//! comparator. Numbers parse as `f64`; `\uXXXX` escapes decode including
//! surrogate pairs.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (keys in source order are not preserved; lookups by name).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)?.as_f64()`.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// Convenience: `self.get(key)?.as_str()`.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth cap: frames are flat, trajectories two levels deep; a
/// deeply nested (or adversarial) document fails instead of overflowing
/// the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require \uXXXX for the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or("invalid codepoint")?);
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_frames() {
        let v = parse(r#"{"type":"observable","step":40,"front_mean":12.5,"ok":true}"#).unwrap();
        assert_eq!(v.str("type"), Some("observable"));
        assert_eq!(v.get("step").unwrap().as_u64(), Some(40));
        assert_eq!(v.num("front_mean"), Some(12.5));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_nested_arrays_and_escapes() {
        let v = parse(r#"{"data":[1,2.5,-3e2],"s":"a\"b\né😀","n":null}"#).unwrap();
        let arr = v.get("data").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.str("s"), Some("a\"b\né😀"));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn round_trips_json_object_emission() {
        let line = eutectica_telemetry::JsonObject::new()
            .str_field("name", "tricky \"quote\"\nline")
            .int_field("n", u64::MAX)
            .num_field("x", -0.125)
            .raw_field("arr", "[1,2,3]")
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.str("name"), Some("tricky \"quote\"\nline"));
        assert_eq!(v.num("x"), Some(-0.125));
        assert_eq!(v.get("arr").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(&("[".repeat(100) + &"]".repeat(100))).is_err()); // depth cap
        assert!(parse("").is_err());
    }
}
