//! Property-based tests (proptest) on the solver's core invariants.

use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::{
    mu_sweep, phi_sweep, KernelConfig, MuPart, MuVariant, PhiVariant, SimdIsa,
};
use eutectica_core::model::{interp_h, mixture_concentration, phi_face_flux};
use eutectica_core::params::ModelParams;
use eutectica_core::simplex::{on_simplex, project_to_simplex};
use eutectica_core::state::BlockState;
use eutectica_core::temperature::SliceCtx;
use proptest::prelude::*;

fn arb_phi() -> impl Strategy<Value = [f64; 4]> {
    prop::array::uniform4(-2.0..3.0f64)
}

fn arb_simplex() -> impl Strategy<Value = [f64; 4]> {
    arb_phi().prop_map(project_to_simplex)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The projection always lands on the simplex and is idempotent.
    #[test]
    fn projection_is_valid_and_idempotent(raw in arb_phi()) {
        let p = project_to_simplex(raw);
        prop_assert!(on_simplex(p, 1e-9), "{raw:?} -> {p:?}");
        let q = project_to_simplex(p);
        for i in 0..4 {
            prop_assert!((p[i] - q[i]).abs() < 1e-12);
        }
    }

    /// Projection never moves a point that is already on the simplex.
    #[test]
    fn projection_fixes_simplex_points(p in arb_simplex()) {
        let q = project_to_simplex(p);
        for i in 0..4 {
            prop_assert!((p[i] - q[i]).abs() < 1e-9);
        }
    }

    /// The projection is a contraction towards the simplex: the projected
    /// point is never farther from any simplex point than the original.
    #[test]
    fn projection_is_euclidean_contraction(raw in arb_phi(), other in arb_simplex()) {
        let p = project_to_simplex(raw);
        let d = |a: [f64; 4], b: [f64; 4]| -> f64 {
            (0..4).map(|i| (a[i] - b[i]).powi(2)).sum()
        };
        prop_assert!(d(p, other) <= d(raw, other) + 1e-9);
    }

    /// Moelans weights are a partition of unity on the simplex.
    #[test]
    fn interpolation_partitions_unity(phi in arb_simplex()) {
        let h = interp_h(phi);
        let sum: f64 = h.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "{phi:?} -> {h:?}");
        prop_assert!(h.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
    }

    /// The staggered face flux is antisymmetric under swapping the cells:
    /// the flux cell L sends to R equals minus what R sends to L, which is
    /// what makes the finite-volume divergence telescoping (conservation).
    #[test]
    fn phi_face_flux_is_antisymmetric(l in arb_simplex(), r in arb_simplex()) {
        let params = ModelParams::ag_al_cu();
        let f_lr = phi_face_flux(&params.gamma, l, r, 1.0);
        let f_rl = phi_face_flux(&params.gamma, r, l, 1.0);
        for a in 0..4 {
            prop_assert!((f_lr[a] + f_rl[a]).abs() < 1e-12, "{f_lr:?} vs {f_rl:?}");
        }
    }

    /// Mixture concentrations stay within the physical simplex of
    /// compositions for on-simplex φ and bounded µ.
    #[test]
    fn mixture_concentration_is_bounded(phi in arb_simplex(), mu in prop::array::uniform2(-0.5..0.5f64)) {
        let params = ModelParams::ag_al_cu();
        let ctx = SliceCtx::at(&params, 0.97);
        let c = mixture_concentration(&ctx, phi, mu);
        prop_assert!(c[0] > -0.2 && c[0] < 1.2, "{c:?}");
        prop_assert!(c[1] > -0.2 && c[1] < 1.2, "{c:?}");
    }
}

/// Build a random valid block state from a proptest-provided seed.
fn state_from_seed(seed: u64, n: usize) -> BlockState {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dims = GridDims::cube(n);
    let mut s = BlockState::new(dims, [0, 0, 0]);
    for z in 0..dims.tz() {
        for y in 0..dims.ty() {
            for x in 0..dims.tx() {
                let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
                let phi = project_to_simplex(raw);
                s.phi_src.set_cell(x, y, z, phi);
                let nudged: [f64; 4] =
                    core::array::from_fn(|a| phi[a] + rng.random_range(-0.02..0.02));
                s.phi_dst.set_cell(x, y, z, project_to_simplex(nudged));
                s.mu_src.set_cell(
                    x,
                    y,
                    z,
                    [rng.random_range(-0.3..0.3), rng.random_range(-0.3..0.3)],
                );
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On arbitrary valid states, all φ-kernel variants agree and produce
    /// on-simplex output.
    #[test]
    fn phi_kernels_agree_on_arbitrary_states(seed in any::<u64>(), time in 0.0..50.0f64) {
        let params = ModelParams::ag_al_cu();
        let base = state_from_seed(seed, 6);
        let mut results = Vec::new();
        for variant in [PhiVariant::Reference, PhiVariant::Scalar, PhiVariant::SimdCellwise, PhiVariant::SimdFourCell] {
            let cfg = KernelConfig {
                phi: variant,
                mu: MuVariant::Scalar,
                isa: SimdIsa::Auto,
                tz_precompute: variant == PhiVariant::SimdCellwise,
                staggered_buffer: variant == PhiVariant::SimdCellwise,
                shortcuts: variant != PhiVariant::Reference,
            };
            let mut s = base.clone();
            phi_sweep(&params, &mut s, time, cfg);
            results.push(s);
        }
        let d = base.dims;
        for s in &results[1..] {
            for c in 0..4 {
                for (x, y, z) in d.interior_iter() {
                    let a = results[0].phi_dst.at(c, x, y, z);
                    let b = s.phi_dst.at(c, x, y, z);
                    prop_assert!((a - b).abs() < 1e-10, "phi[{c}]@({x},{y},{z}): {a} vs {b}");
                }
            }
        }
        for (x, y, z) in d.interior_iter() {
            prop_assert!(on_simplex(results[0].phi_dst.cell(x, y, z), 1e-9));
        }
    }

    /// On arbitrary valid states, all µ-kernel variants agree.
    #[test]
    fn mu_kernels_agree_on_arbitrary_states(seed in any::<u64>()) {
        let params = ModelParams::ag_al_cu();
        let base = state_from_seed(seed, 6);
        let mut results = Vec::new();
        for variant in [MuVariant::Reference, MuVariant::Scalar, MuVariant::SimdFourCell] {
            let cfg = KernelConfig {
                phi: PhiVariant::Scalar,
                mu: variant,
                isa: SimdIsa::Auto,
                tz_precompute: variant == MuVariant::SimdFourCell,
                staggered_buffer: variant == MuVariant::SimdFourCell,
                shortcuts: variant == MuVariant::SimdFourCell,
            };
            let mut s = base.clone();
            mu_sweep(&params, &mut s, 1.0, cfg, MuPart::Full);
            results.push(s);
        }
        let d = base.dims;
        for s in &results[1..] {
            for c in 0..2 {
                for (x, y, z) in d.interior_iter() {
                    let a = results[0].mu_dst.at(c, x, y, z);
                    let b = s.mu_dst.at(c, x, y, z);
                    prop_assert!((a - b).abs() < 1e-10, "mu[{c}]@({x},{y},{z}): {a} vs {b}");
                }
            }
        }
    }
}
