//! Cross-variant kernel equivalence — the paper's Sec. 5.1.1: "To decrease
//! the maintenance effort for the various kernels, a regularly running test
//! suite checks all kernel versions for equivalence."
//!
//! Within one implementation (scalar or SIMD), the T(z) / staggered-buffer /
//! shortcut flags must be **bit-exact** (they only reorganize identical
//! arithmetic or skip exactly-zero terms). Across implementations (reference
//! ↔ scalar ↔ SIMD), FMA contraction and summation order differ, so
//! equivalence holds to tight floating-point tolerance.

use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::{
    mu_sweep, phi_sweep, KernelConfig, MuPart, MuVariant, PhiVariant, SimdIsa,
};
use eutectica_core::params::ModelParams;
use eutectica_core::regions::{build_scenario, Scenario};
use eutectica_core::simplex::project_to_simplex;
use eutectica_core::state::BlockState;
use rand::{Rng, SeedableRng};

fn random_state(seed: u64, dims: GridDims) -> BlockState {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut s = BlockState::new(dims, [0, 0, 3]);
    for z in 0..dims.tz() {
        for y in 0..dims.ty() {
            for x in 0..dims.tx() {
                let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
                let phi = project_to_simplex(raw);
                s.phi_src.set_cell(x, y, z, phi);
                let nudged: [f64; 4] =
                    core::array::from_fn(|a| phi[a] + rng.random_range(-0.02..0.02));
                s.phi_dst.set_cell(x, y, z, project_to_simplex(nudged));
                s.mu_src.set_cell(
                    x,
                    y,
                    z,
                    [rng.random_range(-0.3..0.3), rng.random_range(-0.3..0.3)],
                );
            }
        }
    }
    s
}

/// Test states: random (worst case) plus the three benchmark scenarios
/// (which exercise the bulk/pure/solid shortcut paths heavily).
fn states(dims: GridDims) -> Vec<(String, BlockState)> {
    let mut v = vec![
        ("random-1".to_string(), random_state(101, dims)),
        ("random-2".to_string(), random_state(202, dims)),
    ];
    for sc in Scenario::ALL {
        v.push((format!("{:?}", sc), build_scenario(sc, dims)));
    }
    v
}

fn max_phi_diff(a: &BlockState, b: &BlockState) -> f64 {
    let mut m = 0.0f64;
    for c in 0..4 {
        for (x, y, z) in a.dims.interior_iter() {
            m = m.max((a.phi_dst.at(c, x, y, z) - b.phi_dst.at(c, x, y, z)).abs());
        }
    }
    m
}

fn max_mu_diff(a: &BlockState, b: &BlockState) -> f64 {
    let mut m = 0.0f64;
    for c in 0..2 {
        for (x, y, z) in a.dims.interior_iter() {
            m = m.max((a.mu_dst.at(c, x, y, z) - b.mu_dst.at(c, x, y, z)).abs());
        }
    }
    m
}

fn cfg(phi: PhiVariant, mu: MuVariant, tz: bool, stag: bool, sc: bool) -> KernelConfig {
    KernelConfig {
        phi,
        mu,
        isa: SimdIsa::Auto,
        tz_precompute: tz,
        staggered_buffer: stag,
        shortcuts: sc,
    }
}

#[test]
fn phi_all_variants_agree() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(10); // not a multiple of 4: remainder path too
    for (name, base) in states(dims) {
        let mut oracle = base.clone();
        phi_sweep(
            &params,
            &mut oracle,
            1.5,
            cfg(PhiVariant::Scalar, MuVariant::Scalar, false, false, false),
        );
        let variants = [
            (PhiVariant::Reference, false, false, false),
            (PhiVariant::Scalar, true, true, true),
            (PhiVariant::SimdCellwise, false, false, false),
            (PhiVariant::SimdCellwise, true, true, true),
            (PhiVariant::SimdFourCell, false, false, false),
            (PhiVariant::SimdFourCell, true, false, true),
        ];
        for (variant, tz, stag, sc) in variants {
            let mut s = base.clone();
            phi_sweep(
                &params,
                &mut s,
                1.5,
                cfg(variant, MuVariant::Scalar, tz, stag, sc),
            );
            let d = max_phi_diff(&oracle, &s);
            assert!(
                d < 1e-11,
                "{name}: φ {variant:?} (tz={tz},stag={stag},sc={sc}) differs by {d:e}"
            );
        }
    }
}

#[test]
fn mu_all_variants_agree() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(10);
    for (name, base) in states(dims) {
        let mut oracle = base.clone();
        mu_sweep(
            &params,
            &mut oracle,
            1.5,
            cfg(PhiVariant::Scalar, MuVariant::Scalar, false, false, false),
            MuPart::Full,
        );
        let variants = [
            (MuVariant::Reference, false, false, false),
            (MuVariant::Scalar, true, true, true),
            (MuVariant::SimdFourCell, false, false, false),
            (MuVariant::SimdFourCell, true, false, false),
            (MuVariant::SimdFourCell, true, true, false),
            (MuVariant::SimdFourCell, true, true, true),
        ];
        for (variant, tz, stag, sc) in variants {
            let mut s = base.clone();
            mu_sweep(
                &params,
                &mut s,
                1.5,
                cfg(PhiVariant::Scalar, variant, tz, stag, sc),
                MuPart::Full,
            );
            let d = max_mu_diff(&oracle, &s);
            assert!(
                d < 1e-11,
                "{name}: µ {variant:?} (tz={tz},stag={stag},sc={sc}) differs by {d:e}"
            );
        }
    }
}

#[test]
fn simd_cellwise_flags_are_bit_exact() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(8);
    for (name, base) in states(dims) {
        let mut oracle = base.clone();
        phi_sweep(
            &params,
            &mut oracle,
            0.7,
            cfg(
                PhiVariant::SimdCellwise,
                MuVariant::Scalar,
                false,
                false,
                false,
            ),
        );
        for tz in [false, true] {
            for stag in [false, true] {
                for sc in [false, true] {
                    let mut s = base.clone();
                    phi_sweep(
                        &params,
                        &mut s,
                        0.7,
                        cfg(PhiVariant::SimdCellwise, MuVariant::Scalar, tz, stag, sc),
                    );
                    let d = max_phi_diff(&oracle, &s);
                    assert_eq!(
                        d, 0.0,
                        "{name}: cellwise flags ({tz},{stag},{sc}) not bit-exact: {d:e}"
                    );
                }
            }
        }
    }
}

#[test]
fn simd_mu_flags_are_bit_exact() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::new(12, 8, 8, 1); // multiple of 4: pure vector path
    for (name, base) in states(dims) {
        let mut oracle = base.clone();
        mu_sweep(
            &params,
            &mut oracle,
            0.7,
            cfg(
                PhiVariant::Scalar,
                MuVariant::SimdFourCell,
                false,
                false,
                false,
            ),
            MuPart::Full,
        );
        for tz in [false, true] {
            for stag in [false, true] {
                for sc in [false, true] {
                    let mut s = base.clone();
                    mu_sweep(
                        &params,
                        &mut s,
                        0.7,
                        cfg(PhiVariant::Scalar, MuVariant::SimdFourCell, tz, stag, sc),
                        MuPart::Full,
                    );
                    let d = max_mu_diff(&oracle, &s);
                    assert_eq!(
                        d, 0.0,
                        "{name}: four-cell µ flags ({tz},{stag},{sc}) not bit-exact: {d:e}"
                    );
                }
            }
        }
    }
}

#[test]
fn split_mu_equals_full_for_all_variants() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(10);
    let base = random_state(7, dims);
    for variant in [MuVariant::Scalar, MuVariant::SimdFourCell] {
        let c = cfg(PhiVariant::Scalar, variant, true, true, true);
        let mut full = base.clone();
        mu_sweep(&params, &mut full, 0.3, c, MuPart::Full);
        let mut split = base.clone();
        mu_sweep(&params, &mut split, 0.3, c, MuPart::LocalOnly);
        mu_sweep(&params, &mut split, 0.3, c, MuPart::NeighborOnly);
        let d = max_mu_diff(&full, &split);
        assert!(d < 1e-12, "{variant:?}: split differs from full by {d:e}");
    }
}

#[test]
fn disabled_anti_trapping_changes_results_near_front_only() {
    // The ATC ablation: J_at only acts at the solidification front.
    let mut params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(12);
    let base = build_scenario(Scenario::Interface, dims);
    let c = KernelConfig::default();
    let mut with_atc = base.clone();
    mu_sweep(&params, &mut with_atc, 0.0, c, MuPart::Full);
    params.enable_atc = false;
    let mut without = base.clone();
    mu_sweep(&params, &mut without, 0.0, c, MuPart::Full);
    let d = max_mu_diff(&with_atc, &without);
    assert!(d > 0.0, "ATC had no effect at the front");
    // In the pure-liquid scenario the ATC changes nothing.
    let liquid = build_scenario(Scenario::Liquid, dims);
    params.enable_atc = true;
    let mut a = liquid.clone();
    mu_sweep(&params, &mut a, 0.0, c, MuPart::Full);
    params.enable_atc = false;
    let mut b = liquid.clone();
    mu_sweep(&params, &mut b, 0.0, c, MuPart::Full);
    assert_eq!(max_mu_diff(&a, &b), 0.0, "ATC acted in bulk liquid");
}

// ---------------------------------------------------------------------------
// Backend registry + autotuner equivalence (PR 8).

use eutectica_core::kernels::backend::{self, AutotunePolicy, BackendError};

/// Every resolvable registry backend agrees with `reference` on the full
/// φ+µ step, to the suite's stated 1e-11 cross-implementation tolerance
/// (bit-exact within the `simd-*` family is pinned separately below).
#[test]
fn registry_backends_agree_with_reference() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(10);
    let reference = backend::resolve("reference").unwrap();
    for (name, base) in states(dims) {
        let (z0, z1) = dims.interior_z_range();
        let mut oracle = base.clone();
        reference.phi_sweep_range(&params, &mut oracle, 1.5, z0, z1);
        reference.mu_sweep_range(&params, &mut oracle, 1.5, MuPart::Full, z0, z1);
        for bname in backend::registry_names() {
            let b = match backend::resolve(&bname) {
                Ok(b) => b,
                Err(BackendError::Unavailable { .. }) => {
                    // Only simd-avx2 may be unavailable, and only when the
                    // runtime detection says so.
                    assert!(bname.starts_with("simd-avx2"));
                    assert!(!eutectica_simd::avx2_available());
                    continue;
                }
                Err(e) => panic!("{bname}: {e}"),
            };
            let mut s = base.clone();
            b.phi_sweep_range(&params, &mut s, 1.5, z0, z1);
            b.mu_sweep_range(&params, &mut s, 1.5, MuPart::Full, z0, z1);
            let (dp, dm) = (max_phi_diff(&oracle, &s), max_mu_diff(&oracle, &s));
            assert!(
                dp < 1e-11 && dm < 1e-11,
                "{name}: backend {bname} differs from reference by φ {dp:e} / µ {dm:e}"
            );
        }
    }
}

/// The runtime-detected AVX2 instantiation and the forced portable
/// fallback are bit-identical — the property that makes `SimdIsa::Auto`
/// (and the autotuner's ISA switching) invisible to physics.
#[test]
fn simd_isa_instantiations_are_bit_exact() {
    if !eutectica_simd::avx2_available() {
        eprintln!("skipping: AVX2+FMA not selectable on this host/build");
        return;
    }
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(10);
    for (name, base) in states(dims) {
        for phi in [PhiVariant::SimdCellwise, PhiVariant::SimdFourCell] {
            for (tz, stag, sc) in [(false, false, false), (true, true, true)] {
                let mut c = cfg(phi, MuVariant::SimdFourCell, tz, stag, sc);
                c.isa = SimdIsa::Avx2;
                let mut avx = base.clone();
                phi_sweep(&params, &mut avx, 0.9, c);
                mu_sweep(&params, &mut avx, 0.9, c, MuPart::Full);
                c.isa = SimdIsa::Portable;
                let mut port = base.clone();
                phi_sweep(&params, &mut port, 0.9, c);
                mu_sweep(&params, &mut port, 0.9, c, MuPart::Full);
                assert_eq!(
                    max_phi_diff(&avx, &port),
                    0.0,
                    "{name}: φ {phi:?} ({tz},{stag},{sc}) avx2 vs portable not bit-exact"
                );
                assert_eq!(
                    max_mu_diff(&avx, &port),
                    0.0,
                    "{name}: µ ({tz},{stag},{sc}) avx2 vs portable not bit-exact"
                );
            }
        }
    }
}

/// Bitwise equality of the evolved source fields (post-swap).
fn bits_equal(a: &BlockState, b: &BlockState) -> bool {
    for c in 0..4 {
        for (x, y, z) in a.dims.interior_iter() {
            if a.phi_src.at(c, x, y, z).to_bits() != b.phi_src.at(c, x, y, z).to_bits() {
                return false;
            }
        }
    }
    for c in 0..2 {
        for (x, y, z) in a.dims.interior_iter() {
            if a.mu_src.at(c, x, y, z).to_bits() != b.mu_src.at(c, x, y, z).to_bits() {
                return false;
            }
        }
    }
    true
}

/// Run `schedule.len()` φ+µ steps, picking the kernel variant per step from
/// the autotune candidate list — the autotuner's warmup walk, condensed.
fn run_schedule(
    params: &ModelParams,
    base: &BlockState,
    policy: &AutotunePolicy,
    schedule: &[usize],
) -> BlockState {
    let mut s = base.clone();
    for &i in schedule {
        let c = policy.candidates[i % policy.candidates.len()].cfg;
        phi_sweep(params, &mut s, 0.5, c);
        mu_sweep(params, &mut s, 0.5, c, MuPart::Full);
        s.swap();
    }
    s
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Property: any mid-run switching schedule over the bit-exact
    /// candidate set evolves bit-identically to pinning any single
    /// candidate for the whole run — the autotuner cannot change physics.
    #[test]
    fn autotuner_variant_switches_are_bit_identical(
        schedule in proptest::collection::vec(0usize..8, 1..5),
        seed in 0u64..3,
    ) {
        let params = ModelParams::ag_al_cu();
        let policy = AutotunePolicy::bit_exact();
        let base = random_state(900 + seed, GridDims::cube(8));
        let switched = run_schedule(&params, &base, &policy, &schedule);
        for pin in 0..policy.candidates.len() {
            let pinned = run_schedule(&params, &base, &policy, &vec![pin; schedule.len()]);
            proptest::prop_assert!(
                bits_equal(&switched, &pinned),
                "schedule {:?} differs from pinning '{}'",
                schedule,
                policy.candidates[pin].name
            );
        }
    }
}
