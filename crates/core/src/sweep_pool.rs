//! Intra-rank work-sharing for the φ/µ sweeps: a small, dependency-free
//! persistent thread pool that partitions a block's interior into
//! contiguous z-slabs and runs the range-restricted kernels
//! ([`kernels::phi_sweep_range`] / [`kernels::mu_sweep_range`]) across the
//! workers — the hybrid (MPI × OpenMP) layer of the paper's Sec. 5
//! evaluation, with rank threads in `eutectica-comm` playing MPI and this
//! pool playing OpenMP.
//!
//! # Determinism
//!
//! Every sweep variant reads only the source fields and writes each
//! destination cell of its slab exactly once, and the staggered-buffer
//! kernels reprefill their z-slab buffer at the slab start from source
//! faces (pinned bit-exact against carried values by the kernel
//! flag-equivalence tests). A slab partition therefore computes *exactly*
//! the serial sweep's cells, in any order and at any thread count — the
//! threaded result is bit-identical to the serial one.
//!
//! # Panics
//!
//! Worker panics are caught, reported back over the completion channel,
//! and re-raised on the calling thread once every worker has finished the
//! current task, so the pool never deadlocks on a poisoned job.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::kernels::{self, KernelConfig, MuPart};
use crate::params::ModelParams;
use crate::state::BlockState;
use eutectica_telemetry::Telemetry;

/// Raw-pointer wrapper that asserts thread-safety of *disjoint* accesses.
///
/// # Safety invariant
///
/// Concurrent users must partition the pointee so no two threads touch the
/// same memory mutably: here, every sweep job writes only its own z-slab of
/// the destination field and reads source fields that no job writes. The
/// wrapper exists to keep that single `unsafe` contract in one documented
/// place instead of scattered casts.
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// One work-sharing request: call `f(k)` for `k = first, first+stride, …`
/// below `jobs`, then acknowledge on `done` (false = a job panicked).
struct Task {
    f: &'static (dyn Fn(usize) + Sync),
    first: usize,
    stride: usize,
    jobs: usize,
    done: Sender<bool>,
}

fn worker_loop(rx: Receiver<Task>) {
    while let Ok(task) = rx.recv() {
        let ok = catch_unwind(AssertUnwindSafe(|| {
            let mut k = task.first;
            while k < task.jobs {
                (task.f)(k);
                k += task.stride;
            }
        }))
        .is_ok();
        // The caller may itself have panicked and dropped the receiver.
        let _ = task.done.send(ok);
    }
}

/// Persistent pool of `threads - 1` workers; the calling thread is the
/// remaining participant, so `SweepPool::new(1)` spawns nothing and runs
/// everything inline (the serial configuration costs zero).
pub struct SweepPool {
    threads: usize,
    senders: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

impl SweepPool {
    /// Pool with `threads` total participants (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads - 1);
        let mut handles = Vec::with_capacity(threads - 1);
        for w in 1..threads {
            let (tx, rx) = channel::<Task>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sweep-{w}"))
                    .spawn(move || worker_loop(rx))
                    .expect("failed to spawn sweep-pool worker"),
            );
        }
        Self {
            threads,
            senders,
            handles,
        }
    }

    /// Total participants (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0), …, f(jobs-1)` across the pool, caller participating.
    /// Returns once every job has completed; re-raises job panics here.
    pub fn run(&self, jobs: usize, f: &(dyn Fn(usize) + Sync)) {
        if jobs == 0 {
            return;
        }
        let workers = self.senders.len().min(jobs - 1);
        if workers == 0 {
            for k in 0..jobs {
                f(k);
            }
            return;
        }
        // SAFETY: only the lifetime is erased. `run` does not return until
        // every worker has acknowledged completion of this task on `done`,
        // so no worker can observe `f` after it goes out of scope.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let (done_tx, done_rx) = channel::<bool>();
        let stride = workers + 1;
        for (w, tx) in self.senders.iter().take(workers).enumerate() {
            tx.send(Task {
                f: f_static,
                first: w + 1,
                stride,
                jobs,
                done: done_tx.clone(),
            })
            .expect("sweep-pool worker thread is gone");
        }
        drop(done_tx);
        let caller = catch_unwind(AssertUnwindSafe(|| {
            let mut k = 0;
            while k < jobs {
                f(k);
                k += stride;
            }
        }));
        let mut workers_ok = true;
        for _ in 0..workers {
            // A recv error means a worker died without acknowledging —
            // treat it like a panic rather than hanging forever.
            workers_ok &= done_rx.recv().unwrap_or(false);
        }
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        assert!(workers_ok, "a sweep-pool worker panicked");
    }

    /// φ-sweep over `state`, work-shared across z-slabs. Bit-identical to
    /// [`kernels::phi_sweep`] at any thread count (see module docs).
    pub fn phi_sweep(
        &self,
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        cfg: KernelConfig,
        tel: &Telemetry,
    ) {
        let (z0, z1) = state.dims.interior_z_range();
        let parts = self.threads.min(z1 - z0);
        if parts <= 1 {
            kernels::phi_sweep(params, state, time, cfg);
            return;
        }
        let ptr = SendPtr(state as *mut BlockState);
        self.run(parts, &|k| {
            let _slab = tel.span_cat("phi_slab", "compute");
            // SAFETY: job k writes only the z-slab `slab(z0, z1, parts, k)`
            // of φ_dst; slabs are disjoint and all other accessed fields
            // are read-only during the sweep (SendPtr invariant).
            let state = unsafe { &mut *ptr.get() };
            let (lo, hi) = slab(z0, z1, parts, k);
            kernels::phi_sweep_range(params, state, time, cfg, lo, hi);
        });
    }

    /// µ-sweep over `state` (any [`MuPart`]), work-shared across z-slabs.
    /// Bit-identical to [`kernels::mu_sweep`] at any thread count; the
    /// `NeighborOnly` accumulation touches only its own µ_dst cell, so it
    /// partitions just like the full sweep.
    pub fn mu_sweep(
        &self,
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        cfg: KernelConfig,
        part: MuPart,
        tel: &Telemetry,
    ) {
        let (z0, z1) = state.dims.interior_z_range();
        let parts = self.threads.min(z1 - z0);
        if parts <= 1 {
            kernels::mu_sweep(params, state, time, cfg, part);
            return;
        }
        let ptr = SendPtr(state as *mut BlockState);
        self.run(parts, &|k| {
            let _slab = tel.span_cat("mu_slab", "compute");
            // SAFETY: as in `phi_sweep` — disjoint µ_dst z-slabs, read-only
            // sources.
            let state = unsafe { &mut *ptr.get() };
            let (lo, hi) = slab(z0, z1, parts, k);
            kernels::mu_sweep_range(params, state, time, cfg, part, lo, hi);
        });
    }
}

impl Drop for SweepPool {
    fn drop(&mut self) {
        self.senders.clear(); // workers' recv() errors out → they exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for SweepPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Balanced contiguous slab `k` of `parts` over `z0..z1`: the first
/// `(z1-z0) % parts` slabs get one extra slice. Shared with the health
/// scans so they partition exactly like the sweeps.
#[inline]
pub(crate) fn slab(z0: usize, z1: usize, parts: usize, k: usize) -> (usize, usize) {
    let n = z1 - z0;
    let (base, rem) = (n / parts, n % parts);
    let lo = z0 + k * base + k.min(rem);
    (lo, lo + base + usize::from(k < rem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn slabs_tile_the_range_exactly() {
        for (z0, z1) in [(1, 9), (2, 3), (1, 1), (3, 20)] {
            for parts in 1..=8usize {
                let parts = parts.min((z1 - z0).max(1));
                let mut next = z0;
                for k in 0..parts {
                    let (lo, hi) = slab(z0, z1, parts, k);
                    assert_eq!(lo, next, "gap before slab {k}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, z1, "slabs do not cover {z0}..{z1}/{parts}");
            }
        }
    }

    #[test]
    fn run_executes_every_job_exactly_once() {
        let pool = SweepPool::new(4);
        for jobs in [0usize, 1, 3, 4, 7, 100] {
            let hits: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
            pool.run(jobs, &|k| {
                hits[k].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn single_thread_pool_spawns_no_workers() {
        let pool = SweepPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.senders.is_empty());
        let ran = AtomicUsize::new(0);
        pool.run(5, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let pool = SweepPool::new(3);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(6, &|k| {
                assert!(k != 4, "job 4 goes boom");
            });
        }));
        assert!(res.is_err());
        // The pool stays usable after a poisoned task.
        let ran = AtomicUsize::new(0);
        pool.run(6, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 6);
    }
}
