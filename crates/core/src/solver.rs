//! High-level single-process simulation façade.
//!
//! [`Simulation`] owns one block covering the whole domain and runs
//! Algorithm 1 with boundary handling in place of ghost communication
//! (periodic side walls wrap locally). For distributed runs over blocks and
//! ranks, use [`crate::timeloop`] instead; the two produce identical fields
//! (pinned by the `domain_decomposition` integration test).

use crate::init;
use crate::kernels::{self, KernelConfig, MuPart};
use crate::metrics;
use crate::params::ModelParams;
use crate::state::BlockState;
use crate::sweep_pool::SweepPool;
use crate::{LIQ, N_COMP, N_PHASES};
use eutectica_blockgrid::GridDims;
use eutectica_telemetry::Telemetry;
use std::time::Instant;

/// Moving-window configuration.
#[derive(Copy, Clone, Debug)]
pub struct MovingWindow {
    /// Shift when the front passes this fraction of the domain height.
    pub trigger_fraction: f64,
}

/// A single-process phase-field simulation.
pub struct Simulation {
    /// Model and numerical parameters.
    pub params: ModelParams,
    /// The single block holding the whole domain.
    pub state: BlockState,
    /// Kernel configuration (defaults to the fully optimized rung).
    pub cfg: KernelConfig,
    time: f64,
    step: usize,
    window: Option<MovingWindow>,
    window_shifts: usize,
    telemetry: Telemetry,
    pool: Option<SweepPool>,
}

impl Simulation {
    /// Create a liquid-filled simulation of `cells` total cells.
    pub fn new(params: ModelParams, cells: [usize; 3]) -> Result<Self, String> {
        params.validate()?;
        let dims = GridDims::new(cells[0], cells[1], cells[2], 1);
        let mut state = BlockState::new(dims, [0, 0, 0]);
        state.apply_bc_src();
        state.sync_dst_from_src();
        kernels::backend::warn_once_if_degraded(0);
        let telemetry = Telemetry::new(0);
        telemetry.counter_add(
            &format!("kernel/backend/{}", kernels::backend::active_simd_backend()),
            1,
        );
        Ok(Self {
            params,
            state,
            cfg: KernelConfig::default(),
            time: 0.0,
            step: 0,
            window: None,
            window_shifts: 0,
            telemetry,
            pool: None,
        })
    }

    /// Work-share the φ/µ sweeps across `threads` z-slab workers using an
    /// internal [`SweepPool`] — the single-block analogue of the hybrid
    /// runner's intra-rank threading. The threaded result is bit-identical
    /// to the serial one at any thread count (see [`SweepPool`] docs), so
    /// this only changes speed, never physics. `threads <= 1` restores
    /// plain serial stepping.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = (threads > 1).then(|| SweepPool::new(threads));
    }

    /// Attach an externally owned pool instead of building one, so several
    /// co-resident simulations on one rank (a campaign fleet) share a
    /// single set of sweep workers rather than spawning `threads × jobs`
    /// OS threads. The pool is taken by value; use [`Simulation::take_pool`]
    /// to move it to the next job.
    pub fn set_pool(&mut self, pool: SweepPool) {
        self.pool = Some(pool);
    }

    /// Detach the sweep pool (if any), returning it for reuse elsewhere.
    pub fn take_pool(&mut self) -> Option<SweepPool> {
        self.pool.take()
    }

    /// Threads the sweeps run on (1 = serial).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, SweepPool::threads)
    }

    /// Select the kernel backend by registry name
    /// (`family[+tz][+buf][+sc]`, see [`kernels::backend`]). Unknown names
    /// and unavailable families (`simd-avx2` on a host without AVX2+FMA)
    /// are typed errors, never silent fallbacks.
    pub fn set_backend(&mut self, name: &str) -> Result<(), kernels::backend::BackendError> {
        self.cfg = kernels::backend::resolve(name)?.config();
        Ok(())
    }

    /// The registry backend the vectorized kernels resolve to at runtime
    /// on this host (`"avx2"` or `"portable"`).
    pub fn active_backend(&self) -> &'static str {
        self.cfg.isa.resolved_name()
    }

    /// The simulation's telemetry collector. Each step records a
    /// `phi_sweep` / `mu_sweep` span and sets the `phi_sweep_mlups` /
    /// `mu_sweep_mlups` gauges (million lattice-cell updates per second,
    /// from [`crate::metrics::mlups`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replace the telemetry collector (e.g. [`Telemetry::disabled`]).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = tel;
    }

    /// MLUP/s of the most recent φ- and µ-sweeps, if telemetry is enabled.
    pub fn last_sweep_mlups(&self) -> Option<(f64, f64)> {
        let m = self.telemetry.metrics_snapshot();
        Some((
            *m.gauges.get("phi_sweep_mlups")?,
            *m.gauges.get("mu_sweep_mlups")?,
        ))
    }

    /// Initialize with Voronoi solid nuclei at the bottom (Fig. 2 setup).
    pub fn init_directional(&mut self, seed: u64) {
        let d = self.state.dims;
        let seeds = init::VoronoiSeeds::generate(
            [d.nx, d.ny],
            init::default_seed_count(d.nx, d.ny),
            self.params.sys.eutectic_fractions(),
            seed,
        );
        let fill = (d.nz / 4).max(2);
        init::init_directional_block(&mut self.state, &seeds, fill);
    }

    /// Initialize with a planar front of one solid phase.
    pub fn init_planar(&mut self, phase: usize, height: usize) {
        init::init_planar_front(&mut self.state, phase, height);
    }

    /// Enable the moving-window technique (Sec. 3.3).
    pub fn enable_moving_window(&mut self, trigger_fraction: f64) {
        assert!((0.0..1.0).contains(&trigger_fraction));
        self.window = Some(MovingWindow { trigger_fraction });
    }

    /// Execute one time step (Algorithm 1).
    pub fn step(&mut self) {
        let _step = self.telemetry.span("step");
        let cells = self.state.dims.interior_volume();
        {
            let _g = self.telemetry.span_cat("phi_sweep", "compute");
            let t = Instant::now();
            match &self.pool {
                Some(pool) => pool.phi_sweep(
                    &self.params,
                    &mut self.state,
                    self.time,
                    self.cfg,
                    &self.telemetry,
                ),
                None => kernels::phi_sweep(&self.params, &mut self.state, self.time, self.cfg),
            }
            self.telemetry.gauge_set(
                "phi_sweep_mlups",
                metrics::mlups(cells, 1, t.elapsed().as_secs_f64().max(1e-12)),
            );
        }
        self.state.bc_phi.apply(&mut self.state.phi_dst);
        {
            let _g = self.telemetry.span_cat("mu_sweep", "compute");
            let t = Instant::now();
            match &self.pool {
                Some(pool) => pool.mu_sweep(
                    &self.params,
                    &mut self.state,
                    self.time,
                    self.cfg,
                    MuPart::Full,
                    &self.telemetry,
                ),
                None => kernels::mu_sweep(
                    &self.params,
                    &mut self.state,
                    self.time,
                    self.cfg,
                    MuPart::Full,
                ),
            }
            self.telemetry.gauge_set(
                "mu_sweep_mlups",
                metrics::mlups(cells, 1, t.elapsed().as_secs_f64().max(1e-12)),
            );
        }
        self.state.bc_mu.apply(&mut self.state.mu_dst);
        self.state.swap();
        self.time += self.params.dt;
        self.step += 1;

        if let Some(w) = self.window {
            let local_trigger = self.state.dims.nz as f64 * w.trigger_fraction;
            while self.front_position() - self.state.origin[2] as f64 > local_trigger {
                self.state.shift_window_up();
                self.window_shifts += 1;
                self.state.apply_bc_src();
                // Destination ghosts are refreshed at the next step's
                // boundary handling; keep them consistent for safety.
                self.state.bc_phi.apply(&mut self.state.phi_dst);
                self.state.bc_mu.apply(&mut self.state.mu_dst);
            }
        }
    }

    /// Execute `n` steps.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Execute `n` steps, calling `hook` after each completed step — the
    /// single-block analogue of the distributed timeloop's in-situ hook,
    /// used by the campaign runner to interleave health scans, checkpoint
    /// cadence, and progress frames with a job's stepping. The hook sees
    /// the post-step state read-only; it cannot perturb the trajectory.
    pub fn step_n_with(&mut self, n: usize, mut hook: impl FnMut(&Simulation)) {
        for _ in 0..n {
            self.step();
            hook(self);
        }
    }

    /// Jump the progress counters to a restored checkpoint's position
    /// (mirrors `DistributedSim::set_progress`). The caller is responsible
    /// for having replaced [`Simulation::state`] with the matching fields.
    pub fn set_progress(&mut self, time: f64, step: usize, window_shifts: usize) {
        self.time = time;
        self.step = step;
        self.window_shifts = window_shifts;
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of executed steps.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Number of moving-window shifts so far.
    pub fn window_shifts(&self) -> usize {
        self.window_shifts
    }

    /// Mean solid fraction (1 − φ_ℓ) over the interior.
    pub fn solid_fraction(&self) -> f64 {
        let d = self.state.dims;
        let mut s = 0.0;
        for (x, y, z) in d.interior_iter() {
            s += 1.0 - self.state.phi_src.at(LIQ, x, y, z);
        }
        s / d.interior_volume() as f64
    }

    /// Per-phase mean fractions over the interior.
    pub fn phase_fractions(&self) -> [f64; N_PHASES] {
        let d = self.state.dims;
        let mut s = [0.0; N_PHASES];
        for (x, y, z) in d.interior_iter() {
            let phi = self.state.phi_src.cell(x, y, z);
            for a in 0..N_PHASES {
                s[a] += phi[a];
            }
        }
        s.map(|v| v / d.interior_volume() as f64)
    }

    /// Global z of the highest slice containing solid (the solidification
    /// front position); the block origin offset is included, so this grows
    /// monotonically under the moving window.
    pub fn front_position(&self) -> f64 {
        let d = self.state.dims;
        let g = d.ghost;
        for z in (g..g + d.nz).rev() {
            let mut solid = 0.0;
            for y in g..g + d.ny {
                for x in g..g + d.nx {
                    solid += 1.0 - self.state.phi_src.at(LIQ, x, y, z);
                }
            }
            if solid / (d.nx * d.ny) as f64 > 0.05 {
                return (self.state.origin[2] + z - g) as f64;
            }
        }
        self.state.origin[2] as f64
    }

    /// Mean chemical potential over the interior.
    pub fn mean_mu(&self) -> [f64; N_COMP] {
        let d = self.state.dims;
        let mut s = [0.0; N_COMP];
        for (x, y, z) in d.interior_iter() {
            let mu = self.state.mu_src.cell(x, y, z);
            s[0] += mu[0];
            s[1] += mu[1];
        }
        s.map(|v| v / d.interior_volume() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let mut sim = Simulation::new(ModelParams::ag_al_cu(), [12, 12, 24]).unwrap();
        sim.init_directional(1);
        let f0 = sim.solid_fraction();
        assert!(f0 > 0.1 && f0 < 0.5);
        sim.step_n(5);
        assert_eq!(sim.steps(), 5);
        assert!((sim.time() - 5.0 * sim.params.dt).abs() < 1e-12);
        // Still a valid simplex field everywhere.
        for (x, y, z) in sim.state.dims.interior_iter() {
            assert!(crate::simplex::on_simplex(
                sim.state.phi_src.cell(x, y, z),
                1e-9
            ));
        }
    }

    #[test]
    fn solidification_advances_the_front() {
        let mut p = ModelParams::ag_al_cu();
        p.t0 = 0.95; // strong undercooling for a fast test
        let mut sim = Simulation::new(p, [8, 8, 24]).unwrap();
        sim.init_planar(0, 6);
        let before = sim.solid_fraction();
        sim.step_n(60);
        let after = sim.solid_fraction();
        assert!(after > before + 0.01, "no growth: {before} -> {after}");
    }

    #[test]
    fn threaded_stepping_is_bit_identical_to_serial() {
        let mut serial = Simulation::new(ModelParams::ag_al_cu(), [8, 8, 16]).unwrap();
        serial.init_directional(11);
        serial.step_n(8);
        for threads in [2, 3] {
            let mut t = Simulation::new(ModelParams::ag_al_cu(), [8, 8, 16]).unwrap();
            t.set_threads(threads);
            assert_eq!(t.threads(), threads);
            t.init_directional(11);
            t.step_n(8);
            let d = serial.state.dims;
            for (x, y, z) in d.interior_iter() {
                for a in 0..N_PHASES {
                    assert_eq!(
                        serial.state.phi_src.at(a, x, y, z).to_bits(),
                        t.state.phi_src.at(a, x, y, z).to_bits(),
                        "phi diverged at {threads} threads"
                    );
                }
                for c in 0..N_COMP {
                    assert_eq!(
                        serial.state.mu_src.at(c, x, y, z).to_bits(),
                        t.state.mu_src.at(c, x, y, z).to_bits(),
                        "mu diverged at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_config_is_switchable_mid_run() {
        // Switching rungs mid-run must not change physics (all rungs are
        // equivalent), only speed.
        use crate::kernels::OptLevel;
        let mut a = Simulation::new(ModelParams::ag_al_cu(), [10, 10, 14]).unwrap();
        a.init_directional(4);
        let mut b = Simulation::new(ModelParams::ag_al_cu(), [10, 10, 14]).unwrap();
        b.init_directional(4);
        a.step_n(6);
        b.cfg = OptLevel::Basic.config();
        b.step_n(3);
        b.cfg = OptLevel::SimdTzBufShortcuts.config();
        b.step_n(3);
        let d = a.state.dims;
        for c in 0..N_PHASES {
            for (x, y, z) in d.interior_iter() {
                let va = a.state.phi_src.at(c, x, y, z);
                let vb = b.state.phi_src.at(c, x, y, z);
                assert!((va - vb).abs() < 1e-10, "rung switch changed physics");
            }
        }
    }

    #[test]
    fn front_position_is_monotone_under_growth() {
        let mut p = ModelParams::ag_al_cu();
        p.t0 = 0.94;
        p.grad_g = 0.0;
        let mut sim = Simulation::new(p, [8, 8, 24]).unwrap();
        sim.init_planar(2, 8);
        let mut prev = sim.front_position();
        for _ in 0..5 {
            sim.step_n(60);
            let f = sim.front_position();
            assert!(f + 1.0 >= prev, "front retreated: {prev} -> {f}");
            prev = f;
        }
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        let mut sim = Simulation::new(ModelParams::ag_al_cu(), [10, 10, 12]).unwrap();
        sim.init_directional(8);
        sim.step_n(20);
        let f = sim.phase_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn telemetry_reports_sweep_mlups() {
        let mut sim = Simulation::new(ModelParams::ag_al_cu(), [8, 8, 8]).unwrap();
        sim.init_directional(3);
        sim.step_n(2);
        let (phi, mu) = sim.last_sweep_mlups().unwrap();
        assert!(phi > 0.0 && mu > 0.0, "mlups gauges not set: {phi} {mu}");
        // The sweeps accrued as spans nested under "step".
        assert!(sim.telemetry().node_secs("step/phi_sweep").unwrap() > 0.0);
        assert!(sim.telemetry().node_secs("step/mu_sweep").unwrap() > 0.0);
        // A disabled collector reports nothing.
        let mut quiet = Simulation::new(ModelParams::ag_al_cu(), [8, 8, 8]).unwrap();
        quiet.set_telemetry(Telemetry::disabled());
        quiet.init_directional(3);
        quiet.step_n(1);
        assert!(quiet.last_sweep_mlups().is_none());
    }

    #[test]
    fn moving_window_keeps_front_inside_domain() {
        let mut p = ModelParams::ag_al_cu();
        p.t0 = 0.95;
        p.grad_g = 0.0; // uniform undercooling: steady growth
        let mut sim = Simulation::new(p, [8, 8, 20]).unwrap();
        sim.init_planar(0, 9);
        sim.enable_moving_window(0.5);
        sim.step_n(400);
        // Window must have shifted and the local front must stay near or
        // below the trigger height.
        assert!(sim.window_shifts() > 0, "window never moved");
        let local_front = sim.front_position() - sim.state.origin[2] as f64;
        assert!(local_front <= 20.0 * 0.8, "front ran away: {local_front}");
        // The global front position keeps increasing despite the shifts.
        assert!(sim.front_position() > 9.0);
    }
}
