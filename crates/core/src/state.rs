//! Per-block simulation state: the four fields of Algorithm 1.
//!
//! "Two lattices are allocated for each variable: two destination fields
//! denoted by φdst and µdst and two source fields" (Sec. 2.1). Source fields
//! hold time t, destination fields receive t + Δt; they are swapped at the
//! end of each step.

use eutectica_blockgrid::boundary::{Bc, BoundarySpec};
use eutectica_blockgrid::field::SoaField;
use eutectica_blockgrid::GridDims;

use crate::{N_COMP, N_PHASES};

/// Simulation state of one block.
#[derive(Clone, Debug)]
pub struct BlockState {
    /// Grid geometry (ghost width 1).
    pub dims: GridDims,
    /// Global cell coordinates of this block's first interior cell.
    pub origin: [usize; 3],
    /// Order parameters at time t.
    pub phi_src: SoaField<N_PHASES>,
    /// Order parameters at time t + Δt.
    pub phi_dst: SoaField<N_PHASES>,
    /// Chemical potentials at time t.
    pub mu_src: SoaField<N_COMP>,
    /// Chemical potentials at time t + Δt.
    pub mu_dst: SoaField<N_COMP>,
    /// Boundary conditions for the φ fields on physical faces.
    pub bc_phi: BoundarySpec<N_PHASES>,
    /// Boundary conditions for the µ fields on physical faces.
    pub bc_mu: BoundarySpec<N_COMP>,
}

/// φ value of pure liquid.
pub const PHI_LIQUID: [f64; N_PHASES] = [0.0, 0.0, 0.0, 1.0];

impl BlockState {
    /// Liquid-filled block at eutectic chemical potential (µ = 0), with the
    /// paper's directional boundary conditions: periodic side walls, Neumann
    /// at the bottom (grown solid), Dirichlet fresh liquid at the top.
    pub fn new(dims: GridDims, origin: [usize; 3]) -> Self {
        use eutectica_blockgrid::Face;
        let bc_phi = BoundarySpec::uniform(Bc::Periodic)
            .with_face(Face::ZLow, Bc::Neumann)
            .with_face(Face::ZHigh, Bc::Dirichlet(PHI_LIQUID));
        let bc_mu = BoundarySpec::uniform(Bc::Periodic)
            .with_face(Face::ZLow, Bc::Neumann)
            .with_face(Face::ZHigh, Bc::Dirichlet([0.0; N_COMP]));
        Self {
            dims,
            origin,
            phi_src: SoaField::new(dims, PHI_LIQUID),
            phi_dst: SoaField::new(dims, PHI_LIQUID),
            mu_src: SoaField::new(dims, [0.0; N_COMP]),
            mu_dst: SoaField::new(dims, [0.0; N_COMP]),
            bc_phi,
            bc_mu,
        }
    }

    /// Swap source and destination fields (Algorithm 1, line 7).
    pub fn swap(&mut self) {
        self.phi_src.swap(&mut self.phi_dst);
        self.mu_src.swap(&mut self.mu_dst);
    }

    /// Apply physical boundary conditions to the destination fields.
    pub fn apply_bc_dst(&mut self) {
        self.bc_phi.apply(&mut self.phi_dst);
        self.bc_mu.apply(&mut self.mu_dst);
    }

    /// Apply physical boundary conditions to the source fields (used once
    /// after initialization).
    pub fn apply_bc_src(&mut self) {
        self.bc_phi.apply(&mut self.phi_src);
        self.bc_mu.apply(&mut self.mu_src);
    }

    /// Advance the moving window by one cell: all fields shift one cell
    /// towards −z; fresh liquid at eutectic µ enters at the top. The bottom
    /// slice (deep solid, negligible evolution) leaves the domain.
    pub fn shift_window_up(&mut self) {
        self.phi_src.shift_z_down(PHI_LIQUID);
        self.phi_dst.shift_z_down(PHI_LIQUID);
        self.mu_src.shift_z_down([0.0; N_COMP]);
        self.mu_dst.shift_z_down([0.0; N_COMP]);
        self.origin[2] += 1;
    }

    /// Copy src fields into dst (so untouched dst ghost/boundary data is
    /// consistent before the first step).
    pub fn sync_dst_from_src(&mut self) {
        self.phi_dst = self.phi_src.clone();
        self.mu_dst = self.mu_src.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_liquid_at_eutectic() {
        let s = BlockState::new(GridDims::cube(4), [0, 0, 0]);
        assert_eq!(s.phi_src.cell(2, 2, 2), PHI_LIQUID);
        assert_eq!(s.mu_src.cell(2, 2, 2), [0.0; 2]);
    }

    #[test]
    fn swap_exchanges_src_dst() {
        let mut s = BlockState::new(GridDims::cube(3), [0, 0, 0]);
        s.phi_dst.set_cell(1, 1, 1, [1.0, 0.0, 0.0, 0.0]);
        s.swap();
        assert_eq!(s.phi_src.cell(1, 1, 1), [1.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.phi_dst.cell(1, 1, 1), PHI_LIQUID);
    }

    #[test]
    fn window_shift_advances_origin_and_injects_liquid() {
        let mut s = BlockState::new(GridDims::cube(3), [0, 0, 5]);
        s.phi_src.set_cell(1, 1, 3, [1.0, 0.0, 0.0, 0.0]); // top interior
        s.shift_window_up();
        assert_eq!(s.origin[2], 6);
        // The marked cell moved down one slice...
        assert_eq!(s.phi_src.cell(1, 1, 2), [1.0, 0.0, 0.0, 0.0]);
        // ...and the top is fresh liquid again.
        assert_eq!(s.phi_src.cell(1, 1, 3), PHI_LIQUID);
    }
}
