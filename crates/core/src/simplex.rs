//! Projection onto the Gibbs simplex Δ³ = {φ ∈ ℝ⁴ : Σφ = 1, φ ≥ 0}.
//!
//! The multi-obstacle potential ω(φ) is only finite on the simplex, so after
//! every explicit update the order parameters are projected back — the
//! "routine that projects the φ values back into the allowed simplex" whose
//! branches the paper identifies as the source of region-dependent φ-kernel
//! runtimes (Sec. 5.1.1).
//!
//! The projection is the Euclidean one (Michelot's algorithm, specialized to
//! four components): sort descending, find the largest prefix that stays
//! positive after the common shift, clip the rest to zero.

/// Project `phi` onto the Gibbs simplex (Σ = 1, all components ≥ 0).
///
/// Returns the projected values. Exact fixed points: any `phi` already on
/// the simplex is returned unchanged (up to no-op arithmetic), in particular
/// pure-phase corners — which the bulk shortcut of the optimized kernels
/// relies on.
#[inline]
pub fn project_to_simplex(phi: [f64; 4]) -> [f64; 4] {
    // Sort a copy descending (sorting network for 4 elements).
    let mut u = phi;
    #[inline(always)]
    fn cswap(u: &mut [f64; 4], i: usize, j: usize) {
        if u[i] < u[j] {
            u.swap(i, j);
        }
    }
    cswap(&mut u, 0, 1);
    cswap(&mut u, 2, 3);
    cswap(&mut u, 0, 2);
    cswap(&mut u, 1, 3);
    cswap(&mut u, 1, 2);

    // Find ρ = max{ j : u_j + (1 − Σ_{k≤j} u_k)/j > 0 } and the shift λ.
    let mut cumsum = 0.0;
    let mut lambda = 0.0;
    for j in 0..4 {
        cumsum += u[j];
        let l = (1.0 - cumsum) / (j as f64 + 1.0);
        if u[j] + l > 0.0 {
            lambda = l;
        }
    }
    [
        (phi[0] + lambda).max(0.0),
        (phi[1] + lambda).max(0.0),
        (phi[2] + lambda).max(0.0),
        (phi[3] + lambda).max(0.0),
    ]
}

/// True if `phi` lies on the simplex within `tol`.
pub fn on_simplex(phi: [f64; 4], tol: f64) -> bool {
    let sum: f64 = phi.iter().sum();
    (sum - 1.0).abs() <= tol && phi.iter().all(|&p| p >= -tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_on_simplex(p: [f64; 4]) {
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum {sum} of {p:?}");
        assert!(p.iter().all(|&x| x >= 0.0), "negative component in {p:?}");
    }

    #[test]
    fn projects_out_of_bound_points() {
        for phi in [
            [1.2, -0.1, -0.05, -0.05],
            [0.5, 0.5, 0.5, 0.5],
            [-1.0, -1.0, -1.0, -1.0],
            [2.0, 0.0, 0.0, 0.0],
            [0.3, 0.3, 0.3, 0.3],
        ] {
            let p = project_to_simplex(phi);
            assert_on_simplex(p);
        }
    }

    #[test]
    fn simplex_points_are_fixed() {
        for phi in [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.25, 0.25, 0.25, 0.25],
            [0.5, 0.3, 0.2, 0.0],
            [0.7, 0.0, 0.1, 0.2],
        ] {
            let p = project_to_simplex(phi);
            for i in 0..4 {
                assert!((p[i] - phi[i]).abs() < 1e-15, "{phi:?} moved to {p:?}");
            }
        }
    }

    #[test]
    fn pure_corner_is_exact_fixed_point() {
        // Bit-exactness matters: the bulk shortcut assumes corners stay put.
        let p = project_to_simplex([0.0, 1.0, 0.0, 0.0]);
        assert_eq!(p, [0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn projection_is_idempotent() {
        let phi = [0.9, 0.4, -0.2, 0.1];
        let p1 = project_to_simplex(phi);
        let p2 = project_to_simplex(p1);
        for i in 0..4 {
            assert!((p1[i] - p2[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn projection_is_euclidean_nearest_point() {
        // Against a brute-force search over a fine simplex grid.
        let phi = [0.6, 0.6, -0.1, 0.0];
        let p = project_to_simplex(phi);
        let dist = |a: [f64; 4]| -> f64 { (0..4).map(|i| (a[i] - phi[i]).powi(2)).sum::<f64>() };
        let d_proj = dist(p);
        let n = 40;
        for i in 0..=n {
            for j in 0..=n - i {
                for k in 0..=n - i - j {
                    let l = n - i - j - k;
                    let q = [
                        i as f64 / n as f64,
                        j as f64 / n as f64,
                        k as f64 / n as f64,
                        l as f64 / n as f64,
                    ];
                    assert!(
                        dist(q) >= d_proj - 1e-9,
                        "{q:?} closer than projection {p:?}"
                    );
                }
            }
        }
    }
}
