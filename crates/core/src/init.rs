//! Initial conditions.
//!
//! "As initial setup we use solid nuclei at the bottom of a liquid filled
//! domain ... created by a Voronoi tesselation with respect to the given
//! volume fractions of the phases" (Sec. 2.1, Fig. 2). Seeds are columnar
//! (2-D Voronoi in the x-y plane, periodic), assigned to the three solid
//! phases so the seed count per phase matches the eutectic volume fractions.
//!
//! All initializers work in *global* coordinates through the block origin,
//! so a multi-block/multi-rank initialization is identical to a single-block
//! one.

use rand::{Rng, SeedableRng};

use crate::params::ModelParams;
use crate::state::{BlockState, PHI_LIQUID};
use crate::{LIQ, N_PHASES};

/// Columnar Voronoi seed set over a periodic x-y domain.
#[derive(Clone, Debug)]
pub struct VoronoiSeeds {
    /// Seed position (x, y) and assigned solid phase (0..3).
    pub seeds: Vec<([f64; 2], usize)>,
    /// Periodic domain extent in cells.
    pub domain: [usize; 2],
}

impl VoronoiSeeds {
    /// Generate `n_seeds` random seeds with phase counts proportional to the
    /// given volume `fractions` (summing to 1).
    pub fn generate(domain_xy: [usize; 2], n_seeds: usize, fractions: [f64; 3], seed: u64) -> Self {
        assert!(n_seeds >= 3, "need at least one seed per solid phase");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Deterministic phase assignment honoring the fractions (largest
        // remainder), then shuffled so phases are spatially mixed.
        let mut counts = [0usize; 3];
        let mut assigned = 0;
        for p in 0..3 {
            counts[p] = ((fractions[p] * n_seeds as f64).floor() as usize).max(1);
            assigned += counts[p];
        }
        let mut p = 0;
        while assigned < n_seeds {
            counts[p] += 1;
            assigned += 1;
            p = (p + 1) % 3;
        }
        while assigned > n_seeds {
            let pmax = (0..3).max_by_key(|&q| counts[q]).unwrap();
            counts[pmax] -= 1;
            assigned -= 1;
        }
        let mut phases: Vec<usize> = (0..3)
            .flat_map(|q| std::iter::repeat_n(q, counts[q]))
            .collect();
        // Fisher-Yates shuffle.
        for i in (1..phases.len()).rev() {
            let j = rng.random_range(0..=i);
            phases.swap(i, j);
        }
        let seeds = phases
            .into_iter()
            .map(|ph| {
                (
                    [
                        rng.random_range(0.0..domain_xy[0] as f64),
                        rng.random_range(0.0..domain_xy[1] as f64),
                    ],
                    ph,
                )
            })
            .collect();
        Self {
            seeds,
            domain: domain_xy,
        }
    }

    /// Solid phase of the Voronoi cell containing (x, y), with periodic
    /// wrap-around distance.
    pub fn phase_at(&self, x: f64, y: f64) -> usize {
        let (lx, ly) = (self.domain[0] as f64, self.domain[1] as f64);
        let mut best = f64::INFINITY;
        let mut phase = 0;
        for (pos, ph) in &self.seeds {
            let mut dx = (x - pos[0]).abs();
            let mut dy = (y - pos[1]).abs();
            if dx > lx * 0.5 {
                dx = lx - dx;
            }
            if dy > ly * 0.5 {
                dy = ly - dy;
            }
            let d = dx * dx + dy * dy;
            if d < best {
                best = d;
                phase = *ph;
            }
        }
        phase
    }
}

/// Fill a block with the directional-solidification initial condition:
/// Voronoi solid columns below `fill_height` (global z), liquid above, µ at
/// the eutectic equilibrium (0).
pub fn init_directional_block(state: &mut BlockState, seeds: &VoronoiSeeds, fill_height: usize) {
    let dims = state.dims;
    let g = dims.ghost;
    let origin = state.origin;
    for z in 0..dims.nz {
        let gz = origin[2] + z;
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let phi = if gz < fill_height {
                    let ph = seeds.phase_at((origin[0] + x) as f64, (origin[1] + y) as f64);
                    let mut v = [0.0; N_PHASES];
                    v[ph] = 1.0;
                    v
                } else {
                    PHI_LIQUID
                };
                state.phi_src.set_cell(x + g, y + g, z + g, phi);
                state.mu_src.set_cell(x + g, y + g, z + g, [0.0; 2]);
            }
        }
    }
    state.sync_dst_from_src();
    state.apply_bc_src();
    state.bc_phi.apply(&mut state.phi_dst);
    state.bc_mu.apply(&mut state.mu_dst);
}

/// Planar solid front of one phase below `height` (global z).
pub fn init_planar_front(state: &mut BlockState, phase: usize, height: usize) {
    assert!(phase < LIQ);
    let dims = state.dims;
    let g = dims.ghost;
    for z in 0..dims.nz {
        let gz = state.origin[2] + z;
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let mut phi = PHI_LIQUID;
                if gz < height {
                    phi = [0.0; N_PHASES];
                    phi[phase] = 1.0;
                }
                state.phi_src.set_cell(x + g, y + g, z + g, phi);
                state.mu_src.set_cell(x + g, y + g, z + g, [0.0; 2]);
            }
        }
    }
    state.sync_dst_from_src();
    state.apply_bc_src();
    state.bc_phi.apply(&mut state.phi_dst);
    state.bc_mu.apply(&mut state.mu_dst);
}

/// A spherical solid nucleus of `phase` centered at global `center` with
/// `radius`, embedded in liquid (used by tests and the quickstart example).
pub fn init_sphere(state: &mut BlockState, phase: usize, center: [f64; 3], radius: f64) {
    assert!(phase < LIQ);
    let dims = state.dims;
    let g = dims.ghost;
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let p = [
                    (state.origin[0] + x) as f64,
                    (state.origin[1] + y) as f64,
                    (state.origin[2] + z) as f64,
                ];
                let d2: f64 = (0..3).map(|i| (p[i] - center[i]).powi(2)).sum();
                let mut phi = PHI_LIQUID;
                if d2 <= radius * radius {
                    phi = [0.0; N_PHASES];
                    phi[phase] = 1.0;
                }
                state.phi_src.set_cell(x + g, y + g, z + g, phi);
                state.mu_src.set_cell(x + g, y + g, z + g, [0.0; 2]);
            }
        }
    }
    state.sync_dst_from_src();
    state.apply_bc_src();
    state.bc_phi.apply(&mut state.phi_dst);
    state.bc_mu.apply(&mut state.mu_dst);
}

/// Number of seeds that gives the paper-like lamella spacing: roughly one
/// seed per (16 cells)² of cross section, at least 3.
pub fn default_seed_count(nx: usize, ny: usize) -> usize {
    ((nx * ny) / 256).max(3)
}

/// Convenience: the eutectic volume fractions from the model parameters.
pub fn eutectic_fractions(params: &ModelParams) -> [f64; 3] {
    params.sys.eutectic_fractions()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::GridDims;

    #[test]
    fn seed_phases_respect_fractions() {
        let fr = [0.5, 0.25, 0.25];
        let s = VoronoiSeeds::generate([64, 64], 40, fr, 1);
        let mut counts = [0usize; 3];
        for (_, p) in &s.seeds {
            counts[*p] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 40);
        assert!((counts[0] as f64 - 20.0).abs() <= 2.0, "{counts:?}");
        assert!((counts[1] as f64 - 10.0).abs() <= 2.0, "{counts:?}");
    }

    #[test]
    fn voronoi_fill_covers_three_phases_and_liquid_above() {
        let dims = GridDims::new(32, 32, 16, 1);
        let mut st = BlockState::new(dims, [0, 0, 0]);
        let seeds = VoronoiSeeds::generate([32, 32], 12, [0.34, 0.33, 0.33], 7);
        init_directional_block(&mut st, &seeds, 6);
        let mut seen = [false; 4];
        for (x, y, z) in dims.interior_iter() {
            let phi = st.phi_src.cell(x, y, z);
            let gz = z - 1;
            if gz < 6 {
                assert_eq!(phi[LIQ], 0.0, "liquid below fill height at z={gz}");
            } else {
                assert_eq!(phi, PHI_LIQUID, "not liquid above fill height");
            }
            for a in 0..4 {
                if phi[a] == 1.0 {
                    seen[a] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "phases missing: {seen:?}");
    }

    #[test]
    fn voronoi_volume_fractions_roughly_match() {
        let dims = GridDims::new(64, 64, 4, 1);
        let mut st = BlockState::new(dims, [0, 0, 0]);
        let fr = [0.39, 0.24, 0.37];
        let seeds = VoronoiSeeds::generate([64, 64], 48, fr, 3);
        init_directional_block(&mut st, &seeds, 4);
        let mut counts = [0usize; 3];
        let mut total = 0usize;
        for (x, y, z) in dims.interior_iter() {
            let phi = st.phi_src.cell(x, y, z);
            for a in 0..3 {
                if phi[a] == 1.0 {
                    counts[a] += 1;
                }
            }
            total += 1;
        }
        for a in 0..3 {
            let got = counts[a] as f64 / total as f64;
            assert!(
                (got - fr[a]).abs() < 0.15,
                "phase {a}: {got:.2} vs {:.2}",
                fr[a]
            );
        }
    }

    #[test]
    fn multi_block_init_matches_single_block() {
        // Initializing two half-blocks with the same seeds must equal the
        // single-block initialization (global-coordinate invariance).
        let seeds = VoronoiSeeds::generate([16, 16], 6, [0.34, 0.33, 0.33], 9);
        let full = {
            let mut st = BlockState::new(GridDims::new(16, 16, 8, 1), [0, 0, 0]);
            init_directional_block(&mut st, &seeds, 4);
            st
        };
        let lower = {
            let mut st = BlockState::new(GridDims::new(16, 16, 4, 1), [0, 0, 0]);
            init_directional_block(&mut st, &seeds, 4);
            st
        };
        let upper = {
            let mut st = BlockState::new(GridDims::new(16, 16, 4, 1), [0, 0, 4]);
            init_directional_block(&mut st, &seeds, 4);
            st
        };
        for z in 0..4 {
            for y in 0..16 {
                for x in 0..16 {
                    assert_eq!(
                        full.phi_src.cell(x + 1, y + 1, z + 1),
                        lower.phi_src.cell(x + 1, y + 1, z + 1)
                    );
                    assert_eq!(
                        full.phi_src.cell(x + 1, y + 1, z + 4 + 1),
                        upper.phi_src.cell(x + 1, y + 1, z + 1)
                    );
                }
            }
        }
    }

    #[test]
    fn sphere_init() {
        let dims = GridDims::cube(16);
        let mut st = BlockState::new(dims, [0, 0, 0]);
        init_sphere(&mut st, 1, [8.0, 8.0, 8.0], 4.0);
        assert_eq!(st.phi_src.cell(9, 9, 9), [0.0, 1.0, 0.0, 0.0]);
        assert_eq!(st.phi_src.cell(2, 2, 2), PHI_LIQUID);
    }
}
