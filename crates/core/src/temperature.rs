//! Frozen-temperature ansatz and per-slice precomputation.
//!
//! "For the directional solidification, we use a frozen temperature
//! assumption by imprinting an analytical temperature gradient with a
//! defined velocity" (Sec. 2). Since T depends only on z and t, every
//! temperature-dependent model quantity can be evaluated once per x-y-slice
//! — the paper's "T(z) optimization" worth +80 % on the φ-kernel and +20 %
//! on the µ-kernel (Sec. 5.1.1, Fig. 6).
//!
//! [`SliceCtx`] bundles those per-slice values. The optimized kernels build
//! one per slice; the unoptimized rungs rebuild it per *cell*, which is
//! arithmetically identical (bit-exact) but redundant — exactly the work the
//! optimization removes.

use crate::params::ModelParams;
use crate::{LIQ, N_COMP, N_PHASES};
use eutectica_thermo::SliceThermo;

/// Per-phase, per-component coefficient table type.
pub type Coeffs = [[f64; N_COMP]; N_PHASES];

/// Temperature-dependent quantities of one x-y-slice.
#[derive(Copy, Clone, Debug)]
pub struct SliceCtx {
    /// Slice temperature.
    pub t: f64,
    /// Equilibrium concentrations c^eq_α(T).
    pub c_eq: Coeffs,
    /// Grand-potential offsets X_α(T).
    pub offset: [f64; N_PHASES],
    /// 1/(4 k_i(T)) per phase.
    pub inv4k: Coeffs,
    /// Susceptibilities 1/(2 k_i(T)) per phase.
    pub inv2k: Coeffs,
    /// Mobility coefficients D_α χ_α(T) per phase.
    pub mob: Coeffs,
    /// Gradient-energy prefactor T·ε.
    pub pref_grad: f64,
    /// Obstacle prefactor 16 T / (π² ε).
    pub pref_obst: f64,
}

impl SliceCtx {
    /// Evaluate at temperature `t`.
    pub fn at(params: &ModelParams, t: f64) -> Self {
        let th = SliceThermo::at(&params.sys, t);
        Self {
            t,
            c_eq: th.c_eq,
            offset: th.offset,
            inv4k: th.inv4k,
            inv2k: th.inv2k,
            mob: th.mob,
            pref_grad: t * params.eps,
            pref_obst: ModelParams::obstacle_scale() * t / params.eps,
        }
    }

    /// Grand potential ψ_α(µ) at this slice's temperature.
    #[inline(always)]
    pub fn grand_potential(&self, alpha: usize, mu: [f64; N_COMP]) -> f64 {
        -(mu[0] * mu[0] * self.inv4k[alpha][0] + mu[1] * mu[1] * self.inv4k[alpha][1])
            - (mu[0] * self.c_eq[alpha][0] + mu[1] * self.c_eq[alpha][1])
            + self.offset[alpha]
    }

    /// Phase concentration c^α(µ) at this slice's temperature.
    #[inline(always)]
    pub fn c_of_mu(&self, alpha: usize, mu: [f64; N_COMP]) -> [f64; N_COMP] {
        [
            self.c_eq[alpha][0] + mu[0] * self.inv2k[alpha][0],
            self.c_eq[alpha][1] + mu[1] * self.inv2k[alpha][1],
        ]
    }

    /// Difference c^ℓ(µ) − c^α(µ) entering the anti-trapping current.
    #[inline(always)]
    pub fn c_liq_minus_c(&self, alpha: usize, mu: [f64; N_COMP]) -> [f64; N_COMP] {
        [
            (self.c_eq[LIQ][0] - self.c_eq[alpha][0])
                + mu[0] * (self.inv2k[LIQ][0] - self.inv2k[alpha][0]),
            (self.c_eq[LIQ][1] - self.c_eq[alpha][1])
                + mu[1] * (self.inv2k[LIQ][1] - self.inv2k[alpha][1]),
        ]
    }
}

/// Per-slice contexts for a whole block: cell-centered and z-face-centered.
///
/// The z-face context at `z+1/2` is the context evaluated at the mean of the
/// two adjacent slice temperatures; both cells adjacent to a face use the
/// identical face context so the staggered-buffer variant (which evaluates
/// each face once) is bit-exact with the unbuffered variant.
pub struct SliceTable {
    /// Cell context per total z coordinate.
    pub cell: Vec<SliceCtx>,
    /// Face context between total z and z+1 (index z).
    pub zface: Vec<SliceCtx>,
}

impl SliceTable {
    /// Build for `tz` total slices whose first slice has global z
    /// `origin_z − ghost` at simulation time `time`.
    pub fn build(
        params: &ModelParams,
        origin_z: isize,
        tz: usize,
        ghost: usize,
        time: f64,
    ) -> Self {
        let temp = |z_total: usize| -> f64 {
            let gz = origin_z as f64 + z_total as f64 - ghost as f64;
            params.temperature(gz, time)
        };
        let cell: Vec<SliceCtx> = (0..tz).map(|z| SliceCtx::at(params, temp(z))).collect();
        let zface: Vec<SliceCtx> = (0..tz)
            .map(|z| {
                let tf = if z + 1 < tz {
                    0.5 * (temp(z) + temp(z + 1))
                } else {
                    temp(z)
                };
                SliceCtx::at(params, tf)
            })
            .collect();
        Self { cell, zface }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_ctx_matches_thermo() {
        let p = ModelParams::ag_al_cu();
        let ctx = SliceCtx::at(&p, 0.98);
        for a in 0..N_PHASES {
            let mu = [0.2, -0.1];
            assert!(
                (ctx.grand_potential(a, mu) - p.sys.grand_potential(a, mu, 0.98)).abs() < 1e-14
            );
            let c1 = ctx.c_of_mu(a, mu);
            let c2 = p.sys.c_of_mu(a, mu, 0.98);
            assert!((c1[0] - c2[0]).abs() < 1e-14 && (c1[1] - c2[1]).abs() < 1e-14);
            let d = ctx.c_liq_minus_c(a, mu);
            let cl = p.sys.c_of_mu(LIQ, mu, 0.98);
            assert!((d[0] - (cl[0] - c2[0])).abs() < 1e-14);
            assert!((d[1] - (cl[1] - c2[1])).abs() < 1e-14);
            // Susceptibility and mobility tables match the system.
            let chi = p.sys.susceptibility(a, 0.98);
            assert!((ctx.inv2k[a][0] - chi[0]).abs() < 1e-15);
            let mob = p.sys.mobility(a, 0.98);
            assert!((ctx.mob[a][1] - mob[1]).abs() < 1e-15);
        }
    }

    #[test]
    fn slice_table_temperatures_increase_with_z() {
        let p = ModelParams::ag_al_cu();
        let tab = SliceTable::build(&p, 0, 10, 1, 0.0);
        for z in 1..10 {
            assert!(tab.cell[z].t > tab.cell[z - 1].t);
            // Face temperature lies between the adjacent cells.
            if z < 9 {
                assert!(tab.zface[z].t > tab.cell[z].t && tab.zface[z].t < tab.cell[z + 1].t);
            }
        }
        // Global origin shifts the whole profile.
        let tab2 = SliceTable::build(&p, 5, 10, 1, 0.0);
        assert!((tab2.cell[0].t - tab.cell[5].t).abs() < 1e-14);
    }
}
