//! Performance metrics: MLUP/s accounting, exact FLOP counting, and memory
//! traffic estimates.
//!
//! "The presented performance results are measured in MLUP/s, which stands
//! for 'million lattice cell updates per second'" (Sec. 5). The roofline
//! analysis of Sec. 5.1.1 additionally needs the exact number of floating
//! point operations per cell update (the paper: 1384 FLOPs for a µ-cell) and
//! the bytes moved per update (≤ 680 B under the 50 %-cache-reuse
//! assumption); [`Counting`] measures the former by running the generic
//! reference kernel on an instrumented scalar type, [`mu_bytes_per_cell`]
//! derives the latter from the field layout.

use core::ops::{Add, Div, Mul, Sub};
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::kernels::reference::{
    gather19, ref_mu_cell_faces, ref_phi_cell_faces, GeneralModel, Scratch,
};
use crate::params::ModelParams;
use crate::{N_COMP, N_PHASES};

/// Abstraction over f64 used by the reference kernel so the identical code
/// path can run on [`Counting`] for FLOP measurement.
pub trait Real:
    Copy
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
{
    /// Lift a constant. Constants do not count as operations.
    fn from_f64(v: f64) -> Self;
    /// Extract the value.
    fn to_f64(self) -> f64;
    /// Square root (counted separately — hardware `vsqrtsd` class).
    fn sqrt(self) -> Self;
    /// Maximum (a comparison/blend, not a FLOP).
    fn max(self, o: Self) -> Self;
}

impl Real for f64 {
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        f64::max(self, o)
    }
}

// Process-wide tallies. They used to be `thread_local!` `Cell`s, which
// silently read back 0 when the counted arithmetic ran on a worker thread
// (e.g. under the sweep pool); relaxed atomics make counts visible across
// threads, and `MEASURE_GUARD` serializes whole reset→run→read sections so
// concurrently running measurements (cargo test runs tests in parallel)
// cannot bleed into each other's tallies.
static ADDS: AtomicU64 = AtomicU64::new(0);
static MULS: AtomicU64 = AtomicU64::new(0);
static DIVS: AtomicU64 = AtomicU64::new(0);
static SQRTS: AtomicU64 = AtomicU64::new(0);
static MEASURE_GUARD: Mutex<()> = Mutex::new(());

/// Hold the process-wide measurement lock for one reset→run→read section.
fn measure_lock() -> MutexGuard<'static, ()> {
    MEASURE_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// FLOP tally per operation class.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FlopCount {
    /// Additions and subtractions.
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
    /// Square roots.
    pub sqrts: u64,
}

impl FlopCount {
    /// Total floating-point operations (divisions and square roots count 1
    /// each; their *latency* weight is handled by the in-core model).
    pub fn total(&self) -> u64 {
        self.adds + self.muls + self.divs + self.sqrts
    }

    /// Imbalance between additions and multiplications, the paper's
    /// explanation for not reaching peak: "imbalance in the number of
    /// additions and multiplication". 1.0 = perfectly balanced.
    pub fn add_mul_balance(&self) -> f64 {
        let (a, m) = (self.adds as f64, self.muls as f64);
        if a.max(m) == 0.0 {
            return 1.0;
        }
        a.min(m) / a.max(m)
    }
}

/// Instrumented scalar that tallies every arithmetic operation.
#[derive(Copy, Clone, Debug, PartialEq, PartialOrd)]
pub struct Counting(pub f64);

impl Real for Counting {
    #[inline]
    fn from_f64(v: f64) -> Self {
        Counting(v)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.0
    }
    #[inline]
    fn sqrt(self) -> Self {
        SQRTS.fetch_add(1, Ordering::Relaxed);
        Counting(self.0.sqrt())
    }
    #[inline]
    fn max(self, o: Self) -> Self {
        Counting(self.0.max(o.0))
    }
}

impl Add for Counting {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        ADDS.fetch_add(1, Ordering::Relaxed);
        Counting(self.0 + o.0)
    }
}

impl Sub for Counting {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // the `+` increments the op counter
    fn sub(self, o: Self) -> Self {
        ADDS.fetch_add(1, Ordering::Relaxed);
        Counting(self.0 - o.0)
    }
}

impl Mul for Counting {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // the `+` increments the op counter
    fn mul(self, o: Self) -> Self {
        MULS.fetch_add(1, Ordering::Relaxed);
        Counting(self.0 * o.0)
    }
}

impl Div for Counting {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // the `+` increments the op counter
    fn div(self, o: Self) -> Self {
        DIVS.fetch_add(1, Ordering::Relaxed);
        Counting(self.0 / o.0)
    }
}

fn reset_counters() {
    ADDS.store(0, Ordering::Relaxed);
    MULS.store(0, Ordering::Relaxed);
    DIVS.store(0, Ordering::Relaxed);
    SQRTS.store(0, Ordering::Relaxed);
}

fn read_counters() -> FlopCount {
    FlopCount {
        adds: ADDS.load(Ordering::Relaxed),
        muls: MULS.load(Ordering::Relaxed),
        divs: DIVS.load(Ordering::Relaxed),
        sqrts: SQRTS.load(Ordering::Relaxed),
    }
}

/// Measure the FLOPs of one φ-cell update by running the reference kernel
/// on the instrumented type (an interface-like cell, so no term is skipped).
/// Coefficients are frozen per slice, so this is the per-cell cost of the
/// T(z)-amortized kernels — the quantity the paper reports.
pub fn phi_flops_per_cell(params: &ModelParams) -> FlopCount {
    // Lock before the first `Counting` op: even model construction tallies,
    // and a concurrent measurement must not observe it.
    let _measure = measure_lock();
    let mut model = GeneralModel::<Counting>::from_params(params);
    model.freeze_at(params, 0.97);
    let mut scratch = Scratch::<Counting>::new(N_PHASES);
    let mk = |v: [f64; 4]| -> Vec<Counting> { v.iter().map(|&x| Counting(x)).collect() };
    let stencil: [Vec<Counting>; 7] = [
        mk([0.4, 0.2, 0.1, 0.3]),
        mk([0.45, 0.2, 0.1, 0.25]),
        mk([0.35, 0.2, 0.1, 0.35]),
        mk([0.4, 0.25, 0.1, 0.25]),
        mk([0.4, 0.15, 0.1, 0.35]),
        mk([0.5, 0.2, 0.1, 0.2]),
        mk([0.3, 0.2, 0.1, 0.4]),
    ];
    let mu = [Counting(0.05), Counting(-0.02)];
    reset_counters();
    // `buffered = true`: staggered faces evaluated once per cell, exactly
    // like the optimized kernels whose rate the roofline compares against.
    ref_phi_cell_faces(
        &model,
        params,
        &stencil,
        &mu,
        Counting(0.97),
        &mut scratch,
        true,
    );
    read_counters()
}

/// Measure the FLOPs of one µ-cell update (interface cell, full J_at path),
/// with temperature-dependent coefficients frozen per slice (the paper's
/// amortized counting).
pub fn mu_flops_per_cell(params: &ModelParams) -> FlopCount {
    let _measure = measure_lock();
    let mut model = GeneralModel::<Counting>::from_params(params);
    model.freeze_at(params, 0.97);
    count_mu_cell(params, &model)
}

/// FLOPs of one µ-cell update with every temperature-dependent coefficient
/// recomputed per cell — the per-cell cost of the pre-T(z) rungs. The
/// difference to [`mu_flops_per_cell`] is exactly the arithmetic that the
/// T(z) optimization amortizes.
pub fn mu_flops_per_cell_unamortized(params: &ModelParams) -> FlopCount {
    let _measure = measure_lock();
    let model = GeneralModel::<Counting>::from_params(params);
    count_mu_cell(params, &model)
}

fn count_mu_cell(params: &ModelParams, model: &GeneralModel<Counting>) -> FlopCount {
    let mut scratch = Scratch::<Counting>::new(N_PHASES);
    // Build a small field with an interface so every J_at guard passes.
    let dims = eutectica_blockgrid::GridDims::cube(3);
    let mut phi = eutectica_blockgrid::field::SoaField::<N_PHASES>::new(dims, [0.0; N_PHASES]);
    for z in 0..dims.tz() {
        for y in 0..dims.ty() {
            for x in 0..dims.tx() {
                let f = (x + 2 * y + 3 * z) as f64 * 0.021;
                let raw = [0.30 + f, 0.20 - 0.5 * f, 0.10 + 0.2 * f, 0.40 - 0.7 * f];
                phi.set_cell(x, y, z, crate::simplex::project_to_simplex(raw));
            }
        }
    }
    let ps = phi.comps();
    let i = dims.idx(2, 2, 2);
    let (sy, sz) = (dims.sy(), dims.sz());
    let mut phi19: Vec<Vec<Counting>> = Vec::new();
    gather19(&ps, i, sy, sz, &mut phi19);
    let phi_new7: [Vec<Counting>; 7] = core::array::from_fn(|k| {
        phi19[k]
            .iter()
            .map(|p| Counting((p.0 * 0.99 + 0.0025).clamp(0.0, 1.0)))
            .collect()
    });
    let mu7: [Vec<Counting>; 7] =
        core::array::from_fn(|k| vec![Counting(0.01 * k as f64), Counting(-0.02 * k as f64)]);
    reset_counters();
    let _ = ref_mu_cell_faces(
        model,
        params,
        &phi19,
        &phi_new7,
        &mu7,
        Counting(0.97),
        Counting(0.9695),
        Counting(0.9705),
        &mut scratch,
        true,
    );
    read_counters()
}

/// Bytes that must cross the memory interface per µ-cell update under the
/// paper's cache model: "approximately half of the required data for one
/// update can be held in cache" — the reused x-y-slices of the stencil load
/// once. Loads: φ_src (D3C19 → ~19/2 cells × 4 comps), φ_dst (same), µ_src
/// (D3C7 → ~7/2 × 2), write µ_dst (2) + write-allocate.
pub fn mu_bytes_per_cell() -> usize {
    let f = 8; // f64
    let phi_loads = (19usize.div_ceil(2)) * N_PHASES * 2; // src + dst
    let mu_loads = 7usize.div_ceil(2) * N_COMP;
    let mu_store = N_COMP * 2; // store + write-allocate fill
    (phi_loads + mu_loads + mu_store) * f
}

/// Same estimate for the φ-kernel (D3C7 on φ, local µ, write φ_dst).
pub fn phi_bytes_per_cell() -> usize {
    let f = 8;
    let phi_loads = 7usize.div_ceil(2) * N_PHASES;
    let mu_loads = N_COMP;
    let phi_store = N_PHASES * 2;
    (phi_loads + mu_loads + phi_store) * f
}

/// Million lattice-cell updates per second.
pub fn mlups(cells: usize, steps: usize, seconds: f64) -> f64 {
    (cells as f64 * steps as f64) / seconds / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_type_counts() {
        let _measure = measure_lock();
        reset_counters();
        let a = Counting(2.0);
        let b = Counting(3.0);
        let _ = a + b;
        let _ = a * b;
        let _ = a / b;
        let _ = (a - b).sqrt();
        let c = read_counters();
        assert_eq!(c.adds, 2); // one add, one sub
        assert_eq!(c.muls, 1);
        assert_eq!(c.divs, 1);
        assert_eq!(c.sqrts, 1);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn counts_from_spawned_threads_are_visible() {
        // Regression: with `thread_local!` tallies, operations performed on
        // a worker thread (as the sweep pool does) read back as 0 here.
        let _measure = measure_lock();
        reset_counters();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let a = Counting(1.5);
                    let b = Counting(2.5);
                    let _ = a + b;
                    let _ = a * b;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let c = read_counters();
        assert_eq!(c.adds, 3);
        assert_eq!(c.muls, 3);
    }

    #[test]
    fn kernel_flop_counts_are_substantial_and_stable() {
        let p = ModelParams::ag_al_cu();
        let phi = phi_flops_per_cell(&p);
        let mu = mu_flops_per_cell(&p);
        // The paper's µ-kernel does 1384 FLOPs/cell; ours is the same order.
        assert!(
            mu.total() > 500 && mu.total() < 5000,
            "µ FLOPs implausible: {mu:?}"
        );
        assert!(
            phi.total() > 200 && phi.total() < 3000,
            "φ FLOPs implausible: {phi:?}"
        );
        // Deterministic.
        assert_eq!(phi, phi_flops_per_cell(&p));
        assert_eq!(mu, mu_flops_per_cell(&p));
        // The T(z) amortization removes a substantial share of the work.
        let un = mu_flops_per_cell_unamortized(&p);
        assert!(
            un.total() > mu.total() + 200,
            "amortization too small: {} -> {}",
            un.total(),
            mu.total()
        );
    }

    #[test]
    fn byte_estimates() {
        assert_eq!(mu_bytes_per_cell(), (10 * 4 * 2 + 4 * 2 + 4) * 8);
        assert!(phi_bytes_per_cell() < mu_bytes_per_cell());
    }

    #[test]
    fn mlups_math() {
        assert!((mlups(1_000_000, 10, 2.0) - 5.0).abs() < 1e-12);
    }
}
