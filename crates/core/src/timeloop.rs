//! Distributed time loop: Algorithms 1 and 2 over blocks and ranks.
//!
//! Each rank owns a contiguous set of blocks from the static decomposition.
//! Every time step runs the φ- and µ-sweeps on all local blocks with ghost
//! layers exchanged through `eutectica-comm` (local block pairs copy
//! directly; remote pairs send serialized face messages).
//!
//! The four communication-hiding combinations of Fig. 8 are supported via
//! [`OverlapOptions`]:
//!
//! * **hide µ**: the µ_src ghost exchange is posted *before* the φ-sweep and
//!   completed after it — straightforward "since the following update of the
//!   phase-field only depends on local µ values" (Sec. 3.3). The µ-field
//!   needs no edge ghosts, so all six face messages are independent.
//! * **hide φ**: the φ_dst exchange's x-phase is posted before the *local*
//!   µ-sweep; the sequenced y/z phases (which must wait for x) run after it,
//!   followed by the neighbor µ-sweep (the J_at part). This requires the
//!   split µ-kernel, whose per-slice temperature values are computed twice —
//!   the overhead that makes φ-hiding a net loss in the paper's Fig. 8.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use bytes::Bytes;
use eutectica_blockgrid::balance::imbalance;
use eutectica_blockgrid::boundary::{Bc, BoundarySpec};
use eutectica_blockgrid::codec::DEFAULT_FIELD_BYTE_BUDGET;
use eutectica_blockgrid::decomp::Decomposition;
use eutectica_blockgrid::ghost;
use eutectica_blockgrid::rebalance::{
    blend_weights, plan_rebalance, CostEntry, CostModel, RebalancePolicy,
};
use eutectica_blockgrid::Face;
use eutectica_comm::{
    bytes_to_f64s_into, f64s_to_bytes, user_tag, CommStats, FaultPhase, Rank, RecvRequest,
    TagStats, COLLECTIVE_TAG, MEMBERSHIP_TAG,
};
use eutectica_telemetry::{StepRecord, Telemetry};

use crate::health::{self, HealthMonitor, HealthReport, ScanStats};
use crate::kernels::backend::{self as kernel_backend, AutotunePolicy, AutotuneStats, Autotuner};
use crate::kernels::{KernelConfig, MuPart};
use crate::metrics;
use crate::params::ModelParams;
use crate::state::{BlockState, PHI_LIQUID};
use crate::sweep_pool::SweepPool;
use crate::{LIQ, N_COMP, N_PHASES};

/// Which ghost exchanges to overlap with computation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OverlapOptions {
    /// Hide the µ communication behind the φ-sweep.
    pub hide_mu: bool,
    /// Hide (part of) the φ communication behind the split µ-sweep.
    pub hide_phi: bool,
}

impl OverlapOptions {
    /// All four combinations measured in Fig. 8.
    pub const ALL: [OverlapOptions; 4] = [
        OverlapOptions {
            hide_mu: false,
            hide_phi: false,
        },
        OverlapOptions {
            hide_mu: true,
            hide_phi: false,
        },
        OverlapOptions {
            hide_mu: false,
            hide_phi: true,
        },
        OverlapOptions {
            hide_mu: true,
            hide_phi: true,
        },
    ];
}

/// Exposed (non-hidden) time per communication routine, plus compute time.
///
/// This is a *derived view* over the rank's telemetry timing tree: the
/// spans opened inside [`DistributedSim::step`] accrue into the tree, and
/// the tree is folded back into these fields after every step. With
/// telemetry disabled the durations stay zero (only `steps` counts).
#[derive(Copy, Clone, Debug, Default)]
pub struct StepTimings {
    /// Time in the φ ghost-exchange routines.
    pub phi_comm: Duration,
    /// Time in the µ ghost-exchange routines.
    pub mu_comm: Duration,
    /// Time in compute sweeps.
    pub compute: Duration,
    /// Time applying boundary conditions.
    pub bc: Duration,
    /// Time in [`DistributedSim::refresh_src_ghosts`] (init and
    /// moving-window refreshes).
    pub ghost_refresh: Duration,
    /// Steps accumulated.
    pub steps: usize,
}

impl StepTimings {
    fn saturating_sub(self, base: StepTimings) -> StepTimings {
        StepTimings {
            phi_comm: self.phi_comm.saturating_sub(base.phi_comm),
            mu_comm: self.mu_comm.saturating_sub(base.mu_comm),
            compute: self.compute.saturating_sub(base.compute),
            bc: self.bc.saturating_sub(base.bc),
            ghost_refresh: self.ghost_refresh.saturating_sub(base.ghost_refresh),
            steps: self.steps.saturating_sub(base.steps),
        }
    }
}

/// Which field a ghost exchange operates on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum FieldSel {
    PhiSrc,
    PhiDst,
    MuSrc,
    MuDst,
}

impl FieldSel {
    fn code(self) -> u32 {
        match self {
            FieldSel::PhiSrc => 0,
            FieldSel::PhiDst => 1,
            FieldSel::MuSrc => 2,
            FieldSel::MuDst => 3,
        }
    }
}

/// Counters describing what the dynamic rebalancer has done on this rank.
#[derive(Clone, Debug, Default)]
pub struct RebalanceStats {
    /// Collective imbalance checks performed.
    pub checks: u64,
    /// Migrations executed (plan applications; counted on every rank).
    pub rebalances: u64,
    /// Blocks this rank shipped away.
    pub blocks_sent: u64,
    /// Blocks this rank received.
    pub blocks_received: u64,
    /// Serialized migration bytes this rank sent.
    pub bytes_sent: u64,
    /// Global ids of every block that ever migrated *away* from this rank
    /// (the union across ranks is the set of blocks that moved at least
    /// once).
    pub migrated_away: BTreeSet<usize>,
    /// Measured max/avg rank load at the first imbalance check (the static
    /// assignment's imbalance, before any migration could have happened).
    pub first_imbalance_before: Option<f64>,
    /// Measured max/avg rank load at the most recent check, *before* any
    /// migration that check triggered. After a rebalance, the next check's
    /// value is the dynamic placement's measured imbalance.
    pub last_imbalance_before: f64,
    /// Predicted max/avg rank load under the placement adopted by the most
    /// recent check (equals `last_imbalance_before` when nothing moved).
    pub last_imbalance_after: f64,
    /// Measured `before` imbalance of every check in order (same value on
    /// every rank — it comes from the collective decision broadcast). Lets
    /// callers average out single-check timing noise.
    pub imbalance_history: Vec<f64>,
}

/// A cost-clock reading taken before a block sweep.
enum SweepStamp {
    /// Per-thread CPU seconds (serial sweeps on Linux).
    Cpu(f64),
    /// Wall clock (threaded sweeps, or no thread-CPU clock available).
    Wall(Instant),
}

/// Per-thread CPU seconds via `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`,
/// issued as a raw syscall — the workspace deliberately has no libc
/// dependency. `None` where the syscall is unavailable.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn thread_cpu_seconds() -> Option<f64> {
    let mut ts = [0i64; 2]; // struct timespec { tv_sec, tv_nsec }
    let ret: i64;
    // SAFETY: SYS_clock_gettime (228) with CLOCK_THREAD_CPUTIME_ID (3)
    // writes exactly 16 bytes into `ts` and touches no other memory; rcx
    // and r11 are the registers the syscall instruction itself clobbers.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 228i64 => ret,
            in("rdi") 3i64,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    (ret == 0).then(|| ts[0] as f64 + ts[1] as f64 * 1e-9)
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn thread_cpu_seconds() -> Option<f64> {
    None
}

/// Live state of the dynamic rebalancer (policy + cost model + per-window
/// sweep-time accumulator).
struct RebalanceState {
    policy: RebalancePolicy,
    cost: CostModel,
    /// Sweep seconds accumulated per local block since the last check,
    /// aligned with `local_ids`.
    acc: Vec<f64>,
    /// Steps accumulated into `acc`.
    acc_steps: usize,
    stats: RebalanceStats,
}

/// Live state of the kernel autotuner (tuner + per-step sweep-seconds
/// accumulator, aligned with `local_ids` like the rebalancer's window).
struct AutotuneState {
    tuner: Autotuner,
    /// Sweep seconds accumulated per local block in the current step.
    acc: Vec<f64>,
}

/// A posted nonblocking exchange awaiting completion.
struct Pending {
    /// (local block index, face to unpack at, request, plain or sequenced).
    recvs: Vec<(usize, Face, RecvRequest, bool)>,
    /// Same-rank transfers applied immediately at post time keep no state.
    field: FieldSel,
}

/// One rank's share of a distributed simulation.
pub struct DistributedSim<'r> {
    /// Model parameters.
    pub params: ModelParams,
    /// Kernel configuration.
    pub cfg: KernelConfig,
    /// Overlap options.
    pub overlap: OverlapOptions,
    rank: &'r Rank,
    decomp: Decomposition,
    n_ranks: usize,
    local_ids: Vec<usize>,
    /// Local block states, aligned with `local_ids`.
    pub blocks: Vec<BlockState>,
    time: f64,
    step: usize,
    /// Accumulated timings (derived from the telemetry timing tree).
    pub timings: StepTimings,
    scratch: Vec<f64>,
    window: Option<f64>,
    window_shifts: usize,
    telemetry: Telemetry,
    /// Tree totals at the last `reset_timings`, subtracted from the derived
    /// view so `timings` restarts from zero.
    timings_base: StepTimings,
    steps_base: usize,
    /// Comm-stats snapshot at the end of the previous step (per-step deltas).
    prev_stats: CommStats,
    prev_window_shifts: usize,
    /// Interior cells over all local blocks (one sweep pair updates each once).
    interior_cells: u64,
    step_records: Option<Vec<StepRecord>>,
    /// Intra-rank z-slab work sharing for the sweeps (1 thread = serial).
    pool: SweepPool,
    /// Silent-corruption defense: periodic invariant scans + fault injection.
    health: Option<HealthMonitor>,
    /// Current block→rank placement, identical on every rank. Starts as the
    /// static decomposition mapping; migrations rewrite it collectively.
    placement: Vec<usize>,
    /// Dynamic load rebalancing (cost model + migration), when attached.
    rebalance: Option<RebalanceState>,
    /// Per-block kernel-variant autotuning, when attached.
    autotune: Option<AutotuneState>,
}

impl<'r> DistributedSim<'r> {
    /// Build this rank's blocks for the given decomposition.
    pub fn new(
        rank: &'r Rank,
        params: ModelParams,
        decomp: Decomposition,
        cfg: KernelConfig,
        overlap: OverlapOptions,
    ) -> Self {
        let n_ranks = rank.size();
        let local_ids = decomp.blocks_of_rank(rank.rank(), n_ranks);
        let blocks: Vec<BlockState> = local_ids
            .iter()
            .map(|&id| {
                let desc = decomp.block(id);
                let mut st = BlockState::new(desc.dims(1), desc.origin);
                st.bc_phi = block_bc::<N_PHASES>(desc.neighbors, PHI_LIQUID);
                st.bc_mu = block_bc::<N_COMP>(desc.neighbors, [0.0; N_COMP]);
                st
            })
            .collect();
        let interior_cells = blocks
            .iter()
            .map(|b| (b.dims.nx * b.dims.ny * b.dims.nz) as u64)
            .sum();
        let placement = (0..decomp.blocks().len())
            .map(|id| decomp.rank_of(id, n_ranks))
            .collect();
        let sim = Self {
            params,
            cfg,
            overlap,
            telemetry: Telemetry::new(rank.rank()),
            rank,
            decomp,
            n_ranks,
            local_ids,
            blocks,
            time: 0.0,
            step: 0,
            timings: StepTimings::default(),
            scratch: Vec::new(),
            window: None,
            window_shifts: 0,
            timings_base: StepTimings::default(),
            steps_base: 0,
            prev_stats: CommStats::default(),
            prev_window_shifts: 0,
            interior_cells,
            step_records: None,
            pool: SweepPool::new(1),
            health: None,
            placement,
            rebalance: None,
            autotune: None,
        };
        kernel_backend::warn_once_if_degraded(sim.rank.rank());
        // Expose the resolved SIMD backend in telemetry so "SIMD" rows can
        // be audited (the silent-fallback satellite fix).
        sim.telemetry.counter_add(
            &format!("kernel/backend/{}", kernel_backend::active_simd_backend()),
            1,
        );
        sim
    }

    /// Share each block's sweeps across `threads` intra-rank worker threads
    /// (z-slab partition). The result is bit-identical to the serial sweep
    /// at any thread count; `1` restores the serial path with no pool
    /// overhead.
    pub fn set_threads(&mut self, threads: usize) {
        if threads.max(1) != self.pool.threads() {
            self.pool = SweepPool::new(threads);
        }
    }

    /// Intra-rank sweep threads currently in use (1 = serial).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// This rank's telemetry collector (enabled by default; spans inside
    /// [`DistributedSim::step`] accrue here).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replace the telemetry collector — pass [`Telemetry::disabled`] to
    /// make every span a no-op, or a trace-enabled collector to buffer
    /// Chrome trace events.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = tel;
    }

    /// Start (or stop) recording one [`StepRecord`] per step.
    pub fn record_steps(&mut self, on: bool) {
        self.step_records = if on { Some(Vec::new()) } else { None };
    }

    /// Take the step records accumulated so far.
    pub fn take_step_records(&mut self) -> Vec<StepRecord> {
        self.step_records
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Enable the moving-window technique (Sec. 3.3) for distributed runs.
    /// Requires a decomposition with a single block layer in z (the window
    /// shifts within each block; blocks never exchange interior slabs).
    pub fn enable_moving_window(&mut self, trigger_fraction: f64) {
        assert!((0.0..1.0).contains(&trigger_fraction));
        assert_eq!(
            self.decomp.spec.blocks[2], 1,
            "moving window requires a single block layer in z"
        );
        self.window = Some(trigger_fraction);
    }

    /// Number of moving-window shifts so far.
    pub fn window_shifts(&self) -> usize {
        self.window_shifts
    }

    /// Highest global z with ≥ 5 % solid in any local block slice.
    fn local_front(&self) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for b in &self.blocks {
            let d = b.dims;
            let g = d.ghost;
            for z in (g..g + d.nz).rev() {
                let mut solid = 0.0;
                for y in g..g + d.ny {
                    for x in g..g + d.nx {
                        solid += 1.0 - b.phi_src.at(LIQ, x, y, z);
                    }
                }
                if solid / (d.nx * d.ny) as f64 > 0.05 {
                    best = best.max((b.origin[2] + z - g) as f64);
                    break;
                }
            }
        }
        if best.is_finite() {
            best
        } else {
            self.blocks.first().map_or(0.0, |b| b.origin[2] as f64)
        }
    }

    /// Collective window advance: all ranks agree on the front position and
    /// shift the same number of slices.
    fn maybe_shift_window(&mut self) {
        let Some(frac) = self.window else { return };
        let front = self
            .rank
            .allreduce_f64(self.local_front(), eutectica_comm::ReduceOp::Max);
        let Some(b0) = self.blocks.first() else {
            return;
        };
        let local_trigger = b0.dims.nz as f64 * frac;
        let over = front - b0.origin[2] as f64 - local_trigger;
        if over <= 0.0 {
            return;
        }
        let shifts = over.ceil() as usize;
        let _g = self.telemetry.span_cat("window_shift", "window");
        for _ in 0..shifts {
            for b in &mut self.blocks {
                b.shift_window_up();
            }
            self.window_shifts += 1;
        }
        self.refresh_src_ghosts();
    }

    /// Initialize every local block with `f` and refresh all source ghosts.
    pub fn init_blocks(&mut self, f: impl Fn(&mut BlockState)) {
        for b in &mut self.blocks {
            f(b);
        }
        self.refresh_src_ghosts();
    }

    /// Exchange + boundary-handle the source fields (after init or window
    /// shifts).
    pub fn refresh_src_ghosts(&mut self) {
        let _g = self.telemetry.span_cat("refresh_src_ghosts", "comm");
        self.exchange_sequenced(FieldSel::PhiSrc);
        self.exchange_sequenced(FieldSel::MuSrc);
        for b in &mut self.blocks {
            b.apply_bc_src();
            // Keep dst consistent too (read by the first µ-sweep's J_at).
            b.bc_phi.apply(&mut b.phi_dst);
            b.bc_mu.apply(&mut b.mu_dst);
        }
        self.rank.barrier();
    }

    /// Execute one time step. When a [`HealthMonitor`] is attached, any
    /// faults its plan schedules for this step are injected into the source
    /// fields first, and an invariant scan (collective: all ranks scan at
    /// the same cadence) runs after the step completes.
    pub fn step(&mut self) {
        let wall = Instant::now();
        {
            let _step = self.telemetry.span("step");
            self.inject_field_faults();
            self.step_inner();
            self.health_scan_if_due(wall);
            self.autotune_step_end();
            self.maybe_rebalance();
        }
        self.finish_step_accounting(wall.elapsed());
    }

    /// Attach (or detach, with `None`) the silent-corruption monitor. All
    /// ranks of a distributed run must use the same scan configuration —
    /// the scan's cross-rank reduction is collective.
    pub fn set_health_monitor(&mut self, monitor: Option<HealthMonitor>) {
        self.health = monitor;
    }

    /// Attach (or detach, with `None`) the dynamic load rebalancer. Every
    /// rank of a distributed run must attach an *identical* policy — the
    /// imbalance check is collective (gather → decide on rank 0 →
    /// broadcast → p2p migration).
    ///
    /// Each currently-local block gets a cold-start cost prior from its
    /// region composition ([`crate::regions::classify_block`]). The
    /// per-region rates come from the attached autotuner's warmup
    /// measurements when available — machine-measured, not guessed — and
    /// fall back to the paper-ordered hardcoded
    /// [`crate::regions::DEFAULT_REGION_RATES`] otherwise; attach *after*
    /// `init_blocks` (and ideally after the autotuner) for informative
    /// priors. Measured sweep times take over from the first check onward,
    /// and the priors of still-unmeasured blocks are refreshed from the
    /// autotuner at every check.
    ///
    /// Rebalancing is **placement-invariant**: a rebalanced run produces
    /// bit-identical fields to an unbalanced run of the same scenario. It
    /// composes with communication hiding, threaded sweeps, health scans
    /// and checkpoint/restore (`restore_local` iterates the post-migration
    /// `local_block_ids`).
    pub fn set_rebalance_policy(&mut self, policy: Option<RebalancePolicy>) {
        let rates = self.region_rates();
        self.rebalance = policy.map(|policy| {
            let mut cost = CostModel::new(policy.alpha);
            for (li, &id) in self.local_ids.iter().enumerate() {
                let counts = crate::regions::classify_block(&self.blocks[li]);
                let prior = crate::regions::block_weight(&counts, rates);
                cost.track(id, prior);
            }
            RebalanceState {
                policy,
                cost,
                acc: vec![0.0; self.local_ids.len()],
                acc_steps: 0,
                stats: RebalanceStats::default(),
            }
        });
    }

    /// Counters of the attached rebalancer, if any.
    pub fn rebalance_stats(&self) -> Option<&RebalanceStats> {
        self.rebalance.as_ref().map(|rb| &rb.stats)
    }

    /// Attach (or detach, with `None`) the per-block kernel autotuner.
    ///
    /// The autotuner is **rank-local** (variant choice affects no
    /// communication), so ranks may attach different policies or none at
    /// all, and different ranks may pin different winners. While a block is
    /// warming up or pinned, its sweeps run the autotuner's variant instead
    /// of the global [`DistributedSim::cfg`]. With the default
    /// [`AutotunePolicy::bit_exact`] candidates every variant is
    /// bit-identical, so an autotuned run produces bit-identical fields to
    /// an untuned one.
    pub fn set_autotune_policy(&mut self, policy: Option<AutotunePolicy>) {
        self.autotune = policy.map(|policy| {
            let mut tuner = Autotuner::new(policy);
            for (li, &id) in self.local_ids.iter().enumerate() {
                let b = &self.blocks[li];
                let counts = crate::regions::classify_block(b);
                let cells = (b.dims.nx * b.dims.ny * b.dims.nz) as u64;
                tuner.track(id, kernel_backend::dominant_region_class(&counts), cells);
            }
            AutotuneState {
                tuner,
                acc: vec![0.0; self.local_ids.len()],
            }
        });
    }

    /// The attached autotuner, if any.
    pub fn autotuner(&self) -> Option<&Autotuner> {
        self.autotune.as_ref().map(|at| &at.tuner)
    }

    /// Counters of the attached autotuner, if any.
    pub fn autotune_stats(&self) -> Option<&AutotuneStats> {
        self.autotune.as_ref().map(|at| at.tuner.stats())
    }

    /// Per-region kernel rates for cold-start cost priors: the autotuner's
    /// machine-measured MLUP/s when available, hardcoded defaults
    /// otherwise.
    fn region_rates(&self) -> [f64; 3] {
        match &self.autotune {
            Some(at) => at
                .tuner
                .region_rates_or(crate::regions::DEFAULT_REGION_RATES),
            None => crate::regions::DEFAULT_REGION_RATES,
        }
    }

    /// The kernel configuration local block `li` runs this step: the
    /// autotuner's current variant when tuning, the global `cfg` otherwise.
    #[inline]
    fn cfg_for(&self, li: usize) -> KernelConfig {
        match &self.autotune {
            Some(at) => at.tuner.config_for(self.local_ids[li]).unwrap_or(self.cfg),
            None => self.cfg,
        }
    }

    /// Current block→rank placement (identical on every rank; index =
    /// global block id). Without rebalancing this is the static
    /// decomposition mapping.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// The attached health monitor, if any.
    pub fn health_monitor(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    /// Take the unhealthy report produced by the most recent scan, if any
    /// (consumed once — the recovery driver's trigger).
    pub fn take_unhealthy_report(&mut self) -> Option<HealthReport> {
        self.health.as_mut().and_then(|h| h.take_unhealthy())
    }

    /// Apply scheduled field faults for the upcoming step (fire-once).
    fn inject_field_faults(&mut self) {
        let Some(mut h) = self.health.take() else {
            return;
        };
        let due = h.due_faults(self.step as u64);
        let mut injected = 0u64;
        for f in &due {
            if let Some(li) = self.local_ids.iter().position(|&id| id as u64 == f.block) {
                health::apply_fault(&mut self.blocks[li], f);
                injected += 1;
            }
        }
        if injected > 0 {
            h.injected += injected;
            self.telemetry
                .counter_add("health/injected_faults", injected);
        }
        self.health = Some(h);
    }

    /// Run the periodic invariant scan when due; records the report (and a
    /// pending unhealthy verdict) on the monitor.
    fn health_scan_if_due(&mut self, step_start: Instant) {
        let due = self.health.as_ref().is_some_and(|h| h.due(self.step));
        if !due {
            return;
        }
        let t0 = Instant::now();
        let Some(report) = self.do_health_scan() else {
            return;
        };
        let scan = t0.elapsed();
        self.telemetry.counter_add("health/scans", 1);
        self.telemetry
            .counter_add("health/scan_wall_ns", scan.as_nanos() as u64);
        self.telemetry
            .counter_add("health/violations", report.total_violations());
        let total = step_start.elapsed().as_secs_f64();
        if total > 0.0 {
            self.telemetry
                .gauge_set("health/scan_frac", scan.as_secs_f64() / total);
        }
        if let Some(h) = &mut self.health {
            h.record(report);
        }
    }

    /// Scan all local blocks and reduce across ranks, regardless of
    /// cadence. Collective — every rank must call it at the same point.
    /// Returns `None` when no monitor is attached. Updates the monitor's
    /// front baseline but leaves any pending unhealthy verdict untouched
    /// (the recovery driver uses this to validate freshly restored state).
    pub fn health_scan_now(&mut self) -> Option<HealthReport> {
        let report = self.do_health_scan()?;
        if let Some(h) = &mut self.health {
            if let Some((pos, _)) = report.front {
                h.set_front_sample(report.step, pos);
            }
        }
        Some(report)
    }

    fn do_health_scan(&mut self) -> Option<HealthReport> {
        let cfg = self.health.as_ref()?.cfg;
        let _g = self.telemetry.span_cat("health_scan", "health");
        // Fault-injection window: a rank can be killed *inside* the
        // collective scan, exercising death during its reductions.
        self.rank.fault_phase(FaultPhase::HealthScan);
        let mut local = ScanStats::default();
        for (li, b) in self.blocks.iter().enumerate() {
            let s = health::scan_block_pooled(&self.pool, b, &cfg, self.local_ids[li] as u64);
            local.merge(&s);
        }
        let summed = self.rank.allreduce_u64s(&local.counts());
        let global = [summed[0], summed[1], summed[2], summed[3]];
        let (front, front_ok) = if cfg.max_front_speed.is_finite() {
            let pos = self
                .rank
                .allreduce_f64(self.local_front(), eutectica_comm::ReduceOp::Max);
            match self.health.as_ref().and_then(|h| h.front_sample()) {
                Some((s0, p0)) if self.step > s0 => {
                    let speed = (pos - p0) / (self.step - s0) as f64;
                    (Some((pos, speed)), speed.abs() <= cfg.max_front_speed)
                }
                _ => (Some((pos, 0.0)), true),
            }
        } else {
            (None, true)
        };
        Some(HealthReport {
            step: self.step,
            local,
            global,
            front,
            front_ok,
        })
    }

    /// Remediation: re-project interior φ cells that violate the Gibbs
    /// simplex beyond `tol` onto it, mirror src into dst, and refresh
    /// ghosts. Collective (ghost refresh). Cells already on the simplex
    /// within `tol` are left bit-untouched (the projection's `(1−Σφ)/4`
    /// shift is a roundoff-sized non-zero even on valid cells, so an
    /// unconditional re-projection would break bit-identical recovery).
    /// Returns the number of cells whose value changed on this rank.
    pub fn project_phi_to_simplex(&mut self, tol: f64) -> u64 {
        let mut changed = 0u64;
        {
            let _g = self.telemetry.span_cat("simplex_reproject", "health");
            for b in &mut self.blocks {
                let mut block_changed = 0u64;
                for (x, y, z) in b.dims.interior_iter() {
                    let p = b.phi_src.cell(x, y, z);
                    if crate::simplex::on_simplex(p, tol) {
                        continue;
                    }
                    let q = crate::simplex::project_to_simplex(p);
                    if q != p {
                        b.phi_src.set_cell(x, y, z, q);
                        block_changed += 1;
                    }
                }
                if block_changed > 0 {
                    b.sync_dst_from_src();
                }
                changed += block_changed;
            }
        }
        self.refresh_src_ghosts();
        changed
    }

    fn step_inner(&mut self) {
        let ov = self.overlap;

        // --- φ-sweep, optionally hiding the µ_src exchange behind it.
        let mu_pending = if ov.hide_mu {
            let _g = self.telemetry.span_cat("mu_comm", "comm");
            Some(self.post_plain(FieldSel::MuSrc))
        } else {
            None
        };

        {
            let _g = self.telemetry.span_cat("phi_sweep", "compute");
            for li in 0..self.blocks.len() {
                let cfg = self.cfg_for(li);
                let t0 = self.sweep_stamp();
                self.pool.phi_sweep(
                    &self.params,
                    &mut self.blocks[li],
                    self.time,
                    cfg,
                    &self.telemetry,
                );
                self.note_sweep_time(li, t0);
            }
        }

        if let Some(p) = mu_pending {
            // No BC reapplication needed: the hidden exchange unpacks only
            // comm faces, and the physical-ghost values applied to µ at the
            // end of the previous step depend only on interior cells the
            // exchange never touches.
            let _g = self.telemetry.span_cat("mu_comm", "comm");
            self.finish_plain(p);
        }

        // --- φ_dst exchange then boundary handling (the BC fill reads
        // ghost columns, so the sequenced exchange must complete first),
        // optionally split around the local µ-sweep.
        if ov.hide_phi {
            // Post the x-phase, run the local µ-sweep, then finish x and do
            // the dependent y/z phases synchronously.
            let p = {
                let _g = self.telemetry.span_cat("phi_comm", "comm");
                self.post_axis(FieldSel::PhiDst, 0)
            };

            {
                let _g = self.telemetry.span_cat("mu_sweep_local", "compute");
                for li in 0..self.blocks.len() {
                    let cfg = self.cfg_for(li);
                    let t0 = self.sweep_stamp();
                    self.pool.mu_sweep(
                        &self.params,
                        &mut self.blocks[li],
                        self.time,
                        cfg,
                        MuPart::LocalOnly,
                        &self.telemetry,
                    );
                    self.note_sweep_time(li, t0);
                }
            }

            {
                let _g = self.telemetry.span_cat("phi_comm", "comm");
                self.finish_plain(p);
                self.exchange_axis(FieldSel::PhiDst, 1);
                self.exchange_axis(FieldSel::PhiDst, 2);
            }
            {
                let _g = self.telemetry.span_cat("bc", "bc");
                for b in &mut self.blocks {
                    b.bc_phi.apply(&mut b.phi_dst);
                }
            }

            let _g = self.telemetry.span_cat("mu_sweep_neighbor", "compute");
            for li in 0..self.blocks.len() {
                let cfg = self.cfg_for(li);
                let t0 = self.sweep_stamp();
                self.pool.mu_sweep(
                    &self.params,
                    &mut self.blocks[li],
                    self.time,
                    cfg,
                    MuPart::NeighborOnly,
                    &self.telemetry,
                );
                self.note_sweep_time(li, t0);
            }
        } else {
            {
                let _g = self.telemetry.span_cat("phi_comm", "comm");
                self.exchange_sequenced(FieldSel::PhiDst);
            }
            {
                let _g = self.telemetry.span_cat("bc", "bc");
                for b in &mut self.blocks {
                    b.bc_phi.apply(&mut b.phi_dst);
                }
            }

            let _g = self.telemetry.span_cat("mu_sweep", "compute");
            for li in 0..self.blocks.len() {
                let cfg = self.cfg_for(li);
                let t0 = self.sweep_stamp();
                self.pool.mu_sweep(
                    &self.params,
                    &mut self.blocks[li],
                    self.time,
                    cfg,
                    MuPart::Full,
                    &self.telemetry,
                );
                self.note_sweep_time(li, t0);
            }
        }

        // --- µ_dst exchange, unless deferred to the next step's hidden
        // µ_src exchange (it fills only comm faces, which the hidden
        // exchange overwrites anyway). The physical-face BCs applied here
        // stay valid across that deferral.
        if !ov.hide_mu {
            let _g = self.telemetry.span_cat("mu_comm", "comm");
            self.exchange_sequenced(FieldSel::MuDst);
        }
        {
            let _g = self.telemetry.span_cat("bc", "bc");
            for b in &mut self.blocks {
                b.bc_mu.apply(&mut b.mu_dst);
            }
        }

        for b in &mut self.blocks {
            b.swap();
        }
        self.time += self.params.dt;
        self.step += 1;
        self.maybe_shift_window();
    }

    /// Take a cost-clock reading before a block sweep (`None` without a
    /// rebalancer — measurement is free when disabled).
    ///
    /// With serial sweeps the clock is per-thread CPU time where available:
    /// on oversubscribed machines (many rank threads per core — every test
    /// box) wall time charges a block for the time the OS spent running
    /// *other* ranks, which is exactly the load the balancer is trying to
    /// move; CPU time measures only the block's own work. Threaded sweeps
    /// run on pool workers, where the rank thread's CPU time is blind, so
    /// they fall back to wall time.
    fn sweep_stamp(&self) -> Option<SweepStamp> {
        if self.rebalance.is_none() && self.autotune.is_none() {
            return None;
        }
        if self.pool.threads() == 1 {
            if let Some(t) = thread_cpu_seconds() {
                return Some(SweepStamp::Cpu(t));
            }
        }
        Some(SweepStamp::Wall(Instant::now()))
    }

    /// Accrue the elapsed sweep time of local block `li` into the
    /// rebalancer's measurement window (no-op without a rebalancer).
    fn note_sweep_time(&mut self, li: usize, t0: Option<SweepStamp>) {
        let Some(t0) = t0 else { return };
        let elapsed = match t0 {
            SweepStamp::Cpu(t) => thread_cpu_seconds().map_or(0.0, |t1| (t1 - t).max(0.0)),
            SweepStamp::Wall(t) => t.elapsed().as_secs_f64(),
        };
        if let Some(rb) = self.rebalance.as_mut() {
            rb.acc[li] += elapsed;
        }
        if let Some(at) = self.autotune.as_mut() {
            at.acc[li] += elapsed;
        }
    }

    /// End-of-step autotune bookkeeping: feed each local block's measured
    /// sweep seconds to the tuner (advancing warmups and pinning winners),
    /// and re-check dominant region classes at the policy cadence. Runs
    /// *before* `maybe_rebalance` so warmup measurements can seed the
    /// rebalancer's priors within the same step.
    fn autotune_step_end(&mut self) {
        let Some(at) = self.autotune.as_mut() else {
            return;
        };
        let mut pinned = Vec::new();
        for (li, &id) in self.local_ids.iter().enumerate() {
            let secs = std::mem::replace(&mut at.acc[li], 0.0);
            if let Some(winner) = at.tuner.observe(id, secs) {
                pinned.push(winner);
            }
        }
        let recheck = at.tuner.policy().recheck_every;
        if recheck > 0 && self.step % recheck == 0 {
            let mut retunes = 0u64;
            for (li, &id) in self.local_ids.iter().enumerate() {
                let counts = crate::regions::classify_block(&self.blocks[li]);
                let class = kernel_backend::dominant_region_class(&counts);
                if at.tuner.note_region_class(id, class) {
                    retunes += 1;
                }
            }
            if retunes > 0 {
                self.telemetry.counter_add("autotune/retunes", retunes);
            }
        }
        for winner in pinned {
            self.telemetry.counter_add("autotune/pins", 1);
            self.telemetry
                .counter_add(&format!("autotune/variant/{winner}"), 1);
        }
    }

    /// Collective rebalance check + in-flight migration, when due.
    ///
    /// Protocol (every rank executes the same sequence — deadlock-free,
    /// trigger determined purely by step count and the shared policy):
    /// 1. every rank folds its window of measured sweep seconds into the
    ///    EWMA cost model and gathers `(id, measured?, prior)` to rank 0;
    /// 2. rank 0 blends the entries onto one weight scale, measures the
    ///    imbalance of the current placement, picks the new placement (a
    ///    forced plan, or strategy + move-minimizing diff when over the
    ///    threshold) and broadcasts the decision;
    /// 3. all ranks apply it: serialize departing blocks through the
    ///    bit-exact migration codec, ship them p2p, decode arrivals,
    ///    rebuild boundary specs from the block descriptors, and barrier.
    fn maybe_rebalance(&mut self) {
        let due = {
            let Some(rb) = &mut self.rebalance else {
                return;
            };
            rb.acc_steps += 1;
            let forced = rb.policy.forced_at(self.step as u64).is_some();
            let periodic = rb.policy.every > 0 && self.step % rb.policy.every == 0;
            forced || periodic
        };
        if !due {
            return;
        }
        let _g = self.telemetry.span_cat("rebalance", "rebalance");
        {
            let rb = self.rebalance.as_mut().unwrap();
            if rb.acc_steps > 0 {
                let inv = 1.0 / rb.acc_steps as f64;
                for (li, &id) in self.local_ids.iter().enumerate() {
                    if rb.acc[li] > 0.0 {
                        rb.cost.observe(id, rb.acc[li] * inv);
                    }
                    rb.acc[li] = 0.0;
                }
                rb.acc_steps = 0;
            }
            rb.stats.checks += 1;
        }
        // Refresh the priors of still-unmeasured blocks from the
        // autotuner's machine-measured region rates (the cold-start-prior
        // satellite fix): the first rebalance epoch plans from measured
        // rates, not the hardcoded per-machine guesses.
        if let Some(at) = &self.autotune {
            if at.tuner.has_region_rates() {
                let rates = at
                    .tuner
                    .region_rates_or(crate::regions::DEFAULT_REGION_RATES);
                let rb = self.rebalance.as_mut().unwrap();
                for (li, &id) in self.local_ids.iter().enumerate() {
                    if rb.cost.entry(id).is_some_and(|e| e.measured.is_none()) {
                        let counts = crate::regions::classify_block(&self.blocks[li]);
                        rb.cost
                            .set_prior(id, crate::regions::block_weight(&counts, rates));
                    }
                }
            }
        }
        self.telemetry.counter_add("rebalance/checks", 1);
        let payload = {
            let snap = self.rebalance.as_ref().unwrap().cost.snapshot();
            let mut out = Vec::with_capacity(snap.len() * 25);
            for (id, measured, prior) in snap {
                out.extend_from_slice(&(id as u64).to_le_bytes());
                out.push(measured.is_some() as u8);
                out.extend_from_slice(&measured.unwrap_or(0.0).to_le_bytes());
                out.extend_from_slice(&prior.to_le_bytes());
            }
            Bytes::from(out)
        };
        let decision = match self.rank.gather(0, payload) {
            Some(bufs) => {
                let out = self.decide_rebalance(&bufs);
                self.rank.broadcast(0, Bytes::from(out))
            }
            None => self.rank.broadcast(0, Bytes::new()),
        };
        let before = f64::from_le_bytes(decision[0..8].try_into().unwrap());
        let after = f64::from_le_bytes(decision[8..16].try_into().unwrap());
        {
            let rb = self.rebalance.as_mut().unwrap();
            rb.stats.first_imbalance_before.get_or_insert(before);
            rb.stats.last_imbalance_before = before;
            rb.stats.last_imbalance_after = after;
            rb.stats.imbalance_history.push(before);
        }
        self.telemetry
            .gauge_set("rebalance/imbalance_before", before);
        self.telemetry.gauge_set("rebalance/imbalance_after", after);
        if decision[16] == 1 {
            let nb = self.placement.len();
            let mut newp = Vec::with_capacity(nb);
            for chunk in decision[17..].chunks_exact(4) {
                newp.push(u32::from_le_bytes(chunk.try_into().unwrap()) as usize);
            }
            assert_eq!(newp.len(), nb, "malformed rebalance decision");
            if newp != self.placement {
                self.execute_migration(newp);
            }
        }
    }

    /// Rank 0 only: blend the gathered cost entries into global weights and
    /// decide the new placement. Returns the serialized decision
    /// (`imbalance_before f64 | imbalance_after f64 | changed u8
    /// [| placement u32 × n_blocks]`) to broadcast.
    fn decide_rebalance(&self, bufs: &[Bytes]) -> Vec<u8> {
        let mut entries = Vec::new();
        for buf in bufs {
            for chunk in buf.chunks_exact(25) {
                let id = u64::from_le_bytes(chunk[0..8].try_into().unwrap()) as usize;
                let has = chunk[8] != 0;
                let measured = f64::from_le_bytes(chunk[9..17].try_into().unwrap());
                let prior = f64::from_le_bytes(chunk[17..25].try_into().unwrap());
                entries.push((id, has.then_some(measured), prior));
            }
        }
        let nb = self.placement.len();
        let weights = blend_weights(&entries, nb);
        let before = imbalance(&weights, &self.placement, self.n_ranks);
        let p = &self.rebalance.as_ref().unwrap().policy;
        let new_placement: Option<Vec<usize>> = if let Some(fp) = p.forced_at(self.step as u64) {
            assert_eq!(fp.len(), nb, "forced plan length must equal block count");
            assert!(
                fp.iter().all(|&r| r < self.n_ranks),
                "forced plan rank out of range"
            );
            assert!(
                (0..self.n_ranks).all(|r| fp.contains(&r)),
                "forced plan must keep every rank non-empty"
            );
            (fp != self.placement.as_slice()).then(|| fp.to_vec())
        } else if before > p.threshold {
            let plan = plan_rebalance(&weights, &self.placement, self.n_ranks, p.strategy, p.slack);
            (!plan.is_empty()).then_some(plan.placement)
        } else {
            None
        };
        let after = new_placement
            .as_ref()
            .map_or(before, |np| imbalance(&weights, np, self.n_ranks));
        let mut out = Vec::with_capacity(17 + 4 * nb);
        out.extend_from_slice(&before.to_le_bytes());
        out.extend_from_slice(&after.to_le_bytes());
        match &new_placement {
            Some(np) => {
                out.push(1);
                for &r in np {
                    out.extend_from_slice(&(r as u32).to_le_bytes());
                }
            }
            None => out.push(0),
        }
        out
    }

    /// Apply `new_placement`: serialize departing blocks, ship them p2p on
    /// tags above the ghost-exchange tag space, decode arrivals (dims
    /// verified against the descriptor, CRC verified by the codec), rebuild
    /// boundary specs, and refresh every placement-derived cache.
    /// Collective: every rank calls this with the identical placement.
    ///
    /// Bit-identity argument: at the step boundary, the live state of a
    /// block is exactly `{phi,mu} × {src,dst}` plus its origin — the
    /// kernels' staggered slab buffers are per-sweep temporaries and the
    /// boundary specs are pure functions of the decomposition. All four
    /// buffers migrate bit-exactly (ghosts included), so the next sweep on
    /// the new owner reads exactly the bytes the old owner would have read.
    /// Under deferred µ exchange (`hide_mu`) the µ comm-face ghosts are one
    /// step stale at this point; they migrate bit-exactly too, and the next
    /// step's hidden exchange overwrites them (from senders resolved via
    /// the *new* placement on every rank) before any kernel reads them.
    fn execute_migration(&mut self, new_placement: Vec<usize>) {
        let _g = self.telemetry.span_cat("migration", "rebalance");
        // Fault-injection window: a rank can be killed *inside* the
        // migration epoch, between the plan broadcast and the p2p shipping.
        self.rank.fault_phase(FaultPhase::Migration);
        let my = self.rank.rank();
        let nb = new_placement.len();
        // Ghost tags occupy [0, 4·6·nb); migration tags sit just above.
        let mig_tag = |id: usize| 4 * 6 * nb as u32 + id as u32;
        let old = std::mem::replace(&mut self.placement, new_placement);
        let mut departing = Vec::new();
        for li in 0..self.local_ids.len() {
            let id = self.local_ids[li];
            let dst = self.placement[id];
            if dst == my {
                continue;
            }
            let entry = self
                .rebalance
                .as_mut()
                .and_then(|rb| rb.cost.untrack(id))
                .unwrap_or(CostEntry {
                    measured: None,
                    prior: 1.0,
                });
            let bytes = crate::migrate::encode_block(&self.blocks[li], id as u64, &entry);
            if let Some(rb) = self.rebalance.as_mut() {
                rb.stats.blocks_sent += 1;
                rb.stats.bytes_sent += bytes.len() as u64;
                rb.stats.migrated_away.insert(id);
            }
            self.telemetry
                .counter_add("rebalance/bytes_sent", bytes.len() as u64);
            self.rank.isend(dst, mig_tag(id), Bytes::from(bytes));
            if let Some(at) = self.autotune.as_mut() {
                at.tuner.untrack(id);
            }
            departing.push(li);
        }
        // Post receives for arrivals in ascending id order (deterministic).
        let mut arrivals = Vec::new();
        for id in 0..nb {
            if self.placement[id] == my && old[id] != my {
                arrivals.push((id, self.rank.irecv(old[id], mig_tag(id))));
            }
        }
        // Drop departed state (descending index keeps indices valid).
        for &li in departing.iter().rev() {
            self.blocks.remove(li);
            self.local_ids.remove(li);
        }
        for (id, req) in arrivals {
            let payload = self.rank.wait(req);
            let desc = self.decomp.block(id);
            let (pid, mut state, entry) =
                crate::migrate::decode_block(&payload, desc.dims(1), DEFAULT_FIELD_BYTE_BUDGET)
                    .unwrap_or_else(|e| panic!("migration of block {id} failed: {e}"));
            assert_eq!(pid as usize, id, "migration payload id mismatch");
            state.bc_phi = block_bc::<N_PHASES>(desc.neighbors, PHI_LIQUID);
            state.bc_mu = block_bc::<N_COMP>(desc.neighbors, [0.0; N_COMP]);
            let pos = self.local_ids.partition_point(|&x| x < id);
            self.local_ids.insert(pos, id);
            self.blocks.insert(pos, state);
            if let Some(rb) = self.rebalance.as_mut() {
                rb.cost.adopt(id, entry);
                rb.stats.blocks_received += 1;
            }
            // An arrived block re-enters warmup on its new rank: the
            // fastest variant is machine-local (cache topology, ISA), so
            // the old owner's pin does not transfer.
            if let Some(at) = self.autotune.as_mut() {
                let b = &self.blocks[pos];
                let counts = crate::regions::classify_block(b);
                let cells = (b.dims.nx * b.dims.ny * b.dims.nz) as u64;
                at.tuner
                    .track(id, kernel_backend::dominant_region_class(&counts), cells);
            }
        }
        self.interior_cells = self
            .blocks
            .iter()
            .map(|b| (b.dims.nx * b.dims.ny * b.dims.nz) as u64)
            .sum();
        if let Some(rb) = self.rebalance.as_mut() {
            rb.acc = vec![0.0; self.local_ids.len()];
            rb.acc_steps = 0;
            rb.stats.rebalances += 1;
        }
        if let Some(at) = self.autotune.as_mut() {
            at.acc = vec![0.0; self.local_ids.len()];
        }
        self.telemetry.counter_add("rebalance/migrations", 1);
        // Fence the migration epoch: no ghost message of the next step can
        // race a straggling migration payload, and migration tags can be
        // reused by later epochs.
        self.rank.barrier();
    }

    /// Adopt a new block→rank placement *without* shipping any state — the
    /// shrink-and-continue recovery path. Every local block is rebuilt
    /// empty from its descriptor (dims, origin, boundary specs derived from
    /// the static decomposition), ready to be filled by a checkpoint or
    /// buddy-replica restore. Placement-derived caches (`local_block_ids`,
    /// interior cell count, rebalancer measurement window) are refreshed;
    /// re-attach the rebalance policy after the restore for fresh cost
    /// priors. Not collective by itself, but every survivor must adopt the
    /// identical placement before the collective restore that follows.
    pub fn adopt_placement(&mut self, new_placement: Vec<usize>) {
        assert_eq!(
            new_placement.len(),
            self.placement.len(),
            "placement length must equal block count"
        );
        let my = self.rank.rank();
        self.placement = new_placement;
        self.local_ids = (0..self.placement.len())
            .filter(|&id| self.placement[id] == my)
            .collect();
        self.blocks = self
            .local_ids
            .iter()
            .map(|&id| {
                let desc = self.decomp.block(id);
                let mut st = BlockState::new(desc.dims(1), desc.origin);
                st.bc_phi = block_bc::<N_PHASES>(desc.neighbors, PHI_LIQUID);
                st.bc_mu = block_bc::<N_COMP>(desc.neighbors, [0.0; N_COMP]);
                st
            })
            .collect();
        self.interior_cells = self
            .blocks
            .iter()
            .map(|b| (b.dims.nx * b.dims.ny * b.dims.nz) as u64)
            .sum();
        if let Some(rb) = &mut self.rebalance {
            rb.acc = vec![0.0; self.local_ids.len()];
            rb.acc_steps = 0;
        }
        if let Some(at) = &mut self.autotune {
            // Blocks are rebuilt empty here; like the rebalancer, expect a
            // policy re-attach after the restore for fresh tuning state.
            at.tuner = Autotuner::new(at.tuner.policy().clone());
            at.acc = vec![0.0; self.local_ids.len()];
            for (li, &id) in self.local_ids.iter().enumerate() {
                let b = &self.blocks[li];
                let counts = crate::regions::classify_block(b);
                let cells = (b.dims.nx * b.dims.ny * b.dims.nz) as u64;
                at.tuner
                    .track(id, kernel_backend::dominant_region_class(&counts), cells);
            }
        }
    }

    /// Fold the telemetry tree back into the legacy [`StepTimings`] view,
    /// bridge per-step comm-stats deltas into the metrics registry, and
    /// append a [`StepRecord`] when recording is on.
    fn finish_step_accounting(&mut self, wall: Duration) {
        let mut t = self.derive_timings().saturating_sub(self.timings_base);
        t.steps = self.step - self.steps_base;
        let prev = std::mem::replace(&mut self.timings, t);

        if !self.telemetry.is_enabled() && self.step_records.is_none() {
            return;
        }
        let d = t.saturating_sub(prev);
        let mlups = metrics::mlups(
            self.interior_cells as usize,
            1,
            wall.as_secs_f64().max(1e-12),
        );
        self.telemetry
            .counter_add("cells_updated", self.interior_cells);
        self.telemetry.gauge_set("step_mlups", mlups);

        let stats = self.rank.stats();
        self.telemetry.counter_add(
            "comm/bytes_sent",
            stats.bytes_sent - self.prev_stats.bytes_sent,
        );
        self.telemetry.counter_add(
            "comm/bytes_received",
            stats.bytes_received - self.prev_stats.bytes_received,
        );
        self.telemetry.counter_add(
            "comm/messages_sent",
            stats.messages_sent - self.prev_stats.messages_sent,
        );
        self.telemetry.counter_add(
            "comm/messages_received",
            stats.messages_received - self.prev_stats.messages_received,
        );
        let wait_delta = stats
            .recv_wait_hist
            .delta_since(&self.prev_stats.recv_wait_hist);
        self.telemetry.hist_merge("comm/recv_wait_ns", &wait_delta);

        let (mut ghost_sent, mut ghost_recv) = (0u64, 0u64);
        for (field, ts) in self.field_traffic_delta(&stats) {
            ghost_sent += ts.bytes_sent;
            ghost_recv += ts.bytes_received;
            self.telemetry
                .counter_add(&format!("comm/{field}/bytes_sent"), ts.bytes_sent);
            self.telemetry
                .counter_add(&format!("comm/{field}/bytes_received"), ts.bytes_received);
        }

        if self.step_records.is_some() {
            let rec = StepRecord {
                rank: self.rank.rank(),
                step: self.step - 1,
                wall_ms: wall.as_secs_f64() * 1e3,
                mlups,
                cells_updated: self.interior_cells,
                compute_ms: d.compute.as_secs_f64() * 1e3,
                phi_comm_ms: d.phi_comm.as_secs_f64() * 1e3,
                mu_comm_ms: d.mu_comm.as_secs_f64() * 1e3,
                bc_ms: d.bc.as_secs_f64() * 1e3,
                ghost_bytes_sent: ghost_sent,
                ghost_bytes_received: ghost_recv,
                recv_wait_ms: stats
                    .recv_wait_time
                    .saturating_sub(self.prev_stats.recv_wait_time)
                    .as_secs_f64()
                    * 1e3,
                recv_wait_hist: wait_delta,
                window_shifts: (self.window_shifts - self.prev_window_shifts) as u64,
            };
            if let Some(recs) = &mut self.step_records {
                recs.push(rec);
            }
        }
        self.prev_stats = stats;
        self.prev_window_shifts = self.window_shifts;
    }

    /// Fold the timing tree into [`StepTimings`] buckets by leaf span name
    /// (cumulative since construction; `steps` is filled by the caller).
    fn derive_timings(&self) -> StepTimings {
        let snap = self.telemetry.tree_snapshot();
        let mut t = StepTimings::default();
        for r in &snap.rows {
            let leaf = r.path.rsplit('/').next().unwrap_or(&r.path);
            let d = Duration::from_secs_f64(r.total_secs);
            match leaf {
                "phi_comm" => t.phi_comm += d,
                "mu_comm" => t.mu_comm += d,
                "phi_sweep" | "mu_sweep" | "mu_sweep_local" | "mu_sweep_neighbor" => t.compute += d,
                "bc" => t.bc += d,
                "refresh_src_ghosts" => t.ghost_refresh += d,
                _ => {}
            }
        }
        t
    }

    /// Per-field ghost traffic deltas since the previous step, keyed by
    /// field name (collective tags excluded).
    fn field_traffic_delta(&self, cur: &CommStats) -> BTreeMap<&'static str, TagStats> {
        let mut map: BTreeMap<&'static str, TagStats> = BTreeMap::new();
        for (tag, ts) in &cur.per_tag {
            let Some(field) = self.field_of_tag(*tag) else {
                continue;
            };
            let p = self
                .prev_stats
                .per_tag
                .get(tag)
                .copied()
                .unwrap_or_default();
            let e = map.entry(field).or_default();
            e.bytes_sent += ts.bytes_sent - p.bytes_sent;
            e.messages_sent += ts.messages_sent - p.messages_sent;
            e.bytes_received += ts.bytes_received - p.bytes_received;
            e.messages_received += ts.messages_received - p.messages_received;
        }
        map
    }

    /// Cumulative per-field ghost traffic of this rank (decoded from the
    /// per-tag breakdown in [`CommStats`]).
    pub fn comm_field_traffic(&self) -> BTreeMap<&'static str, TagStats> {
        let mut map: BTreeMap<&'static str, TagStats> = BTreeMap::new();
        for (tag, ts) in &self.rank.stats().per_tag {
            let Some(field) = self.field_of_tag(*tag) else {
                continue;
            };
            let e = map.entry(field).or_default();
            e.bytes_sent += ts.bytes_sent;
            e.messages_sent += ts.messages_sent;
            e.bytes_received += ts.bytes_received;
            e.messages_received += ts.messages_received;
        }
        map
    }

    fn field_of_tag(&self, tag: u32) -> Option<&'static str> {
        if tag & (COLLECTIVE_TAG | MEMBERSHIP_TAG) != 0 {
            return None;
        }
        // Wire tags carry the membership-epoch stamp in their high bits;
        // strip it to recover the application tag.
        let tag = user_tag(tag);
        let nb = self.decomp.blocks().len() as u32;
        match tag / (nb * 6) {
            0 => Some("phi_src"),
            1 => Some("phi_dst"),
            2 => Some("mu_src"),
            3 => Some("mu_dst"),
            _ => None,
        }
    }

    /// Run `n` steps.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run `n` steps, invoking `hook` after each one — the attachment
    /// point for in-situ observers (live metrics export, streamed field
    /// slices) without coupling the time loop to them.
    ///
    /// The hook runs on the rank thread between steps, so it may freely
    /// read `phi_src`/`mu_src` and issue its own collectives — every rank
    /// executes it at the same step boundary. Hooks that communicate must
    /// do so in identical order on all ranks (collective discipline is
    /// the hook's responsibility).
    pub fn step_n_with(&mut self, n: usize, mut hook: impl FnMut(&mut Self)) {
        for _ in 0..n {
            self.step();
            hook(self);
        }
    }

    /// Reset accumulated timings (e.g. after warmup). The telemetry tree
    /// keeps accruing; only the derived [`StepTimings`] view restarts.
    pub fn reset_timings(&mut self) {
        self.timings_base = self.derive_timings();
        self.steps_base = self.step;
        self.timings = StepTimings::default();
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of completed time steps.
    pub fn step_index(&self) -> usize {
        self.step
    }

    /// The communicator rank this simulation runs on.
    pub fn comm_rank(&self) -> &Rank {
        self.rank
    }

    /// The domain decomposition this simulation was built from.
    pub fn decomp(&self) -> &Decomposition {
        &self.decomp
    }

    /// Global ids of this rank's blocks, aligned with
    /// [`DistributedSim::blocks`].
    pub fn local_block_ids(&self) -> &[usize] {
        &self.local_ids
    }

    /// Overwrite the progress counters when resuming from a checkpoint:
    /// simulation time, completed step count, and moving-window shift count.
    /// Field contents and block origins must be restored separately (see
    /// `eutectica-pfio`'s checkpoint sets).
    pub fn set_progress(&mut self, time: f64, step: usize, window_shifts: usize) {
        self.time = time;
        self.step = step;
        self.steps_base = self.steps_base.min(step);
        self.window_shifts = window_shifts;
        self.prev_window_shifts = window_shifts;
        // A progress jump (restore / rollback) invalidates the health
        // monitor's rolling state: the front baseline and pending verdicts.
        if let Some(h) = &mut self.health {
            h.on_progress_reset();
        }
        // Likewise, sweep times measured before the jump describe blocks
        // whose contents just changed — drop the open measurement window
        // (the EWMA itself survives; it converges again within a few steps).
        if let Some(rb) = &mut self.rebalance {
            for a in &mut rb.acc {
                *a = 0.0;
            }
            rb.acc_steps = 0;
        }
    }

    /// Global solid fraction (allreduce over ranks).
    pub fn solid_fraction_global(&self) -> f64 {
        let mut local = 0.0;
        let mut cells = 0.0;
        for b in &self.blocks {
            for (x, y, z) in b.dims.interior_iter() {
                local += 1.0 - b.phi_src.at(LIQ, x, y, z);
                cells += 1.0;
            }
        }
        let sum = self
            .rank
            .allreduce_f64(local, eutectica_comm::ReduceOp::Sum);
        let n = self
            .rank
            .allreduce_f64(cells, eutectica_comm::ReduceOp::Sum);
        sum / n
    }

    // ----- ghost exchange plumbing -----

    fn tag(&self, field: FieldSel, sender_block: usize, sender_face: Face) -> u32 {
        let nb = self.decomp.blocks().len() as u32;
        field.code() * nb * 6 + (sender_block as u32) * 6 + sender_face as u32
    }

    fn pack_face(&mut self, li: usize, field: FieldSel, face: Face, plain: bool) -> Bytes {
        fn pack_one<const NC: usize>(
            f: &eutectica_blockgrid::field::SoaField<NC>,
            face: Face,
            plain: bool,
            buf: &mut Vec<f64>,
        ) {
            let r = if plain {
                ghost::send_region_plain(f.dims(), face)
            } else {
                ghost::send_region(f.dims(), face)
            };
            ghost::pack_region(f, r, buf);
        }
        let mut buf = core::mem::take(&mut self.scratch);
        let b = &self.blocks[li];
        match field {
            FieldSel::PhiSrc => pack_one(&b.phi_src, face, plain, &mut buf),
            FieldSel::PhiDst => pack_one(&b.phi_dst, face, plain, &mut buf),
            FieldSel::MuSrc => pack_one(&b.mu_src, face, plain, &mut buf),
            FieldSel::MuDst => pack_one(&b.mu_dst, face, plain, &mut buf),
        }
        let bytes = f64s_to_bytes(&buf);
        self.scratch = buf;
        bytes
    }

    fn unpack_face(&mut self, li: usize, field: FieldSel, face: Face, plain: bool, data: &[f64]) {
        fn unpack_one<const NC: usize>(
            f: &mut eutectica_blockgrid::field::SoaField<NC>,
            face: Face,
            plain: bool,
            data: &[f64],
        ) {
            let r = if plain {
                ghost::recv_region_plain(f.dims(), face)
            } else {
                ghost::recv_region(f.dims(), face)
            };
            ghost::unpack_region(f, r, data);
        }
        let b = &mut self.blocks[li];
        match field {
            FieldSel::PhiSrc => unpack_one(&mut b.phi_src, face, plain, data),
            FieldSel::PhiDst => unpack_one(&mut b.phi_dst, face, plain, data),
            FieldSel::MuSrc => unpack_one(&mut b.mu_src, face, plain, data),
            FieldSel::MuDst => unpack_one(&mut b.mu_dst, face, plain, data),
        }
    }

    /// Post the exchange of `faces` for `field`; same-rank transfers are
    /// applied immediately, remote recvs are returned as pending.
    fn post_faces(&mut self, field: FieldSel, faces: &[Face], plain: bool) -> Pending {
        let my = self.rank.rank();
        let mut recvs = Vec::new();
        // Send (or locally deliver) all outgoing faces first.
        for li in 0..self.local_ids.len() {
            let id = self.local_ids[li];
            for &face in faces {
                let Some(nb) = self.decomp.block(id).neighbors[face as usize] else {
                    continue;
                };
                let nb_rank = self.placement[nb];
                let payload = self.pack_face(li, field, face, plain);
                if nb_rank == my {
                    // Neighbor is local: deliver directly into its ghosts.
                    let nli = self.local_ids.iter().position(|&b| b == nb).unwrap();
                    let mut vals = core::mem::take(&mut self.scratch);
                    bytes_to_f64s_into(&payload, &mut vals);
                    self.unpack_face(nli, field, face.opposite(), plain, &vals);
                    self.scratch = vals;
                } else {
                    self.rank.isend(nb_rank, self.tag(field, id, face), payload);
                }
            }
        }
        // Post matching receives for remote neighbors.
        for li in 0..self.local_ids.len() {
            let id = self.local_ids[li];
            for &face in faces {
                let Some(nb) = self.decomp.block(id).neighbors[face as usize] else {
                    continue;
                };
                let nb_rank = self.placement[nb];
                if nb_rank != my {
                    let tag = self.tag(field, nb, face.opposite());
                    recvs.push((li, face, self.rank.irecv(nb_rank, tag), plain));
                }
            }
        }
        Pending { recvs, field }
    }

    fn finish_plain(&mut self, p: Pending) {
        let field = p.field;
        for (li, face, req, plain) in p.recvs {
            let payload = self.rank.wait(req);
            let mut vals = core::mem::take(&mut self.scratch);
            bytes_to_f64s_into(&payload, &mut vals);
            self.unpack_face(li, field, face, plain, &vals);
            self.scratch = vals;
        }
    }

    fn post_plain(&mut self, field: FieldSel) -> Pending {
        self.post_faces(field, &Face::ALL, true)
    }

    fn post_axis(&mut self, field: FieldSel, axis: usize) -> Pending {
        let faces = [Face::ALL[2 * axis], Face::ALL[2 * axis + 1]];
        self.post_faces(field, &faces, false)
    }

    fn exchange_axis(&mut self, field: FieldSel, axis: usize) {
        let p = self.post_axis(field, axis);
        self.finish_plain(p);
    }

    fn exchange_sequenced(&mut self, field: FieldSel) {
        for axis in 0..3 {
            self.exchange_axis(field, axis);
        }
    }
}

/// Boundary spec for a block: Comm on faces with neighbors, the
/// directional-solidification physical conditions elsewhere.
fn block_bc<const NC: usize>(neighbors: [Option<usize>; 6], top: [f64; NC]) -> BoundarySpec<NC> {
    let mut spec = BoundarySpec::uniform(Bc::Comm);
    for f in Face::ALL {
        if neighbors[f as usize].is_none() {
            let bc = match f {
                Face::ZLow => Bc::Neumann,
                Face::ZHigh => Bc::Dirichlet(top),
                _ => Bc::Neumann, // non-periodic side walls (rare)
            };
            spec = spec.with_face(f, bc);
        }
    }
    spec
}

/// Run a distributed simulation on `n_ranks` thread-ranks and return every
/// rank's blocks plus timings (rank order).
///
/// Convenience wrapper over [`DistributedSim`] for tests and benchmarks.
pub fn run_distributed<F>(
    params: ModelParams,
    decomp: Decomposition,
    n_ranks: usize,
    steps: usize,
    cfg: KernelConfig,
    overlap: OverlapOptions,
    init: F,
) -> Vec<(Vec<BlockState>, StepTimings)>
where
    F: Fn(&mut BlockState) + Send + Sync + 'static,
{
    run_distributed_threaded(params, decomp, n_ranks, 1, steps, cfg, overlap, init)
}

/// Like [`run_distributed`] with `threads` intra-rank sweep threads per
/// rank (hybrid ranks × threads; `threads = 1` is the serial sweep path).
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_threaded<F>(
    params: ModelParams,
    decomp: Decomposition,
    n_ranks: usize,
    threads: usize,
    steps: usize,
    cfg: KernelConfig,
    overlap: OverlapOptions,
    init: F,
) -> Vec<(Vec<BlockState>, StepTimings)>
where
    F: Fn(&mut BlockState) + Send + Sync + 'static,
{
    let params = std::sync::Arc::new(params);
    let decomp = std::sync::Arc::new(decomp);
    let init = std::sync::Arc::new(init);
    eutectica_comm::Universe::run(n_ranks, move |rank| {
        let mut sim =
            DistributedSim::new(&rank, (*params).clone(), (*decomp).clone(), cfg, overlap);
        sim.set_threads(threads);
        sim.init_blocks(|b| init(b));
        sim.step_n(steps);
        (std::mem::take(&mut sim.blocks), sim.timings)
    })
}

/// Like [`run_distributed_threaded`] with a dynamic rebalancing policy
/// attached. Because blocks may finish on a different rank than they
/// started on, results are returned as `(block id, state)` pairs per rank
/// together with that rank's [`RebalanceStats`].
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_rebalanced<F>(
    params: ModelParams,
    decomp: Decomposition,
    n_ranks: usize,
    threads: usize,
    steps: usize,
    cfg: KernelConfig,
    overlap: OverlapOptions,
    policy: RebalancePolicy,
    init: F,
) -> Vec<(Vec<(usize, BlockState)>, RebalanceStats)>
where
    F: Fn(&mut BlockState) + Send + Sync + 'static,
{
    let params = std::sync::Arc::new(params);
    let decomp = std::sync::Arc::new(decomp);
    let init = std::sync::Arc::new(init);
    eutectica_comm::Universe::run(n_ranks, move |rank| {
        let mut sim =
            DistributedSim::new(&rank, (*params).clone(), (*decomp).clone(), cfg, overlap);
        sim.set_threads(threads);
        sim.init_blocks(|b| init(b));
        sim.set_rebalance_policy(Some(policy.clone()));
        sim.step_n(steps);
        let ids = sim.local_block_ids().to_vec();
        let stats = sim.rebalance_stats().cloned().unwrap_or_default();
        let blocks = std::mem::take(&mut sim.blocks);
        (ids.into_iter().zip(blocks).collect(), stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::decomp::DomainSpec;

    fn init_fn(b: &mut BlockState) {
        let seeds = crate::init::VoronoiSeeds::generate([16, 16], 5, [0.34, 0.33, 0.33], 11);
        crate::init::init_directional_block(b, &seeds, 4);
    }

    /// Single-rank single-block distributed run must match the Simulation
    /// façade exactly.
    #[test]
    fn matches_single_block_solver() {
        let params = ModelParams::ag_al_cu();
        let spec = DomainSpec::directional([16, 16, 16], [1, 1, 1]);
        let out = run_distributed(
            params.clone(),
            Decomposition::new(spec),
            1,
            5,
            KernelConfig::default(),
            OverlapOptions::default(),
            init_fn,
        );
        let mut sim = crate::solver::Simulation::new(params, [16, 16, 16]).unwrap();
        init_fn(&mut sim.state);
        sim.step_n(5);
        let dist = &out[0].0[0];
        for c in 0..N_PHASES {
            for (x, y, z) in dist.dims.interior_iter() {
                let a = dist.phi_src.at(c, x, y, z);
                let b = sim.state.phi_src.at(c, x, y, z);
                assert!(
                    (a - b).abs() < 1e-14,
                    "phi[{c}] mismatch at ({x},{y},{z}): {a} vs {b}"
                );
            }
        }
    }

    /// 1 rank with 4 blocks must match 4 ranks with 1 block each.
    #[test]
    fn rank_count_invariance() {
        let params = ModelParams::ag_al_cu();
        let spec = DomainSpec::directional([16, 16, 8], [2, 2, 1]);
        let run = |n_ranks: usize| {
            run_distributed(
                params.clone(),
                Decomposition::new(spec),
                n_ranks,
                4,
                KernelConfig::default(),
                OverlapOptions::default(),
                init_fn,
            )
        };
        let one = run(1);
        let four = run(4);
        // Collect blocks by id.
        let blocks_one = &one[0].0;
        for (r, (blocks, _)) in four.iter().enumerate() {
            assert_eq!(blocks.len(), 1);
            let b = &blocks[0];
            let a = &blocks_one[r];
            assert_eq!(a.origin, b.origin, "block order mismatch");
            for c in 0..N_PHASES {
                assert_eq!(a.phi_src.comp(c), b.phi_src.comp(c), "phi[{c}] rank {r}");
            }
            for c in 0..N_COMP {
                assert_eq!(a.mu_src.comp(c), b.mu_src.comp(c), "mu[{c}] rank {r}");
            }
        }
    }

    /// An autotuned run is bit-identical to the plain (pinned-default) run:
    /// the bit-exact candidate family guarantees the tuner's mid-run variant
    /// walk cannot change physics. Also checks the warmup actually finishes
    /// (every block pinned, summary non-empty, measurements recorded).
    #[test]
    fn autotune_run_is_bit_identical_to_pinned() {
        let params = ModelParams::ag_al_cu();
        let spec = DomainSpec::directional([8, 8, 16], [1, 1, 2]);
        // Enough steps for the longest warmup walk: |candidates| × (skip 1
        // + warmup 3) is at most 8 × 4 = 32 on an AVX2 host.
        let steps = 40;
        let plain = run_distributed(
            params.clone(),
            Decomposition::new(spec),
            1,
            steps,
            KernelConfig::default(),
            OverlapOptions::default(),
            init_fn,
        );
        let (mut tuned, _) = {
            let params = params.clone();
            eutectica_comm::Universe::run_with_stats(1, move |rank| {
                let mut sim = DistributedSim::new(
                    &rank,
                    params.clone(),
                    Decomposition::new(spec),
                    KernelConfig::default(),
                    OverlapOptions::default(),
                );
                sim.init_blocks(init_fn);
                sim.set_autotune_policy(Some(kernel_backend::AutotunePolicy::bit_exact()));
                sim.step_n(steps);
                let tuner = sim.autotuner().unwrap();
                assert!(tuner.all_pinned(), "warmup did not finish in {steps} steps");
                let summary = tuner.pinned_summary();
                assert!(!summary.is_empty(), "no chosen-variant summary");
                assert_eq!(summary.values().sum::<usize>(), 2, "both blocks pinned");
                assert_eq!(tuner.stats().pins, 2);
                assert!(tuner.has_region_rates(), "no warmup-fed region rates");
                (std::mem::take(&mut sim.blocks), sim.timings)
            })
        };
        let (blocks, _) = tuned.remove(0);
        for (bi, b) in blocks.iter().enumerate() {
            let a = &plain[0].0[bi];
            for c in 0..N_PHASES {
                for (x, y, z) in b.dims.interior_iter() {
                    assert_eq!(
                        a.phi_src.at(c, x, y, z).to_bits(),
                        b.phi_src.at(c, x, y, z).to_bits(),
                        "autotuned phi[{c}] block {bi} at ({x},{y},{z})"
                    );
                }
            }
            for c in 0..N_COMP {
                for (x, y, z) in b.dims.interior_iter() {
                    assert_eq!(
                        a.mu_src.at(c, x, y, z).to_bits(),
                        b.mu_src.at(c, x, y, z).to_bits(),
                        "autotuned mu[{c}] block {bi} at ({x},{y},{z})"
                    );
                }
            }
        }
    }

    /// All four overlap combinations produce (numerically) the same fields.
    #[test]
    fn overlap_equivalence() {
        let params = ModelParams::ag_al_cu();
        let spec = DomainSpec::directional([8, 8, 8], [2, 1, 1]);
        let runs: Vec<_> = OverlapOptions::ALL
            .iter()
            .map(|&ov| {
                run_distributed(
                    params.clone(),
                    Decomposition::new(spec),
                    2,
                    4,
                    KernelConfig::default(),
                    ov,
                    |b| {
                        let seeds =
                            crate::init::VoronoiSeeds::generate([8, 8], 3, [0.34, 0.33, 0.33], 2);
                        crate::init::init_directional_block(b, &seeds, 3);
                    },
                )
            })
            .collect();
        // The hide_mu toggle only reorders when the identical exchange and
        // BC work happens, so interiors must be *bit*-identical — both with
        // and without hide_phi (ALL is ordered none, µ, φ, µ+φ). Ghost
        // layers are excluded: under deferral the µ comm-face ghosts are
        // refreshed at the start of the *next* step, so they lag one step
        // at shutdown without ever being read stale.
        for (a_idx, b_idx) in [(0usize, 1usize), (2, 3)] {
            for (r, (blocks, _)) in runs[b_idx].iter().enumerate() {
                for (bi, b) in blocks.iter().enumerate() {
                    let a = &runs[a_idx][r].0[bi];
                    for (x, y, z) in b.dims.interior_iter() {
                        for c in 0..N_PHASES {
                            assert_eq!(
                                a.phi_src.at(c, x, y, z),
                                b.phi_src.at(c, x, y, z),
                                "hide_mu phi[{c}] at ({x},{y},{z})"
                            );
                        }
                        for c in 0..N_COMP {
                            assert_eq!(
                                a.mu_src.at(c, x, y, z),
                                b.mu_src.at(c, x, y, z),
                                "hide_mu mu[{c}] at ({x},{y},{z})"
                            );
                        }
                    }
                }
            }
        }
        let base = &runs[0];
        for (k, run) in runs.iter().enumerate().skip(1) {
            for (r, (blocks, _)) in run.iter().enumerate() {
                for (bi, b) in blocks.iter().enumerate() {
                    let a = &base[r].0[bi];
                    for c in 0..N_PHASES {
                        for (x, y, z) in b.dims.interior_iter() {
                            let d = (a.phi_src.at(c, x, y, z) - b.phi_src.at(c, x, y, z)).abs();
                            assert!(d < 1e-11, "overlap {k} phi[{c}] differs by {d:e}");
                        }
                    }
                    for c in 0..N_COMP {
                        for (x, y, z) in b.dims.interior_iter() {
                            let d = (a.mu_src.at(c, x, y, z) - b.mu_src.at(c, x, y, z)).abs();
                            assert!(d < 1e-11, "overlap {k} mu[{c}] differs by {d:e}");
                        }
                    }
                }
            }
        }
    }
}
