//! Domain-region classification and the benchmark scenarios of Sec. 5.1.
//!
//! The paper defines (Sec. 2): the bulk region B_α where exactly one phase
//! exists, the diffuse interface I_Ω between bulk regions, the
//! solidification front F_Ω (interface containing liquid), the liquid region
//! L_Ω = B_ℓ and the solid region S_Ω. Kernel performance depends on the
//! region mix ("the performance of the compute kernels depends on the
//! composition of the simulation domain"), so the benchmarks run three
//! representative block states: **interface** (the solidification front),
//! **solid** (solidified lamellae, lower third of a production domain) and
//! **liquid** (melt, upper part).

use crate::simplex::project_to_simplex;
use crate::state::{BlockState, PHI_LIQUID};
use crate::{LIQ, N_PHASES};
use eutectica_blockgrid::GridDims;

/// Region of a single cell per the paper's Sec. 2 definitions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CellRegion {
    /// Pure solid cell with all neighbors equal (some B_α, α ≠ ℓ).
    SolidBulk,
    /// Pure liquid cell with all neighbors equal (B_ℓ).
    LiquidBulk,
    /// Diffuse interface without liquid contribution (solid-solid boundary).
    SolidInterface,
    /// Solidification front: interface cell with φ_ℓ > 0.
    Front,
}

/// Classify one interior cell of a block.
pub fn classify_cell(state: &BlockState, x: usize, y: usize, z: usize) -> CellRegion {
    let phi = state.phi_src.cell(x, y, z);
    let neighbors = [
        state.phi_src.cell(x - 1, y, z),
        state.phi_src.cell(x + 1, y, z),
        state.phi_src.cell(x, y - 1, z),
        state.phi_src.cell(x, y + 1, z),
        state.phi_src.cell(x, y, z - 1),
        state.phi_src.cell(x, y, z + 1),
    ];
    if crate::model::is_bulk(phi, &neighbors) {
        if phi[LIQ] == 1.0 {
            CellRegion::LiquidBulk
        } else {
            CellRegion::SolidBulk
        }
    } else if phi[LIQ] > 0.0 || neighbors.iter().any(|n| n[LIQ] > 0.0) {
        CellRegion::Front
    } else {
        CellRegion::SolidInterface
    }
}

/// Cell counts per region of a block interior.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionCounts {
    /// Pure-solid bulk cells.
    pub solid_bulk: usize,
    /// Pure-liquid bulk cells.
    pub liquid_bulk: usize,
    /// Solid-solid interface cells.
    pub solid_interface: usize,
    /// Solidification-front cells.
    pub front: usize,
}

impl RegionCounts {
    /// Total classified cells.
    pub fn total(&self) -> usize {
        self.solid_bulk + self.liquid_bulk + self.solid_interface + self.front
    }
}

/// Classify every interior cell of a block.
pub fn classify_block(state: &BlockState) -> RegionCounts {
    let mut c = RegionCounts::default();
    for (x, y, z) in state.dims.interior_iter() {
        match classify_cell(state, x, y, z) {
            CellRegion::SolidBulk => c.solid_bulk += 1,
            CellRegion::LiquidBulk => c.liquid_bulk += 1,
            CellRegion::SolidInterface => c.solid_interface += 1,
            CellRegion::Front => c.front += 1,
        }
    }
    c
}

/// Default per-region kernel rates `[interface, liquid, solid]` in MLUP/s,
/// following the measured ordering of Sec. 5.1 (liquid fastest thanks to the
/// bulk shortcuts, interface slowest). Used as the cold-start prior of the
/// dynamic rebalancer's cost model before any sweep has been timed; only the
/// *ratios* matter there, and measured times replace the prior as soon as
/// they exist.
pub const DEFAULT_REGION_RATES: [f64; 3] = [30.0, 100.0, 45.0];

/// Estimated relative cost (time per cell) of a block from its region
/// composition and the measured per-region kernel rates (MLUP/s for
/// interface / liquid / solid cells). This is the per-block weight for the
/// load-balancing experiment of Sec. 5.1.2 ("in production runs, where all
/// of the three block compositions occur in the domain, the runtime is
/// dominated by the interface blocks").
pub fn block_weight(counts: &RegionCounts, rates_mlups: [f64; 3]) -> f64 {
    let [r_interface, r_liquid, r_solid] = rates_mlups;
    assert!(r_interface > 0.0 && r_liquid > 0.0 && r_solid > 0.0);
    (counts.front + counts.solid_interface) as f64 / r_interface
        + counts.liquid_bulk as f64 / r_liquid
        + counts.solid_bulk as f64 / r_solid
}

/// The three benchmark block compositions of Sec. 5.1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// "the middle third of the simulation domain": the solidification front
    /// with all four phases and steep gradients.
    Interface,
    /// "purely ... solidified material": three-phase lamellae with
    /// solid-solid interfaces, no liquid.
    Solid,
    /// "the upper part of the domain consists only of liquid phase".
    Liquid,
}

impl Scenario {
    /// All three scenarios in the paper's plotting order.
    pub const ALL: [Scenario; 3] = [Scenario::Interface, Scenario::Liquid, Scenario::Solid];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Interface => "interface",
            Scenario::Solid => "solid",
            Scenario::Liquid => "liquid",
        }
    }
}

/// Build a benchmark block in the requested composition.
///
/// The states are deterministic. φ_dst is a slightly-evolved copy of φ_src
/// (as it is when the µ-kernel runs after the φ-kernel), so the source and
/// anti-trapping terms of the µ-kernel are realistically exercised, and µ
/// carries a smooth profile so gradient fluxes are nonzero.
pub fn build_scenario(scenario: Scenario, dims: GridDims) -> BlockState {
    let mut s = BlockState::new(dims, [0, 0, 0]);
    let g = dims.ghost;
    // Lamella width: three bands across the block (12 cells at the paper's
    // 40³..60³ benchmark blocks), so all three solids appear.
    let lam = (dims.nx as f64 / 3.0).clamp(4.0, 12.0);
    for z in 0..dims.tz() {
        for y in 0..dims.ty() {
            for x in 0..dims.tx() {
                let (gx, gy, gz) = (
                    x as f64 - g as f64,
                    y as f64 - g as f64,
                    z as f64 - g as f64,
                );
                let phi = match scenario {
                    Scenario::Liquid => PHI_LIQUID,
                    Scenario::Solid => solid_lamellae(gx, gy, lam),
                    Scenario::Interface => front_profile(gx, gy, gz, dims.nz as f64 * 0.5, lam),
                };
                s.phi_src.set_cell(x, y, z, phi);
                // Smooth µ profile: gradients everywhere, zero mean.
                let mu0 = 0.05 * (0.37 * gx + 0.21 * gy + 0.11 * gz).sin();
                let mu1 = -0.04 * (0.13 * gx - 0.29 * gy + 0.17 * gz).cos();
                s.mu_src.set_cell(x, y, z, [mu0, mu1]);
                // φ_dst: slightly advanced front (only interface cells move).
                let phi_new = match scenario {
                    Scenario::Interface => {
                        front_profile(gx, gy, gz, dims.nz as f64 * 0.5 + 0.05, lam)
                    }
                    _ => phi,
                };
                s.phi_dst.set_cell(x, y, z, phi_new);
            }
        }
    }
    s
}

/// Solidification-front profile: lamellae below, liquid above, a tanh blend
/// of width ≈ 4 cells at `front`. The tails are snapped to exactly pure
/// values so the state contains true bulk regions (the tanh alone never
/// reaches 0/1 exactly, which would defeat the bulk shortcuts and the
/// region classification).
fn front_profile(gx: f64, gy: f64, gz: f64, front: f64, lam: f64) -> [f64; N_PHASES] {
    let d = gz - front;
    let liq = if d > 8.0 {
        1.0
    } else if d < -8.0 {
        0.0
    } else {
        0.5 + 0.5 * (d / 2.0).tanh()
    };
    if liq == 1.0 {
        return PHI_LIQUID;
    }
    let mut v = solid_lamellae(gx, gy, lam);
    if liq == 0.0 {
        return v;
    }
    for p in v.iter_mut() {
        *p *= 1.0 - liq;
    }
    v[LIQ] = liq;
    project_to_simplex(v)
}

/// Alternating three-phase lamellae in x with diffuse solid-solid walls.
fn solid_lamellae(gx: f64, _gy: f64, lam: f64) -> [f64; N_PHASES] {
    let pos = gx / lam;
    let band = pos.floor();
    let frac = pos - band; // 0..1 inside the band
    let this = (band.rem_euclid(3.0)) as usize;
    let next = ((band + 1.0).rem_euclid(3.0)) as usize;
    // Diffuse wall of ~3 cells at the band boundary.
    let w = 1.5 / lam;
    let mut v = [0.0; N_PHASES];
    if frac > 1.0 - w {
        let t = (frac - (1.0 - w)) / w * 0.5; // 0..0.5 blend into next band
        v[this] = 1.0 - t;
        v[next] = t;
    } else if frac < w {
        let t = 0.5 - frac / w * 0.5;
        v[this] = 1.0 - t;
        let prev = ((band - 1.0).rem_euclid(3.0)) as usize;
        v[prev] = t;
    } else {
        v[this] = 1.0;
    }
    project_to_simplex(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liquid_scenario_is_all_liquid_bulk() {
        let s = build_scenario(Scenario::Liquid, GridDims::cube(8));
        let c = classify_block(&s);
        assert_eq!(c.liquid_bulk, c.total());
    }

    #[test]
    fn solid_scenario_has_no_liquid_but_has_interfaces() {
        let s = build_scenario(Scenario::Solid, GridDims::cube(24));
        let c = classify_block(&s);
        assert_eq!(c.liquid_bulk, 0);
        assert_eq!(c.front, 0, "solid scenario must contain no liquid");
        assert!(c.solid_bulk > 0, "{c:?}");
        assert!(c.solid_interface > 0, "{c:?}");
    }

    #[test]
    fn interface_scenario_contains_front_cells_and_all_phases() {
        let s = build_scenario(Scenario::Interface, GridDims::cube(24));
        let c = classify_block(&s);
        assert!(c.front > 0, "{c:?}");
        assert!(c.liquid_bulk > 0, "{c:?}");
        // All four phases present somewhere.
        let mut present = [false; 4];
        for (x, y, z) in s.dims.interior_iter() {
            let phi = s.phi_src.cell(x, y, z);
            for a in 0..4 {
                if phi[a] > 0.5 {
                    present[a] = true;
                }
            }
        }
        assert!(present.iter().all(|&p| p), "{present:?}");
    }

    #[test]
    fn scenario_states_are_valid_simplex_fields() {
        for sc in Scenario::ALL {
            let s = build_scenario(sc, GridDims::cube(16));
            for (x, y, z) in s.dims.interior_iter() {
                let phi = s.phi_src.cell(x, y, z);
                assert!(
                    crate::simplex::on_simplex(phi, 1e-12),
                    "{sc:?} off simplex at ({x},{y},{z}): {phi:?}"
                );
            }
        }
    }

    #[test]
    fn block_weights_rank_scenarios_like_the_paper() {
        // "the 'interface' scenario being the slowest due to higher workload
        // in interface cells" — with the measured rate ordering
        // (liquid > solid > interface at full optimization), interface
        // blocks get the largest weight.
        let rates = [30.0, 100.0, 45.0]; // interface, liquid, solid MLUP/s
        let dims = GridDims::cube(16);
        let w_interface = block_weight(
            &classify_block(&build_scenario(Scenario::Interface, dims)),
            rates,
        );
        let w_liquid = block_weight(
            &classify_block(&build_scenario(Scenario::Liquid, dims)),
            rates,
        );
        let w_solid = block_weight(
            &classify_block(&build_scenario(Scenario::Solid, dims)),
            rates,
        );
        assert!(w_interface > w_solid, "{w_interface} vs {w_solid}");
        assert!(w_solid > w_liquid, "{w_solid} vs {w_liquid}");
    }

    #[test]
    fn weighted_balancing_helps_mixed_domains_not_interface_only() {
        // The paper's load-balancing experiment outcome: weighting helps a
        // mixed solid/interface/liquid column, but with the moving window
        // every block is interface-like and there is nothing to gain.
        use eutectica_blockgrid::balance::{
            assign_contiguous_uniform, assign_contiguous_weighted, imbalance,
        };
        let rates = [30.0, 100.0, 45.0];
        let dims = GridDims::cube(12);
        let weight_of =
            |sc: Scenario| block_weight(&classify_block(&build_scenario(sc, dims)), rates);
        // Full-domain column: interface band at the bottom, liquid above
        // (the pre-moving-window situation where most blocks are cheap
        // liquid and a few are expensive interface).
        let mixed: Vec<f64> = [
            Scenario::Interface,
            Scenario::Interface,
            Scenario::Liquid,
            Scenario::Liquid,
            Scenario::Liquid,
            Scenario::Liquid,
            Scenario::Liquid,
            Scenario::Liquid,
        ]
        .iter()
        .map(|&sc| weight_of(sc))
        .collect();
        let gain_mixed = imbalance(&mixed, &assign_contiguous_uniform(8, 4), 4)
            - imbalance(&mixed, &assign_contiguous_weighted(&mixed, 4), 4);
        assert!(
            gain_mixed > 0.05,
            "weighting should help mixed: {gain_mixed}"
        );
        // Moving-window column: everything interface-like.
        let windowed = vec![weight_of(Scenario::Interface); 8];
        let gain_window = imbalance(&windowed, &assign_contiguous_uniform(8, 4), 4)
            - imbalance(&windowed, &assign_contiguous_weighted(&windowed, 4), 4);
        assert!(
            gain_window.abs() < 1e-9,
            "no gain expected under the moving window: {gain_window}"
        );
    }

    #[test]
    fn region_definitions_follow_paper() {
        // Hand-built 3³ neighborhoods.
        let dims = GridDims::cube(3);
        let mut s = BlockState::new(dims, [0, 0, 0]);
        // All liquid: center is liquid bulk.
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::LiquidBulk);
        // Mixed cell: front.
        s.phi_src.set_cell(2, 2, 2, [0.5, 0.0, 0.0, 0.5]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::Front);
        // Pure solid cell whose neighbor differs: still front (liquid near).
        s.phi_src.set_cell(2, 2, 2, [1.0, 0.0, 0.0, 0.0]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::Front);
        // Solid-solid interface, no liquid anywhere nearby.
        let dims = GridDims::cube(3);
        let mut s2 = BlockState::new(dims, [0, 0, 0]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    s2.phi_src.set_cell(x, y, z, [1.0, 0.0, 0.0, 0.0]);
                }
            }
        }
        assert_eq!(classify_cell(&s2, 2, 2, 2), CellRegion::SolidBulk);
        s2.phi_src.set_cell(3, 2, 2, [0.5, 0.5, 0.0, 0.0]);
        assert_eq!(classify_cell(&s2, 2, 2, 2), CellRegion::SolidInterface);
    }

    #[test]
    fn cells_adjacent_to_ghost_boundaries_read_ghost_contents() {
        // cube(3): ghost 1, interior 1..4 — cell (1,2,2) touches the x-low
        // ghost layer at x = 0, so its classification depends on whatever
        // the BC application / ghost exchange last wrote there.
        let dims = GridDims::cube(3);
        let mut s = BlockState::new(dims, [0, 0, 0]);
        // Fresh state: everything (ghosts included) is liquid → bulk.
        assert_eq!(classify_cell(&s, 1, 2, 2), CellRegion::LiquidBulk);
        // A diffuse ghost neighbor breaks bulk: the boundary cell becomes
        // front even though the whole interior is pure liquid.
        s.phi_src.set_cell(0, 2, 2, [0.5, 0.0, 0.0, 0.5]);
        assert_eq!(classify_cell(&s, 1, 2, 2), CellRegion::Front);
        // A pure-solid ghost neighbor: the liquid boundary cell is still
        // front (its own φ_ℓ > 0), not bulk.
        s.phi_src.set_cell(0, 2, 2, [1.0, 0.0, 0.0, 0.0]);
        assert_eq!(classify_cell(&s, 1, 2, 2), CellRegion::Front);
        // The opposite interior corner is unaffected by that ghost.
        assert_eq!(classify_cell(&s, 3, 2, 2), CellRegion::LiquidBulk);
        // Same at the z-high boundary (the face the moving window refills).
        let mut s = BlockState::new(dims, [0, 0, 0]);
        assert_eq!(classify_cell(&s, 2, 2, 3), CellRegion::LiquidBulk);
        s.phi_src.set_cell(2, 2, 4, [0.0, 0.5, 0.0, 0.5]); // ghost above
        assert_ne!(classify_cell(&s, 2, 2, 3), CellRegion::LiquidBulk);
    }

    #[test]
    fn phi_liquid_exactly_zero_and_one_edges() {
        let dims = GridDims::cube(3);
        let fill = |phi: [f64; N_PHASES]| {
            let mut s = BlockState::new(dims, [0, 0, 0]);
            for z in 0..dims.tz() {
                for y in 0..dims.ty() {
                    for x in 0..dims.tx() {
                        s.phi_src.set_cell(x, y, z, phi);
                    }
                }
            }
            s
        };
        // φ_ℓ exactly 1.0 with equal neighbors: liquid bulk (strict ==).
        let s = fill([0.0, 0.0, 0.0, 1.0]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::LiquidBulk);
        // φ_ℓ a hair below 1.0: no component is pure, so the cell is an
        // interface cell — and carries liquid, so it is front.
        let eps = 1e-12;
        let s = fill([0.0, 0.0, eps, 1.0 - eps]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::Front);
        // φ_ℓ exactly 0.0 everywhere: pure solid bulk.
        let s = fill([1.0, 0.0, 0.0, 0.0]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::SolidBulk);
        // A negative-zero liquid component must behave exactly like +0.0
        // (-0.0 > 0.0 is false): still solid bulk, not front.
        let s = fill([1.0, 0.0, 0.0, -0.0]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::SolidBulk);
        // A neighbor that is pure in the *same* solid keeps the cell bulk
        // even if it also carries a (sub-ulp) liquid residue: is_bulk only
        // inspects the pure component. Documented behavior — such residues
        // cannot survive a simplex projection anyway.
        let mut s = fill([1.0, 0.0, 0.0, 0.0]);
        let tiny = f64::from_bits(1); // smallest positive subnormal
        s.phi_src.set_cell(3, 2, 2, [1.0, 0.0, 0.0, tiny]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::SolidBulk);
        // A different-solid neighbor without liquid: solid-solid interface…
        s.phi_src.set_cell(3, 2, 2, [0.0, 1.0, 0.0, 0.0]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::SolidInterface);
        // …and the tiniest positive liquid contribution in that neighbor
        // flips the cell to front (strict > 0.0 on the neighborhood).
        s.phi_src.set_cell(3, 2, 2, [0.0, 1.0, 0.0, tiny]);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::Front);
    }

    #[test]
    fn post_simplex_projection_values_classify_consistently() {
        use crate::simplex::on_simplex;
        let dims = GridDims::cube(3);
        // Projection clamps negative components to exactly 0.0 — the strict
        // `> 0.0` front test must treat such cells as liquid-free.
        let solidish = project_to_simplex([0.6, 0.55, 0.0, -0.05]);
        assert!(on_simplex(solidish, 1e-12));
        assert_eq!(solidish[LIQ], 0.0, "projection must clamp to exact zero");
        let mut s = BlockState::new(dims, [0, 0, 0]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    s.phi_src.set_cell(x, y, z, [1.0, 0.0, 0.0, 0.0]);
                }
            }
        }
        s.phi_src.set_cell(2, 2, 2, solidish);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::SolidInterface);
        assert_eq!(classify_cell(&s, 1, 2, 2), CellRegion::SolidInterface);
        // A projected vector that keeps liquid stays front.
        let frontish = project_to_simplex([0.3, 0.0, 0.0, 0.75]);
        assert!(on_simplex(frontish, 1e-12));
        assert!(frontish[LIQ] > 0.0);
        s.phi_src.set_cell(2, 2, 2, frontish);
        assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::Front);
        // An over-saturated pure phase projects back to an exact vertex and
        // classifies as bulk amid equal neighbors.
        let vertex = project_to_simplex([1.2, -0.1, -0.1, 0.0]);
        assert!(on_simplex(vertex, 1e-12));
        if vertex[0] == 1.0 {
            s.phi_src.set_cell(2, 2, 2, vertex);
            assert_eq!(classify_cell(&s, 2, 2, 2), CellRegion::SolidBulk);
        }
    }
}
