//! The "general purpose C code" rung: a runtime-N/K implementation with
//! per-cell dynamic dispatch.
//!
//! The paper's starting point was PACE3D, "a general phase-field code
//! written in C" whose "main design goal ... is flexibility", making "heavy
//! use of indirect function calls via function pointers at cell level"
//! (Sec. 5.1.1). This module reproduces that style faithfully:
//!
//! * the number of phases and components is a *runtime* value (the loops are
//!   not unrollable at compile time),
//! * the interpolation function and the potential derivative are invoked
//!   through trait objects per cell — the Rust analog of C function
//!   pointers,
//! * no per-slice precomputation, no staggered buffering, no shortcuts:
//!   every cell does the full work.
//!
//! The per-cell routines are generic over [`Real`] so the exact
//! floating-point operation counts per cell update can be measured with the
//! [`crate::metrics::Counting`] instrumented type (the paper reports 1384
//! FLOPs per µ-cell update for its model; the roofline bench derives ours
//! the same way).

use crate::kernels::MuPart;
use crate::metrics::Real;
use crate::params::ModelParams;
use crate::state::BlockState;
use crate::{LIQ, N_COMP, N_PHASES};

/// Per-cell functions dispatched dynamically — the "function pointers at
/// cell level" of the original code.
pub trait CellFn<R: Real>: Sync {
    /// Evaluate into `out` (length N).
    fn eval(&self, phi: &[R], out: &mut [R]);
}

/// Moelans interpolation h_α = φ_α²/Σφ² as a dispatchable cell function.
pub struct MoelansInterp;

impl<R: Real> CellFn<R> for MoelansInterp {
    fn eval(&self, phi: &[R], out: &mut [R]) {
        let mut s = R::from_f64(0.0);
        for &p in phi {
            s = s + p * p;
        }
        let inv = R::from_f64(1.0) / s;
        for (o, &p) in out.iter_mut().zip(phi) {
            *o = p * p * inv;
        }
    }
}

/// Multi-obstacle potential derivative ∂ω̂/∂φ_α = Σ_β γ_αβ φ_β.
pub struct ObstacleDeriv {
    /// Surface-energy matrix, row-major, n×n.
    pub gamma: Vec<f64>,
    /// Number of phases.
    pub n: usize,
}

impl<R: Real> CellFn<R> for ObstacleDeriv {
    fn eval(&self, phi: &[R], out: &mut [R]) {
        for a in 0..self.n {
            let mut s = R::from_f64(0.0);
            for b in 0..self.n {
                s = s + R::from_f64(self.gamma[a * self.n + b]) * phi[b];
            }
            out[a] = s;
        }
    }
}

/// Runtime description of the model for the general-purpose kernel.
pub struct GeneralModel<R: Real> {
    /// Number of phases (runtime value).
    pub n: usize,
    /// Number of chemical potentials (runtime value).
    pub k: usize,
    /// γ_αβ, row-major n×n.
    pub gamma: Vec<f64>,
    /// Parabolic curvatures k_i at T_eu, n×k.
    pub curvature: Vec<f64>,
    /// Relative curvature temperature slopes κ_i, n×k.
    pub dk_dt: Vec<f64>,
    /// Diffusivities D_α, n.
    pub diffusivity: Vec<f64>,
    /// dc_eq/dT slopes, n×k.
    pub dc_dt: Vec<f64>,
    /// Eutectic concentrations, n×k.
    pub c_eu: Vec<f64>,
    /// Grand-potential latent coefficients, n.
    pub latent: Vec<f64>,
    /// Eutectic temperature.
    pub t_eu: f64,
    /// Dynamically dispatched interpolation function.
    pub interp: Box<dyn CellFn<R>>,
    /// Dynamically dispatched obstacle derivative.
    pub obstacle: Box<dyn CellFn<R>>,
    /// Precomputed temperature-dependent coefficients (the T(z)
    /// optimization). When set, coefficient lookups are free constants, so
    /// FLOP counting on this model yields the per-cell cost of the
    /// *amortized* kernels — the quantity the paper reports (1384
    /// FLOP/cell). `None` = recompute per cell (the general-purpose code).
    pub frozen: Option<FrozenCoeffs>,
}

/// Temperature-dependent coefficients evaluated once per slice.
#[derive(Clone, Debug)]
pub struct FrozenCoeffs {
    /// c^eq_α,i(T), n×k.
    pub c_eq: Vec<f64>,
    /// 1/(2k_i(T)), n×k.
    pub inv2k: Vec<f64>,
    /// 1/(4k_i(T)), n×k.
    pub inv4k: Vec<f64>,
    /// D_α/(2k_i(T)), n×k.
    pub mob: Vec<f64>,
    /// X_α(T), n.
    pub offset: Vec<f64>,
}

impl<R: Real> GeneralModel<R> {
    /// Build from the specialized parameter struct.
    pub fn from_params(p: &ModelParams) -> Self {
        let n = N_PHASES;
        let k = N_COMP;
        let mut gamma = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                gamma[a * n + b] = p.gamma[a][b];
            }
        }
        let flat = |f: &dyn Fn(usize, usize) -> f64| -> Vec<f64> {
            let mut v = vec![0.0; n * k];
            for a in 0..n {
                for i in 0..k {
                    v[a * k + i] = f(a, i);
                }
            }
            v
        };
        Self {
            n,
            k,
            gamma: gamma.clone(),
            curvature: flat(&|a, i| p.sys.phases[a].curvature[i]),
            dk_dt: flat(&|a, i| p.sys.phases[a].dk_dt[i]),
            diffusivity: (0..n).map(|a| p.sys.phases[a].diffusivity).collect(),
            dc_dt: flat(&|a, i| p.sys.dc_dt(a)[i]),
            c_eu: flat(&|a, i| p.sys.phases[a].c_eu[i]),
            latent: (0..n).map(|a| p.sys.phases[a].latent).collect(),
            t_eu: p.sys.t_eu,
            interp: Box::new(MoelansInterp),
            obstacle: Box::new(ObstacleDeriv { gamma, n }),
            frozen: None,
        }
    }

    /// Freeze all temperature-dependent coefficients at temperature `t`
    /// (per-slice precomputation; see [`GeneralModel::frozen`]).
    pub fn freeze_at(&mut self, p: &ModelParams, t: f64) {
        let (n, k) = (self.n, self.k);
        let mut f = FrozenCoeffs {
            c_eq: vec![0.0; n * k],
            inv2k: vec![0.0; n * k],
            inv4k: vec![0.0; n * k],
            mob: vec![0.0; n * k],
            offset: vec![0.0; n],
        };
        for a in 0..n {
            let ph = &p.sys.phases[a];
            let c_eq = ph.c_eq(t, self.t_eu);
            let kk = ph.curvature_at(t, self.t_eu);
            for i in 0..k {
                f.c_eq[a * k + i] = c_eq[i];
                f.inv2k[a * k + i] = 1.0 / (2.0 * kk[i]);
                f.inv4k[a * k + i] = 1.0 / (4.0 * kk[i]);
                f.mob[a * k + i] = ph.diffusivity / (2.0 * kk[i]);
            }
            f.offset[a] = ph.offset(t, self.t_eu);
        }
        self.frozen = Some(f);
    }

    /// Temperature-dependent curvature k_i(T) (recomputed per cell: the
    /// general-purpose code has no T(z) shortcut).
    #[inline]
    fn curvature_at(&self, a: usize, i: usize, t: R) -> R {
        R::from_f64(self.curvature[a * self.k + i])
            * (R::from_f64(1.0)
                + R::from_f64(self.dk_dt[a * self.k + i]) * (t - R::from_f64(self.t_eu)))
    }

    /// 1/(2 k_i(T)).
    #[inline]
    fn inv2k_at(&self, a: usize, i: usize, t: R) -> R {
        if let Some(f) = &self.frozen {
            return R::from_f64(f.inv2k[a * self.k + i]);
        }
        R::from_f64(1.0) / (R::from_f64(2.0) * self.curvature_at(a, i, t))
    }

    /// 1/(4 k_i(T)).
    #[inline]
    fn inv4k_at(&self, a: usize, i: usize, t: R) -> R {
        if let Some(f) = &self.frozen {
            return R::from_f64(f.inv4k[a * self.k + i]);
        }
        R::from_f64(1.0) / (R::from_f64(4.0) * self.curvature_at(a, i, t))
    }

    /// Mobility coefficient D_α / (2 k_i(T)).
    #[inline]
    fn mob_at(&self, a: usize, i: usize, t: R) -> R {
        if let Some(f) = &self.frozen {
            return R::from_f64(f.mob[a * self.k + i]);
        }
        R::from_f64(self.diffusivity[a]) * self.inv2k_at(a, i, t)
    }

    /// c^eq_α,i at temperature `t` (recomputed per cell unless frozen).
    #[inline]
    fn c_eq(&self, p: &ModelParams, a: usize, i: usize, t: R) -> R {
        if let Some(f) = &self.frozen {
            return R::from_f64(f.c_eq[a * self.k + i]);
        }
        R::from_f64(p.sys.phases[a].c_eu[i])
            + R::from_f64(self.dc_dt[a * self.k + i]) * (t - R::from_f64(self.t_eu))
    }

    /// Grand potential ψ_α(µ, T).
    fn grand_potential(&self, p: &ModelParams, a: usize, mu: &[R], t: R) -> R {
        let mut s = R::from_f64(0.0);
        for i in 0..self.k {
            s = s - mu[i] * mu[i] * self.inv4k_at(a, i, t) - mu[i] * self.c_eq(p, a, i, t);
        }
        if let Some(f) = &self.frozen {
            return s + R::from_f64(f.offset[a]);
        }
        s + R::from_f64(self.latent[a]) * (t - R::from_f64(self.t_eu)) / R::from_f64(self.t_eu)
    }
}

/// Scratch buffers reused across cells (the original code hoists these too).
pub struct Scratch<R: Real> {
    h_old: Vec<R>,
    h_new: Vec<R>,
    psi: Vec<R>,
    grads: Vec<[R; 3]>,
    vdf: Vec<R>,
    obst: Vec<R>,
    out: Vec<R>,
}

impl<R: Real> Scratch<R> {
    /// Allocate for `n` phases.
    pub fn new(n: usize) -> Self {
        let z = R::from_f64(0.0);
        Self {
            h_old: vec![z; n],
            h_new: vec![z; n],
            psi: vec![z; n],
            grads: vec![[z; 3]; n],
            vdf: vec![z; n],
            obst: vec![z; n],
            out: vec![z; n],
        }
    }
}

/// Generic φ-cell update: `stencil[0]` is the center, `stencil[1..7]` the
/// −x,+x,−y,+y,−z,+z neighbors, each a slice of n phase values. Returns the
/// projected new φ in `scratch.out`.
#[allow(clippy::too_many_arguments)]
pub fn ref_phi_cell<R: Real>(
    model: &GeneralModel<R>,
    p: &ModelParams,
    stencil: &[Vec<R>; 7],
    mu: &[R],
    t: R,
    scratch: &mut Scratch<R>,
) {
    ref_phi_cell_faces(model, p, stencil, mu, t, scratch, false)
}

/// Like [`ref_phi_cell`], but with `buffered = true` only the three "high"
/// faces are evaluated (the staggered-buffer kernels reuse the low faces of
/// the previous cells). Used by the FLOP accounting to count exactly what
/// the optimized kernels execute per cell.
#[allow(clippy::too_many_arguments)]
pub fn ref_phi_cell_faces<R: Real>(
    model: &GeneralModel<R>,
    p: &ModelParams,
    stencil: &[Vec<R>; 7],
    mu: &[R],
    t: R,
    scratch: &mut Scratch<R>,
    buffered: bool,
) {
    let n = model.n;
    let inv_dx = R::from_f64(1.0 / p.dx);
    let half = R::from_f64(0.5);
    let two = R::from_f64(2.0);

    // Central gradients.
    for a in 0..n {
        scratch.grads[a] = [
            (stencil[2][a] - stencil[1][a]) * half * inv_dx,
            (stencil[4][a] - stencil[3][a]) * half * inv_dx,
            (stencil[6][a] - stencil[5][a]) * half * inv_dx,
        ];
    }

    // Staggered face fluxes and their divergence (eager, all six faces;
    // with `buffered` only the high faces, as in the buffered kernels).
    let mut div = vec![R::from_f64(0.0); n];
    for (f, (lo, hi)) in [(1usize, 0usize), (0, 2), (3, 0), (0, 4), (5, 0), (0, 6)]
        .iter()
        .enumerate()
    {
        if buffered && f % 2 == 0 {
            continue;
        }
        // Even faces are "low" (neighbor, center), odd are "high".
        let (l, r) = if f % 2 == 0 {
            (&stencil[*lo + *hi], &stencil[0])
        } else {
            (&stencil[0], &stencil[*lo + *hi])
        };
        let sign = if f % 2 == 0 {
            R::from_f64(-1.0)
        } else {
            R::from_f64(1.0)
        };
        for a in 0..n {
            let mut s1 = R::from_f64(0.0);
            let mut s2 = R::from_f64(0.0);
            let pf_a = (l[a] + r[a]) * half;
            let g_a = (r[a] - l[a]) * inv_dx;
            for b in 0..n {
                let gm = R::from_f64(model.gamma[a * n + b]);
                let pf_b = (l[b] + r[b]) * half;
                let g_b = (r[b] - l[b]) * inv_dx;
                s1 = s1 + gm * pf_b * g_b;
                s2 = s2 + gm * pf_b * pf_b;
            }
            let flux = R::from_f64(-2.0) * (pf_a * s1 - g_a * s2);
            div[a] = div[a] + sign * flux * inv_dx;
        }
    }

    // ∂a/∂φ.
    let phi = &stencil[0];
    for a in 0..n {
        let mut s_norm = R::from_f64(0.0);
        let mut s_dot = R::from_f64(0.0);
        for b in 0..n {
            let gm = R::from_f64(model.gamma[a * n + b]);
            let g2 = scratch.grads[b][0] * scratch.grads[b][0]
                + scratch.grads[b][1] * scratch.grads[b][1]
                + scratch.grads[b][2] * scratch.grads[b][2];
            s_norm = s_norm + gm * g2;
            let dot = scratch.grads[a][0] * scratch.grads[b][0]
                + scratch.grads[a][1] * scratch.grads[b][1]
                + scratch.grads[a][2] * scratch.grads[b][2];
            s_dot = s_dot + gm * phi[b] * dot;
        }
        scratch.vdf[a] = two * (phi[a] * s_norm - s_dot);
    }

    // Driving force via dynamically dispatched interpolation.
    for a in 0..n {
        scratch.psi[a] = model.grand_potential(p, a, mu, t);
    }
    model.interp.eval(phi, &mut scratch.h_old);
    let mut psi_bar = R::from_f64(0.0);
    for a in 0..n {
        psi_bar = psi_bar + scratch.h_old[a] * scratch.psi[a];
    }
    let mut s_phi2 = R::from_f64(0.0);
    for a in 0..n {
        s_phi2 = s_phi2 + phi[a] * phi[a];
    }
    let inv_s = R::from_f64(1.0) / s_phi2;

    // Obstacle via dynamic dispatch.
    model.obstacle.eval(phi, &mut scratch.obst);

    // Assemble δF/δφ, project out the mean, integrate, clip to the simplex.
    let pref_grad = t * R::from_f64(p.eps);
    let pref_obst = t * R::from_f64(ModelParams::obstacle_scale() / p.eps);
    let mut mean = R::from_f64(0.0);
    for a in 0..n {
        let drive = two * phi[a] * inv_s * (scratch.psi[a] - psi_bar);
        let v = pref_grad * (scratch.vdf[a] - div[a]) + pref_obst * scratch.obst[a] + drive;
        scratch.vdf[a] = v;
        mean = mean + v;
    }
    mean = mean / R::from_f64(n as f64);
    let rate = R::from_f64(p.dt / (p.tau * p.eps));
    for a in 0..n {
        scratch.out[a] = phi[a] - rate * (scratch.vdf[a] - mean);
    }
    // Simplex projection, generic (insertion sort on a copy).
    let mut u: Vec<R> = scratch.out.clone();
    for i in 1..n {
        let mut j = i;
        while j > 0 && u[j - 1] < u[j] {
            u.swap(j - 1, j);
            j -= 1;
        }
    }
    let mut cumsum = R::from_f64(0.0);
    let mut lambda = R::from_f64(0.0);
    for (j, &uj) in u.iter().enumerate() {
        cumsum = cumsum + uj;
        let l = (R::from_f64(1.0) - cumsum) / R::from_f64(j as f64 + 1.0);
        if (uj + l).to_f64() > 0.0 {
            lambda = l;
        }
    }
    for a in 0..n {
        scratch.out[a] = (scratch.out[a] + lambda).max(R::from_f64(0.0));
    }
}

/// Generic µ-cell update (eager, all six faces, full J_at). `phi19` holds
/// φ_src for the D3C19 neighborhood addressed by [`d19_index`]; `phi_new7`
/// holds φ_dst for the D3C7 sub-stencil; `mu7` the µ values of the D3C7
/// stencil. `t`, `t_zlow`, `t_zhigh` are the cell and z-face temperatures.
#[allow(clippy::too_many_arguments)]
pub fn ref_mu_cell<R: Real>(
    model: &GeneralModel<R>,
    p: &ModelParams,
    phi19: &[Vec<R>],
    phi_new7: &[Vec<R>; 7],
    mu7: &[Vec<R>; 7],
    t: R,
    t_zlow: R,
    t_zhigh: R,
    scratch: &mut Scratch<R>,
) -> Vec<R> {
    ref_mu_cell_faces(
        model, p, phi19, phi_new7, mu7, t, t_zlow, t_zhigh, scratch, false,
    )
}

/// Like [`ref_mu_cell`], but with `buffered = true` only the three "high"
/// faces are evaluated (staggered-buffer accounting).
#[allow(clippy::too_many_arguments)]
pub fn ref_mu_cell_faces<R: Real>(
    model: &GeneralModel<R>,
    p: &ModelParams,
    phi19: &[Vec<R>],
    phi_new7: &[Vec<R>; 7],
    mu7: &[Vec<R>; 7],
    t: R,
    t_zlow: R,
    t_zhigh: R,
    scratch: &mut Scratch<R>,
    buffered: bool,
) -> Vec<R> {
    let n = model.n;
    let k = model.k;
    let inv_dx = R::from_f64(1.0 / p.dx);
    let inv_dt = R::from_f64(1.0 / p.dt);
    let half = R::from_f64(0.5);
    let quarter = R::from_f64(0.25);
    let zero = R::from_f64(0.0);
    let pref = R::from_f64(if p.enable_atc { p.atc_prefactor() } else { 0.0 });

    let mut div = vec![zero; k];

    // The six faces: (D3C7 neighbor id, axis, is_high).
    for &(nb, axis, high) in &[
        (1usize, 0usize, false),
        (2, 0, true),
        (3, 1, false),
        (4, 1, true),
        (5, 2, false),
        (6, 2, true),
    ] {
        if buffered && !high {
            continue;
        }
        let (il, ir) = if high { (0, nb) } else { (nb, 0) };
        let t_face = match (axis, high) {
            (2, false) => t_zlow,
            (2, true) => t_zhigh,
            _ => t,
        };
        // Gradient flux: M(φF) ∂µ/∂n.
        let sign = if high {
            R::from_f64(1.0)
        } else {
            R::from_f64(-1.0)
        };
        for i in 0..k {
            let mut m = zero;
            for a in 0..n {
                let pf = (phi19[d7(il)][a] + phi19[d7(ir)][a]) * half;
                m = m + pf * model.mob_at(a, i, t_face);
            }
            let flux = m * (mu7[ir][i] - mu7[il][i]) * inv_dx;
            div[i] = div[i] + sign * flux * inv_dx;
        }

        // Anti-trapping current at the face (eager: no skips).
        // Face gradients of every phase (D3C19 accesses).
        let gl_idx = LIQ;
        let (e1, e2) = trans_axes(axis);
        let mut grads: Vec<[R; 3]> = vec![[zero; 3]; n];
        for (a, ga) in grads.iter_mut().enumerate() {
            let normal = (phi19[d7(ir)][a] - phi19[d7(il)][a]) * inv_dx;
            let t1 = quarter
                * inv_dx
                * ((phi19[d19(il, e1, true)][a] - phi19[d19(il, e1, false)][a])
                    + (phi19[d19(ir, e1, true)][a] - phi19[d19(ir, e1, false)][a]));
            let t2 = quarter
                * inv_dx
                * ((phi19[d19(il, e2, true)][a] - phi19[d19(il, e2, false)][a])
                    + (phi19[d19(ir, e2, true)][a] - phi19[d19(ir, e2, false)][a]));
            *ga = match axis {
                0 => [normal, t1, t2],
                1 => [t1, normal, t2],
                _ => [t1, t2, normal],
            };
        }
        let pl = (phi19[d7(il)][gl_idx] + phi19[d7(ir)][gl_idx]) * half;
        let gl = grads[gl_idx];
        let nl2 = gl[0] * gl[0] + gl[1] * gl[1] + gl[2] * gl[2];
        let ind_l = R::from_f64(((pl.to_f64() > 0.0) & (nl2.to_f64() > 0.0)) as u8 as f64);
        let inv_nl = R::from_f64(1.0) / nl2.max(R::from_f64(f64::MIN_POSITIVE)).sqrt();
        let inv_pl = R::from_f64(1.0) / pl.max(R::from_f64(f64::MIN_POSITIVE));
        let mut s_f = zero;
        for a in 0..n {
            let pf = (phi19[d7(il)][a] + phi19[d7(ir)][a]) * half;
            s_f = s_f + pf * pf;
        }
        let h_l = pl * pl / s_f;
        for a in 0..n {
            if a == gl_idx {
                continue;
            }
            let pa = (phi19[d7(il)][a] + phi19[d7(ir)][a]) * half;
            let ga = grads[a];
            let na2 = ga[0] * ga[0] + ga[1] * ga[1] + ga[2] * ga[2];
            let ind_a = R::from_f64(((pa.to_f64() > 0.0) & (na2.to_f64() > 0.0)) as u8 as f64);
            let inv_na = R::from_f64(1.0) / na2.max(R::from_f64(f64::MIN_POSITIVE)).sqrt();
            let weight = h_l * (pa.max(zero) * inv_pl).sqrt();
            let dphidt = ((phi_new7[il][a] - phi19[d7(il)][a])
                + (phi_new7[ir][a] - phi19[d7(ir)][a]))
                * half
                * inv_dt;
            let n_dot = (ga[0] * gl[0] + ga[1] * gl[1] + ga[2] * gl[2]) * inv_na * inv_nl;
            let g_axis = ga[axis];
            for i in 0..k {
                let mu_f = (mu7[il][i] + mu7[ir][i]) * half;
                let cdiff = (model.c_eq(p, LIQ, i, t_face) - model.c_eq(p, a, i, t_face))
                    + mu_f * (model.inv2k_at(LIQ, i, t_face) - model.inv2k_at(a, i, t_face));
                let scale = ind_l * ind_a * pref * weight * dphidt * n_dot * g_axis * inv_na;
                // J_at enters the flux with a minus sign; fold into div.
                div[i] = div[i] - sign * scale * cdiff * inv_dx;
            }
        }
    }

    // Local terms.
    model.interp.eval(&phi19[d7(0)], &mut scratch.h_old);
    model.interp.eval(&phi_new7[0], &mut scratch.h_new);
    let mut out = vec![zero; k];
    let dtdt = R::from_f64(p.dtemp_dt());
    for i in 0..k {
        let mut chi = zero;
        let mut source = zero;
        let mut dcdt = zero;
        for a in 0..n {
            let inv2k = model.inv2k_at(a, i, t);
            chi = chi + scratch.h_old[a] * inv2k;
            let c_a = model.c_eq(p, a, i, t) + mu7[0][i] * inv2k;
            source = source - c_a * (scratch.h_new[a] - scratch.h_old[a]) * inv_dt;
            dcdt = dcdt + scratch.h_old[a] * R::from_f64(model.dc_dt[a * k + i]);
        }
        let drift = zero - dcdt * dtdt;
        out[i] = mu7[0][i] + R::from_f64(p.dt) * (div[i] + source + drift) / chi;
    }
    out
}

/// D3C7 stencil id → index into the `phi19` layout.
#[inline(always)]
pub fn d7(id: usize) -> usize {
    id
}

/// Index of the diagonal neighbor of D3C7 cell `base` shifted ±1 along
/// `axis` inside the `phi19` layout produced by [`gather19`].
#[inline(always)]
pub fn d19(base: usize, axis: usize, positive: bool) -> usize {
    // Layout: 0..7 = D3C7 (c, -x, +x, -y, +y, -z, +z);
    // 7.. = for each D3C7 neighbor 1..7, its ± shifts along the two
    // transverse axes, in a fixed order; see `gather19`.
    debug_assert!(base <= 6);
    if base == 0 {
        // Center shifted along axis = one of the D3C7 neighbors.
        return 1 + 2 * axis + positive as usize;
    }
    let nb_axis = (base - 1) / 2;
    debug_assert_ne!(nb_axis, axis, "shift along the neighbor's own axis");
    // Transverse slot: each neighbor has 4 diagonal entries (2 axes × ±).
    let (e1, e2) = trans_axes(nb_axis);
    debug_assert!(axis == e1 || axis == e2);
    let base_slot = if axis == e1 { 0 } else { 2 };
    7 + (base - 1) * 4 + base_slot + positive as usize
}

/// The two transverse axes of `axis`.
#[inline(always)]
pub fn trans_axes(axis: usize) -> (usize, usize) {
    match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

/// Number of entries in the `phi19` gather layout (7 + 6×4 = 31 slots;
/// diagonal cells are stored once per referencing neighbor for simplicity —
/// the *distinct* cells form the D3C19 stencil).
pub const GATHER19_LEN: usize = 31;

/// Gather the φ values needed by [`ref_mu_cell`] around linear index `i`.
pub fn gather19<R: Real>(
    comps: &[&[f64]; N_PHASES],
    i: usize,
    sy: usize,
    sz: usize,
    out: &mut Vec<Vec<R>>,
) {
    let stride = [1usize, sy, sz];
    let off = |id: usize| -> isize {
        match id {
            0 => 0,
            1 => -1,
            2 => 1,
            3 => -(sy as isize),
            4 => sy as isize,
            5 => -(sz as isize),
            6 => sz as isize,
            _ => unreachable!(),
        }
    };
    out.clear();
    for id in 0..7 {
        let j = (i as isize + off(id)) as usize;
        out.push((0..N_PHASES).map(|a| R::from_f64(comps[a][j])).collect());
    }
    for id in 1..7 {
        let nb_axis = (id - 1) / 2;
        let (e1, e2) = trans_axes(nb_axis);
        for axis in [e1, e2] {
            for positive in [false, true] {
                let d = stride[axis] as isize * if positive { 1 } else { -1 };
                let j = (i as isize + off(id) + d) as usize;
                out.push((0..N_PHASES).map(|a| R::from_f64(comps[a][j])).collect());
            }
        }
    }
    debug_assert_eq!(out.len(), GATHER19_LEN);
}

/// Reference φ-sweep (Algorithm 1, line 1) in the general-purpose style.
pub fn phi_sweep_reference(params: &ModelParams, state: &mut BlockState, time: f64) {
    let (z0, z1) = state.dims.interior_z_range();
    phi_sweep_reference_range(params, state, time, z0, z1);
}

/// Range-restricted reference φ-sweep for z-slab work-sharing (the plain
/// triple loop has no cross-slice state, so any sub-range is exact).
pub fn phi_sweep_reference_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    z0: usize,
    z1: usize,
) {
    let model = GeneralModel::<f64>::from_params(params);
    let dims = state.dims;
    let g = dims.ghost;
    debug_assert!(g <= z0 && z0 <= z1 && z1 <= g + dims.nz);
    let (sy, sz) = (dims.sy(), dims.sz());
    let origin_z = state.origin[2] as f64 - g as f64;
    let BlockState {
        phi_src,
        mu_src,
        phi_dst,
        ..
    } = state;
    let ps = phi_src.comps();
    let ms = mu_src.comps();
    let pd = phi_dst.comps_mut();
    let mut scratch = Scratch::<f64>::new(model.n);
    let mut stencil: [Vec<f64>; 7] = core::array::from_fn(|_| vec![0.0; model.n]);
    let mut mu = vec![0.0; model.k];

    for z in z0..z1 {
        for y in g..g + dims.ny {
            for x in g..g + dims.nx {
                let i = dims.idx(x, y, z);
                let offs: [isize; 7] = [
                    0,
                    -1,
                    1,
                    -(sy as isize),
                    sy as isize,
                    -(sz as isize),
                    sz as isize,
                ];
                for (s, o) in stencil.iter_mut().zip(offs) {
                    let j = (i as isize + o) as usize;
                    for a in 0..model.n {
                        s[a] = ps[a][j];
                    }
                }
                for c in 0..model.k {
                    mu[c] = ms[c][i];
                }
                let t = params.temperature(origin_z + z as f64, time);
                ref_phi_cell(&model, params, &stencil, &mu, t, &mut scratch);
                for a in 0..model.n {
                    pd[a][i] = scratch.out[a];
                }
            }
        }
    }
}

/// Reference µ-sweep (Algorithm 1, line 4) in the general-purpose style.
///
/// Only [`MuPart::Full`] is provided: the general code predates the
/// communication-hiding split (Sec. 3.3).
pub fn mu_sweep_reference(params: &ModelParams, state: &mut BlockState, time: f64, part: MuPart) {
    let (z0, z1) = state.dims.interior_z_range();
    mu_sweep_reference_range(params, state, time, part, z0, z1);
}

/// Range-restricted reference µ-sweep for z-slab work-sharing.
pub fn mu_sweep_reference_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    part: MuPart,
    z0: usize,
    z1: usize,
) {
    assert_eq!(
        part,
        MuPart::Full,
        "the general-purpose kernel has no split µ-sweep"
    );
    let model = GeneralModel::<f64>::from_params(params);
    let dims = state.dims;
    let g = dims.ghost;
    debug_assert!(g <= z0 && z0 <= z1 && z1 <= g + dims.nz);
    let (sy, sz) = (dims.sy(), dims.sz());
    let origin_z = state.origin[2] as f64 - g as f64;
    let BlockState {
        phi_src,
        phi_dst,
        mu_src,
        mu_dst,
        ..
    } = state;
    let ps = phi_src.comps();
    let pd = phi_dst.comps();
    let ms = mu_src.comps();
    let md = mu_dst.comps_mut();
    let mut scratch = Scratch::<f64>::new(model.n);
    let mut phi19: Vec<Vec<f64>> = Vec::new();
    let mut phi_new7: [Vec<f64>; 7] = core::array::from_fn(|_| vec![0.0; model.n]);
    let mut mu7: [Vec<f64>; 7] = core::array::from_fn(|_| vec![0.0; model.k]);

    for z in z0..z1 {
        let t = params.temperature(origin_z + z as f64, time);
        let t_zl = 0.5 * (t + params.temperature(origin_z + z as f64 - 1.0, time));
        let t_zh = 0.5 * (t + params.temperature(origin_z + z as f64 + 1.0, time));
        for y in g..g + dims.ny {
            for x in g..g + dims.nx {
                let i = dims.idx(x, y, z);
                gather19(&ps, i, sy, sz, &mut phi19);
                let offs: [isize; 7] = [
                    0,
                    -1,
                    1,
                    -(sy as isize),
                    sy as isize,
                    -(sz as isize),
                    sz as isize,
                ];
                for (s, o) in phi_new7.iter_mut().zip(offs) {
                    let j = (i as isize + o) as usize;
                    for a in 0..model.n {
                        s[a] = pd[a][j];
                    }
                }
                for (s, o) in mu7.iter_mut().zip(offs) {
                    let j = (i as isize + o) as usize;
                    for c in 0..model.k {
                        s[c] = ms[c][j];
                    }
                }
                let out = ref_mu_cell(
                    &model,
                    params,
                    &phi19,
                    &phi_new7,
                    &mu7,
                    t,
                    t_zl,
                    t_zh,
                    &mut scratch,
                );
                for c in 0..model.k {
                    md[c][i] = out[c];
                }
            }
        }
    }
}
