//! Explicitly vectorized µ-kernel, four cells at a time (ladder rung 2+).
//!
//! "While this technique is the only possible one for the µ-kernel" — the
//! µ-update has no natural per-cell vector structure, so the innermost loop
//! is unrolled over four consecutive x-cells: every field access becomes a
//! contiguous (SoA) vector load and all face quantities are evaluated for
//! four faces at once.
//!
//! Staggered buffering works on vectors too: the x-low faces of a group are
//! the lane-shifted x-high faces (with a scalar carry across groups), and
//! the y/z face fluxes are buffered per group exactly like Fig. 3.
//! Shortcuts can only trigger when the condition holds for **all four
//! cells** of a group (the four-cell limitation the paper measures in
//! Fig. 5's discussion).
//!
//! The kernel is generic over the ISA backend `V:`[`SimdF64x4`]; see
//! [`super::simd_phi`] for the instantiation scheme.

use crate::kernels::scalar_mu::SweepCtx;
use crate::kernels::simd_common::eq_mask;
use crate::kernels::{get2, get4, MuPart};
use crate::model::{mu_cell_update, phase_change_source, susceptibility, temp_drift};
use crate::params::ModelParams;
use crate::state::BlockState;
use crate::temperature::{SliceCtx, SliceTable};
use crate::{LIQ, N_COMP, N_PHASES};
use eutectica_simd::{F64x4, SimdF64x4, SimdMask4};

/// Entry point (compile-time default backend).
pub fn mu_sweep_fourcell(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    part: MuPart,
    tz: bool,
    stag: bool,
    shortcuts: bool,
) {
    let (z0, z1) = state.dims.interior_z_range();
    mu_sweep_fourcell_range(params, state, time, part, tz, stag, shortcuts, z0, z1);
}

/// Range-restricted entry point for z-slab work-sharing (see
/// [`crate::kernels::scalar_phi::phi_sweep_scalar_range`] for the
/// coordinate convention and the bit-exactness argument).
#[allow(clippy::too_many_arguments)]
pub fn mu_sweep_fourcell_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    part: MuPart,
    tz: bool,
    stag: bool,
    shortcuts: bool,
    z0: usize,
    z1: usize,
) {
    mu_sweep_fourcell_range_v::<F64x4>(params, state, time, part, tz, stag, shortcuts, z0, z1);
}

/// Backend-generic four-cell µ range sweep; instantiated per ISA by the
/// runtime dispatcher in [`super`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn mu_sweep_fourcell_range_v<V: SimdF64x4>(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    part: MuPart,
    tz: bool,
    stag: bool,
    shortcuts: bool,
    z0: usize,
    z1: usize,
) {
    match (tz, stag, shortcuts) {
        (false, false, false) => sweep::<V, false, false, false>(params, state, time, part, z0, z1),
        (false, false, true) => sweep::<V, false, false, true>(params, state, time, part, z0, z1),
        (false, true, false) => sweep::<V, false, true, false>(params, state, time, part, z0, z1),
        (false, true, true) => sweep::<V, false, true, true>(params, state, time, part, z0, z1),
        (true, false, false) => sweep::<V, true, false, false>(params, state, time, part, z0, z1),
        (true, false, true) => sweep::<V, true, false, true>(params, state, time, part, z0, z1),
        (true, true, false) => sweep::<V, true, true, false>(params, state, time, part, z0, z1),
        (true, true, true) => sweep::<V, true, true, true>(params, state, time, part, z0, z1),
    }
}

/// `[carry, v0, v1, v2]` — slide a face-flux vector one lane to reuse the
/// overlapping x-faces of the previous group.
#[inline(always)]
fn shift_in<V: SimdF64x4>(carry: f64, v: V) -> V {
    v.permute::<3, 0, 1, 2>().replace(0, carry)
}

struct VCtx<'a, V: SimdF64x4> {
    #[allow(dead_code)]
    params: &'a ModelParams,
    inv_dx: V,
    inv_dt: V,
    dc_dt: [[f64; N_COMP]; N_PHASES],
    atc_pref: f64,
    sy: usize,
    sz: usize,
    with_grad: bool,
    with_jat: bool,
}

impl<V: SimdF64x4> VCtx<'_, V> {
    #[inline(always)]
    fn trans(&self, axis: usize) -> (usize, usize) {
        match axis {
            0 => (self.sy, self.sz),
            1 => (1, self.sz),
            _ => (1, self.sy),
        }
    }

    /// Combined face flux `M∇µ − J_at` for the four faces between cell
    /// groups starting at `il` and `ir` (ir = il + stride(axis)).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn face_flux<const SC: bool>(
        &self,
        ps: &[&[f64]; N_PHASES],
        pd: &[&[f64]; N_PHASES],
        ms: &[&[f64]; N_COMP],
        ctx_face: &SliceCtx,
        il: usize,
        ir: usize,
        axis: usize,
    ) -> [V; N_COMP] {
        let half = V::splat(0.5);
        let zero = V::zero();
        let phi_l: [V; N_PHASES] = core::array::from_fn(|a| V::load(ps[a], il));
        let phi_r: [V; N_PHASES] = core::array::from_fn(|a| V::load(ps[a], ir));
        let mu_l = [V::load(ms[0], il), V::load(ms[1], il)];
        let mu_r = [V::load(ms[0], ir), V::load(ms[1], ir)];
        let mut flux = [zero; N_COMP];
        if self.with_grad {
            for i in 0..N_COMP {
                let mut m = zero;
                for a in 0..N_PHASES {
                    m += (phi_l[a] + phi_r[a]) * half * V::splat(ctx_face.mob[a][i]);
                }
                flux[i] = m * (mu_r[i] - mu_l[i]) * self.inv_dx;
            }
        }
        if self.with_jat {
            let pl = (phi_l[LIQ] + phi_r[LIQ]) * half;
            if SC && !pl.gt(zero).any() {
                // Shortcut: no liquid at any of the four faces.
                return flux;
            }
            let gl = self.face_gradient(ps, il, ir, axis, LIQ);
            let nl2 = gl[0] * gl[0] + gl[1] * gl[1] + gl[2] * gl[2];
            if SC && !nl2.gt(zero).any() {
                // Shortcut: bulk liquid at all four faces.
                return flux;
            }
            let minpos = V::splat(f64::MIN_POSITIVE);
            let one = V::splat(1.0);
            let ind_l = pl.gt(zero).and(nl2.gt(zero));
            let inv_nl = one / nl2.max(minpos).sqrt();
            let inv_pl = one / pl.max(minpos);
            let pf: [V; N_PHASES] = core::array::from_fn(|a| (phi_l[a] + phi_r[a]) * half);
            let mut s_f = zero;
            for p in &pf {
                s_f += *p * *p;
            }
            let h_l = pl * pl / s_f;
            let mu_f = [(mu_l[0] + mu_r[0]) * half, (mu_l[1] + mu_r[1]) * half];
            let pref = V::splat(self.atc_pref);
            for a in 0..LIQ {
                let pa = pf[a];
                let ga = self.face_gradient(ps, il, ir, axis, a);
                let na2 = ga[0] * ga[0] + ga[1] * ga[1] + ga[2] * ga[2];
                let ind = ind_l.and(pa.gt(zero)).and(na2.gt(zero));
                let inv_na = one / na2.max(minpos).sqrt();
                let weight = h_l * (pa.max(zero) * inv_pl).sqrt();
                let dphidt = ((V::load(pd[a], il) - phi_l[a]) + (V::load(pd[a], ir) - phi_r[a]))
                    * half
                    * self.inv_dt;
                let n_dot = (ga[0] * gl[0] + ga[1] * gl[1] + ga[2] * gl[2]) * inv_na * inv_nl;
                let base = pref * weight * dphidt * n_dot * ga[axis] * inv_na;
                let base = ind.select(base, zero);
                for i in 0..N_COMP {
                    let cdiff = V::splat(ctx_face.c_eq[LIQ][i] - ctx_face.c_eq[a][i])
                        + mu_f[i] * V::splat(ctx_face.inv2k[LIQ][i] - ctx_face.inv2k[a][i]);
                    flux[i] -= base * cdiff;
                }
            }
        }
        flux
    }

    /// Face gradient of φ_a (lanes = the four faces).
    #[inline(always)]
    fn face_gradient(
        &self,
        ps: &[&[f64]; N_PHASES],
        il: usize,
        ir: usize,
        axis: usize,
        a: usize,
    ) -> [V; 3] {
        let (se1, se2) = self.trans(axis);
        let p = ps[a];
        let quarter = V::splat(0.25);
        let normal = (V::load(p, ir) - V::load(p, il)) * self.inv_dx;
        let t1 = quarter
            * self.inv_dx
            * ((V::load(p, il + se1) - V::load(p, il - se1))
                + (V::load(p, ir + se1) - V::load(p, ir - se1)));
        let t2 = quarter
            * self.inv_dx
            * ((V::load(p, il + se2) - V::load(p, il - se2))
                + (V::load(p, ir + se2) - V::load(p, ir - se2)));
        match axis {
            0 => [normal, t1, t2],
            1 => [t1, normal, t2],
            _ => [t1, t2, normal],
        }
    }
}

#[allow(clippy::too_many_lines)]
#[inline(always)]
fn sweep<V: SimdF64x4, const TZ: bool, const STAG: bool, const SC: bool>(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    part: MuPart,
    z0: usize,
    z1: usize,
) {
    let dims = state.dims;
    let g = dims.ghost;
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    debug_assert!(g <= z0 && z0 <= z1 && z1 <= g + nz);
    let (sy, sz) = (dims.sy(), dims.sz());
    let origin_z = state.origin[2] as isize;
    let dt = params.dt;
    let dtv = V::splat(dt);

    let cx = VCtx::<V> {
        params,
        inv_dx: V::splat(1.0 / params.dx),
        inv_dt: V::splat(1.0 / params.dt),
        dc_dt: params.dc_dt_coeffs(),
        atc_pref: params.atc_prefactor(),
        sy,
        sz,
        with_grad: part != MuPart::NeighborOnly,
        with_jat: params.enable_atc && part != MuPart::LocalOnly,
    };
    // Scalar context for the remainder cells (nx not a multiple of 4).
    let scx = SweepCtx::new(params, sy, sz, part);
    let with_local_terms = part != MuPart::NeighborOnly;
    let accumulate = part == MuPart::NeighborOnly;

    let table = if TZ {
        Some(SliceTable::build(params, origin_z, dims.tz(), g, time))
    } else {
        None
    };
    // black_box: see scalar_phi.rs.
    let temp_of = |z: usize| -> f64 {
        let gz = origin_z as f64 + z as f64 - g as f64;
        if TZ {
            params.temperature(gz, time)
        } else {
            std::hint::black_box(params.temperature(gz, time))
        }
    };
    let zface_ctx = |z: usize| SliceCtx::at(params, 0.5 * (temp_of(z) + temp_of(z + 1)));

    let BlockState {
        phi_src,
        phi_dst,
        mu_src,
        mu_dst,
        ..
    } = state;
    let ps = phi_src.comps();
    let pd = phi_dst.comps();
    let ms = mu_src.comps();
    let md = mu_dst.comps_mut();

    let ngx = nx / 4; // vector groups per row
    let mut zbuf = vec![[V::zero(); N_COMP]; if STAG { ngx * ny } else { 0 }];
    let mut ybuf = vec![[V::zero(); N_COMP]; if STAG { ngx } else { 0 }];

    if STAG && z0 < z1 {
        let ctx_zlow = if TZ {
            table.as_ref().unwrap().zface[z0 - 1]
        } else {
            zface_ctx(z0 - 1)
        };
        for y in 0..ny {
            for gx in 0..ngx {
                let i = dims.idx(4 * gx + g, y + g, z0);
                zbuf[y * ngx + gx] = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx_zlow, i - sz, i, 2);
            }
        }
    }

    // Per-phase constant splats for the temperature-independent slopes.
    let dcdt_v: [[V; N_COMP]; N_PHASES] =
        core::array::from_fn(|a| core::array::from_fn(|i| V::splat(cx.dc_dt[a][i])));
    let dtdt = V::splat(params.dtemp_dt());

    for z in z0..z1 {
        let (ctx_z, ctx_zf_low, ctx_zf_high) = if TZ {
            let t = table.as_ref().unwrap();
            (t.cell[z], t.zface[z - 1], t.zface[z])
        } else {
            (
                SliceCtx::at(params, 0.0),
                SliceCtx::at(params, 0.0),
                SliceCtx::at(params, 0.0),
            )
        };
        if STAG {
            let ctx_yf = if TZ {
                ctx_z
            } else {
                SliceCtx::at(params, temp_of(z))
            };
            for gx in 0..ngx {
                let i = dims.idx(4 * gx + g, g, z);
                ybuf[gx] = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx_yf, i - sy, i, 1);
            }
        }
        for y in g..g + ny {
            let row = dims.idx(g, y, z);
            // Row-start x carry: lane 0 of the explicit low-face evaluation.
            let mut carry = [0.0f64; N_COMP];
            if STAG && ngx > 0 {
                let ctx_xf = if TZ {
                    ctx_z
                } else {
                    SliceCtx::at(params, temp_of(z))
                };
                let lo = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx_xf, row - 1, row, 0);
                carry = [lo[0].extract(0), lo[1].extract(0)];
            }
            for gx in 0..ngx {
                let i = row + 4 * gx;
                let (ctx, czl, czh) = if TZ {
                    (ctx_z, ctx_zf_low, ctx_zf_high)
                } else {
                    (
                        SliceCtx::at(params, temp_of(z)),
                        zface_ctx(z - 1),
                        zface_ctx(z),
                    )
                };

                let f_xh = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i, i + 1, 0);
                let (f_xl, f_yl, f_zl) = if STAG {
                    let xl = [shift_in(carry[0], f_xh[0]), shift_in(carry[1], f_xh[1])];
                    carry = [f_xh[0].extract(3), f_xh[1].extract(3)];
                    (xl, ybuf[gx], zbuf[(y - g) * ngx + gx])
                } else {
                    (
                        cx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i - 1, i, 0),
                        cx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i - sy, i, 1),
                        cx.face_flux::<SC>(&ps, &pd, &ms, &czl, i - sz, i, 2),
                    )
                };
                let f_yh = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i, i + sy, 1);
                let f_zh = cx.face_flux::<SC>(&ps, &pd, &ms, &czh, i, i + sz, 2);
                if STAG {
                    ybuf[gx] = f_yh;
                    zbuf[(y - g) * ngx + gx] = f_zh;
                }

                let div = [
                    (f_xh[0] - f_xl[0] + f_yh[0] - f_yl[0] + f_zh[0] - f_zl[0]) * cx.inv_dx,
                    (f_xh[1] - f_xl[1] + f_yh[1] - f_yl[1] + f_zh[1] - f_zl[1]) * cx.inv_dx,
                ];

                // Local terms, lanes = cells.
                let pc: [V; N_PHASES] = core::array::from_fn(|a| V::load(ps[a], i));
                let mut s_old = V::zero();
                for p in &pc {
                    s_old = p.mul_add(*p, s_old);
                }
                let inv_s_old = V::splat(1.0) / s_old;
                let h_old: [V; N_PHASES] = core::array::from_fn(|a| pc[a] * pc[a] * inv_s_old);
                let chi: [V; N_COMP] = core::array::from_fn(|i| {
                    let mut c = V::zero();
                    for a in 0..N_PHASES {
                        c = h_old[a].mul_add(V::splat(ctx.inv2k[a][i]), c);
                    }
                    c
                });

                if accumulate {
                    for i_c in 0..N_COMP {
                        let cur = V::load(md[i_c], i);
                        (cur + dtv * div[i_c] / chi[i_c]).store(md[i_c], i);
                    }
                    continue;
                }

                let mu = [V::load(ms[0], i), V::load(ms[1], i)];
                let mut source = [V::zero(); N_COMP];
                let mut drift = [V::zero(); N_COMP];
                if with_local_terms {
                    let pn: [V; N_PHASES] = core::array::from_fn(|a| V::load(pd[a], i));
                    let unchanged = SC
                        && eq_mask(pn[0], pc[0])
                            .and(eq_mask(pn[1], pc[1]))
                            .and(eq_mask(pn[2], pc[2]))
                            .and(eq_mask(pn[3], pc[3]))
                            .all();
                    if !unchanged {
                        let mut s_new = V::zero();
                        for p in &pn {
                            s_new = p.mul_add(*p, s_new);
                        }
                        let inv_s_new = V::splat(1.0) / s_new;
                        for a in 0..N_PHASES {
                            let h_new = pn[a] * pn[a] * inv_s_new;
                            let dh = (h_new - h_old[a]) * cx.inv_dt;
                            for i_c in 0..N_COMP {
                                let c_a = V::splat(ctx.c_eq[a][i_c])
                                    + mu[i_c] * V::splat(ctx.inv2k[a][i_c]);
                                source[i_c] -= c_a * dh;
                            }
                        }
                    }
                    for i_c in 0..N_COMP {
                        let mut dcdt = V::zero();
                        for a in 0..N_PHASES {
                            dcdt = h_old[a].mul_add(dcdt_v[a][i_c], dcdt);
                        }
                        drift[i_c] = -(dcdt * dtdt);
                    }
                }

                for i_c in 0..N_COMP {
                    let out = mu[i_c] + dtv * (div[i_c] + source[i_c] + drift[i_c]) / chi[i_c];
                    out.store(md[i_c], i);
                }
            }

            // Scalar remainder (right edge of the row).
            for x in (g + 4 * ngx)..(g + nx) {
                let i = dims.idx(x, y, z);
                let (ctx, czl, czh) = if TZ {
                    (ctx_z, ctx_zf_low, ctx_zf_high)
                } else {
                    (
                        SliceCtx::at(params, temp_of(z)),
                        zface_ctx(z - 1),
                        zface_ctx(z),
                    )
                };
                let f_xl = scx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i - 1, i, 0);
                let f_xh = scx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i, i + 1, 0);
                let f_yl = scx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i - sy, i, 1);
                let f_yh = scx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i, i + sy, 1);
                let f_zl = scx.face_flux::<SC>(&ps, &pd, &ms, &czl, i - sz, i, 2);
                let f_zh = scx.face_flux::<SC>(&ps, &pd, &ms, &czh, i, i + sz, 2);
                let div = [
                    (f_xh[0] - f_xl[0] + f_yh[0] - f_yl[0] + f_zh[0] - f_zl[0]) / params.dx,
                    (f_xh[1] - f_xl[1] + f_yh[1] - f_yl[1] + f_zh[1] - f_zl[1]) / params.dx,
                ];
                let phi_old = get4(&ps, i);
                let chi = susceptibility(&ctx, phi_old);
                if accumulate {
                    md[0][i] += dt * div[0] / chi[0];
                    md[1][i] += dt * div[1] / chi[1];
                    continue;
                }
                let mu = get2(&ms, i);
                let (source, drift) = if with_local_terms {
                    let phi_new = get4(&pd, i);
                    let src = phase_change_source(&ctx, phi_old, phi_new, mu, 1.0 / params.dt);
                    (src, temp_drift(&cx.dc_dt, phi_old, params.dtemp_dt()))
                } else {
                    ([0.0; N_COMP], [0.0; N_COMP])
                };
                let out = mu_cell_update(mu, div, source, drift, chi, dt);
                md[0][i] = out[0];
                md[1][i] = out[1];
            }
        }
    }
}
