//! Compute-kernel variants: the paper's full optimization ladder.
//!
//! Fig. 6 of the paper builds the φ- and µ-kernels up through six rungs;
//! [`OptLevel`] reproduces them:
//!
//! | rung | paper label | here |
//! |------|-------------|------|
//! | 0 | "general purpose C code" | [`PhiVariant::Reference`] / [`MuVariant::Reference`]: runtime-N/K code with per-cell indirect calls |
//! | 1 | "basic waLBerla implementation" | specialized scalar N=4/K=2 kernels |
//! | 2 | "with SIMD intrinsics" | explicit vectorization: cellwise φ (4 phases = 4 lanes), four-cell µ |
//! | 3 | "with T(z) optimization" | per-slice precomputation of temperature-dependent terms |
//! | 4 | "with staggered buffer" | staggered face values buffered and reused (halves face work) |
//! | 5 | "with shortcuts" | region-dependent term skipping (bulk / pure / solid checks) |
//!
//! Fig. 5 additionally compares three φ vectorization strategies at rung ≥ 2:
//! [`PhiVariant::SimdCellwise`] (with and without shortcuts) and
//! [`PhiVariant::SimdFourCell`].
//!
//! All variants implement the identical discretization in
//! [`crate::model`]; `tests/kernel_equivalence.rs` pins them against each
//! other ("a regularly running test suite checks all kernel versions for
//! equivalence").
//!
//! The explicitly vectorized variants are additionally generic over the ISA
//! backend and dispatched at **runtime**: [`SimdIsa`] selects between the
//! AVX2+FMA instantiation (gated on `is_x86_feature_detected!`, so a build
//! without `-C target-cpu=native` still runs real AVX2 code) and the
//! portable instantiation. Both produce bit-identical results, so the
//! selection — including the autotuner's mid-run switches — never changes
//! physics. [`backend`] packages the whole ladder behind an object-safe
//! [`backend::KernelBackend`] trait with a named registry.

pub mod backend;
pub mod reference;
pub mod scalar_mu;
pub mod scalar_phi;
pub mod simd_common;
pub mod simd_mu;
pub mod simd_phi;

use crate::params::ModelParams;
use crate::state::BlockState;

/// φ-kernel implementation selector.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PhiVariant {
    /// General-purpose runtime-N code with per-cell dynamic dispatch.
    Reference,
    /// Specialized scalar N=4 kernel.
    Scalar,
    /// Explicit SIMD, one cell at a time: the 4 phases fill the 4 lanes.
    /// Allows branching per cell (the paper's fastest strategy).
    SimdCellwise,
    /// Explicit SIMD, four cells at a time (lanes = cells). Can only take
    /// shortcuts if the condition holds for all four cells.
    SimdFourCell,
}

/// µ-kernel implementation selector.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MuVariant {
    /// General-purpose runtime-N/K code.
    Reference,
    /// Specialized scalar kernel.
    Scalar,
    /// Explicit SIMD, four cells at a time (the only viable strategy for
    /// the µ-kernel per Sec. 5.1.1).
    SimdFourCell,
}

/// Which part of the split µ-sweep to run (Algorithm 2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MuPart {
    /// Unsplit update (Algorithm 1).
    Full,
    /// Local-φ-dependency part: gradient flux + source + drift (line 6).
    LocalOnly,
    /// Neighbor-φ-dependency part: add −∇·J_at (line 8).
    NeighborOnly,
}

/// ISA backend selector for the explicitly vectorized kernel variants.
///
/// Resolution happens at **runtime** (`is_x86_feature_detected!`), not at
/// compile time, so a binary built without `-C target-cpu=native` still
/// selects the AVX2+FMA instantiation on a capable host. The two
/// instantiations are bit-identical (the `eutectica-simd` backends assert
/// bit-exact semantics op-by-op), so the choice only affects speed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SimdIsa {
    /// Best ISA selectable at runtime: AVX2+FMA when detected, else the
    /// portable backend.
    #[default]
    Auto,
    /// Portable backend (scalar emulation of the 4-lane ops).
    Portable,
    /// AVX2+FMA backend. Falls back to the (bit-identical) portable
    /// instantiation when the host lacks the features or `force-scalar` is
    /// enabled; the [`backend`] registry reports a typed
    /// [`backend::BackendError::Unavailable`] instead of falling back.
    Avx2,
}

impl SimdIsa {
    /// Whether this selection resolves to the AVX2+FMA instantiation on
    /// this host (always `false` under the `force-scalar` feature).
    #[inline]
    pub fn use_avx2(self) -> bool {
        self != SimdIsa::Portable && eutectica_simd::avx2_available()
    }

    /// The resolved backend name (`"avx2"` or `"portable"`).
    pub fn resolved_name(self) -> &'static str {
        if self.use_avx2() {
            "avx2"
        } else {
            "portable"
        }
    }
}

/// Full kernel configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// φ-kernel implementation.
    pub phi: PhiVariant,
    /// µ-kernel implementation.
    pub mu: MuVariant,
    /// ISA instantiation for the explicit-SIMD variants (ignored by the
    /// reference and scalar variants).
    pub isa: SimdIsa,
    /// Precompute temperature-dependent terms once per z-slice.
    pub tz_precompute: bool,
    /// Buffer staggered face values and reuse them (3 instead of 6 face
    /// evaluations per cell).
    pub staggered_buffer: bool,
    /// Region-dependent shortcuts (bulk skip, pure-cell driving skip,
    /// solid/liquid J_at skip).
    pub shortcuts: bool,
}

/// The cumulative optimization rungs of Fig. 6.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Rung 0: general-purpose reference code.
    Reference,
    /// Rung 1: basic specialized implementation.
    Basic,
    /// Rung 2: + explicit SIMD vectorization.
    Simd,
    /// Rung 3: + T(z) per-slice precomputation.
    SimdTz,
    /// Rung 4: + staggered buffer.
    SimdTzBuf,
    /// Rung 5: + shortcuts.
    SimdTzBufShortcuts,
}

impl OptLevel {
    /// All rungs in ladder order.
    pub const LADDER: [OptLevel; 6] = [
        OptLevel::Reference,
        OptLevel::Basic,
        OptLevel::Simd,
        OptLevel::SimdTz,
        OptLevel::SimdTzBuf,
        OptLevel::SimdTzBufShortcuts,
    ];

    /// The paper's label for this rung.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Reference => "general purpose code",
            OptLevel::Basic => "basic implementation",
            OptLevel::Simd => "with SIMD intrinsics",
            OptLevel::SimdTz => "with T(z) optimization",
            OptLevel::SimdTzBuf => "with staggered buffer",
            OptLevel::SimdTzBufShortcuts => "with shortcuts",
        }
    }

    /// The kernel configuration of this rung.
    pub fn config(self) -> KernelConfig {
        match self {
            OptLevel::Reference => KernelConfig {
                phi: PhiVariant::Reference,
                mu: MuVariant::Reference,
                isa: SimdIsa::Auto,
                tz_precompute: false,
                staggered_buffer: false,
                shortcuts: false,
            },
            OptLevel::Basic => KernelConfig {
                phi: PhiVariant::Scalar,
                mu: MuVariant::Scalar,
                isa: SimdIsa::Auto,
                tz_precompute: false,
                staggered_buffer: false,
                shortcuts: false,
            },
            OptLevel::Simd => KernelConfig {
                phi: PhiVariant::SimdCellwise,
                mu: MuVariant::SimdFourCell,
                isa: SimdIsa::Auto,
                tz_precompute: false,
                staggered_buffer: false,
                shortcuts: false,
            },
            OptLevel::SimdTz => KernelConfig {
                tz_precompute: true,
                ..OptLevel::Simd.config()
            },
            OptLevel::SimdTzBuf => KernelConfig {
                staggered_buffer: true,
                ..OptLevel::SimdTz.config()
            },
            OptLevel::SimdTzBufShortcuts => KernelConfig {
                shortcuts: true,
                ..OptLevel::SimdTzBuf.config()
            },
        }
    }
}

impl Default for KernelConfig {
    /// The production configuration: the fastest rung of the ladder.
    fn default() -> Self {
        OptLevel::SimdTzBufShortcuts.config()
    }
}

/// Run the φ-sweep over a block's interior with the selected variant:
/// `φ_dst ← φ-kernel(φ_src, µ_src)` (Algorithm 1, line 1).
pub fn phi_sweep(params: &ModelParams, state: &mut BlockState, time: f64, cfg: KernelConfig) {
    let (z0, z1) = state.dims.interior_z_range();
    phi_sweep_range(params, state, time, cfg, z0, z1);
}

/// Like [`phi_sweep`] restricted to the z-slices `z0..z1` (absolute,
/// ghost-inclusive coordinates with `g <= z0 <= z1 <= g + nz`). All
/// variants read only the source fields and write each `φ_dst` cell of the
/// slab exactly once, so a disjoint slab partition run in any order (or
/// concurrently) produces the full sweep's result bit-for-bit.
pub fn phi_sweep_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    cfg: KernelConfig,
    z0: usize,
    z1: usize,
) {
    match cfg.phi {
        PhiVariant::Reference => reference::phi_sweep_reference_range(params, state, time, z0, z1),
        PhiVariant::Scalar => scalar_phi::phi_sweep_scalar_range(
            params,
            state,
            time,
            cfg.tz_precompute,
            cfg.staggered_buffer,
            cfg.shortcuts,
            z0,
            z1,
        ),
        PhiVariant::SimdCellwise => {
            #[cfg(target_arch = "x86_64")]
            if cfg.isa.use_avx2() {
                // SAFETY: `use_avx2()` verified AVX2+FMA at runtime.
                unsafe {
                    avx2_entry::phi_cellwise(
                        params,
                        state,
                        time,
                        cfg.tz_precompute,
                        cfg.staggered_buffer,
                        cfg.shortcuts,
                        z0,
                        z1,
                    );
                }
                return;
            }
            simd_phi::phi_sweep_cellwise_range_v::<Portable>(
                params,
                state,
                time,
                cfg.tz_precompute,
                cfg.staggered_buffer,
                cfg.shortcuts,
                z0,
                z1,
            )
        }
        PhiVariant::SimdFourCell => {
            #[cfg(target_arch = "x86_64")]
            if cfg.isa.use_avx2() {
                // SAFETY: `use_avx2()` verified AVX2+FMA at runtime.
                unsafe {
                    avx2_entry::phi_fourcell(
                        params,
                        state,
                        time,
                        cfg.tz_precompute,
                        cfg.staggered_buffer,
                        cfg.shortcuts,
                        z0,
                        z1,
                    );
                }
                return;
            }
            simd_phi::phi_sweep_fourcell_range_v::<Portable>(
                params,
                state,
                time,
                cfg.tz_precompute,
                cfg.staggered_buffer,
                cfg.shortcuts,
                z0,
                z1,
            )
        }
    }
}

/// Run the µ-sweep over a block's interior with the selected variant:
/// `µ_dst ← µ-kernel(µ_src, φ_src, φ_dst)` (Algorithm 1, line 4).
pub fn mu_sweep(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    cfg: KernelConfig,
    part: MuPart,
) {
    let (z0, z1) = state.dims.interior_z_range();
    mu_sweep_range(params, state, time, cfg, part, z0, z1);
}

/// Like [`mu_sweep`] restricted to the z-slices `z0..z1` (see
/// [`phi_sweep_range`]). The [`MuPart::NeighborOnly`] accumulation reads
/// and writes only its own cell of `µ_dst`, so it is slab-safe too.
pub fn mu_sweep_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    cfg: KernelConfig,
    part: MuPart,
    z0: usize,
    z1: usize,
) {
    match cfg.mu {
        MuVariant::Reference => {
            reference::mu_sweep_reference_range(params, state, time, part, z0, z1)
        }
        MuVariant::Scalar => scalar_mu::mu_sweep_scalar_range(
            params,
            state,
            time,
            part,
            cfg.tz_precompute,
            cfg.staggered_buffer,
            cfg.shortcuts,
            z0,
            z1,
        ),
        MuVariant::SimdFourCell => {
            #[cfg(target_arch = "x86_64")]
            if cfg.isa.use_avx2() {
                // SAFETY: `use_avx2()` verified AVX2+FMA at runtime.
                unsafe {
                    avx2_entry::mu_fourcell(
                        params,
                        state,
                        time,
                        part,
                        cfg.tz_precompute,
                        cfg.staggered_buffer,
                        cfg.shortcuts,
                        z0,
                        z1,
                    );
                }
                return;
            }
            simd_mu::mu_sweep_fourcell_range_v::<Portable>(
                params,
                state,
                time,
                part,
                cfg.tz_precompute,
                cfg.staggered_buffer,
                cfg.shortcuts,
                z0,
                z1,
            )
        }
    }
}

/// The portable ISA instantiation: the scalar backend's 4-lane type, whose
/// semantics mirror the AVX2 backend bit-for-bit.
type Portable = eutectica_simd::scalar::F64x4;

/// Monomorphic AVX2+FMA instantiations of the vectorized kernels.
///
/// The `#[target_feature]` wrappers let the compiler generate real AVX2+FMA
/// code for the inlined kernels even when the crate itself is built without
/// those target features. This only works because the whole generic call
/// chain (`*_range_v` → const-dispatched kernel → vector helpers) is
/// `#[inline(always)]`: the feature attribute applies per LLVM function,
/// so any kernel left out-of-line would compile featureless and every
/// intrinsic inside it would degrade to an un-inlinable libcall (~20x
/// slower, measured). Calling one without checking
/// [`eutectica_simd::avx2_available`] first is undefined behavior, hence
/// the `unsafe` at the call sites.
#[cfg(target_arch = "x86_64")]
mod avx2_entry {
    use super::{simd_mu, simd_phi, ModelParams, MuPart};
    use crate::state::BlockState;
    use eutectica_simd::avx2::F64x4 as Avx2V;

    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn phi_cellwise(
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        tz: bool,
        stag: bool,
        sc: bool,
        z0: usize,
        z1: usize,
    ) {
        simd_phi::phi_sweep_cellwise_range_v::<Avx2V>(params, state, time, tz, stag, sc, z0, z1);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn phi_fourcell(
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        tz: bool,
        stag: bool,
        sc: bool,
        z0: usize,
        z1: usize,
    ) {
        simd_phi::phi_sweep_fourcell_range_v::<Avx2V>(params, state, time, tz, stag, sc, z0, z1);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn mu_fourcell(
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        part: MuPart,
        tz: bool,
        stag: bool,
        sc: bool,
        z0: usize,
        z1: usize,
    ) {
        simd_mu::mu_sweep_fourcell_range_v::<Avx2V>(
            params, state, time, part, tz, stag, sc, z0, z1,
        );
    }
}

/// Gather the 4 phase values of linear cell `i` from SoA component slices.
#[inline(always)]
pub(crate) fn get4(c: &[&[f64]; 4], i: usize) -> [f64; 4] {
    [c[0][i], c[1][i], c[2][i], c[3][i]]
}

/// Gather the 2 µ components of linear cell `i`.
#[inline(always)]
pub(crate) fn get2(c: &[&[f64]; 2], i: usize) -> [f64; 2] {
    [c[0][i], c[1][i]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let l = OptLevel::LADDER;
        assert_eq!(l[0].config().phi, PhiVariant::Reference);
        assert_eq!(l[1].config().phi, PhiVariant::Scalar);
        for rung in &l[2..] {
            assert_eq!(rung.config().phi, PhiVariant::SimdCellwise);
            assert_eq!(rung.config().mu, MuVariant::SimdFourCell);
        }
        assert!(!l[2].config().tz_precompute);
        assert!(l[3].config().tz_precompute && !l[3].config().staggered_buffer);
        assert!(l[4].config().staggered_buffer && !l[4].config().shortcuts);
        assert!(l[5].config().shortcuts);
        assert_eq!(KernelConfig::default(), l[5].config());
    }
}
