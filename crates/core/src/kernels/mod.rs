//! Compute-kernel variants: the paper's full optimization ladder.
//!
//! Fig. 6 of the paper builds the φ- and µ-kernels up through six rungs;
//! [`OptLevel`] reproduces them:
//!
//! | rung | paper label | here |
//! |------|-------------|------|
//! | 0 | "general purpose C code" | [`PhiVariant::Reference`] / [`MuVariant::Reference`]: runtime-N/K code with per-cell indirect calls |
//! | 1 | "basic waLBerla implementation" | specialized scalar N=4/K=2 kernels |
//! | 2 | "with SIMD intrinsics" | explicit vectorization: cellwise φ (4 phases = 4 lanes), four-cell µ |
//! | 3 | "with T(z) optimization" | per-slice precomputation of temperature-dependent terms |
//! | 4 | "with staggered buffer" | staggered face values buffered and reused (halves face work) |
//! | 5 | "with shortcuts" | region-dependent term skipping (bulk / pure / solid checks) |
//!
//! Fig. 5 additionally compares three φ vectorization strategies at rung ≥ 2:
//! [`PhiVariant::SimdCellwise`] (with and without shortcuts) and
//! [`PhiVariant::SimdFourCell`].
//!
//! All variants implement the identical discretization in
//! [`crate::model`]; `tests/kernel_equivalence.rs` pins them against each
//! other ("a regularly running test suite checks all kernel versions for
//! equivalence").

pub mod reference;
pub mod scalar_mu;
pub mod scalar_phi;
pub mod simd_common;
pub mod simd_mu;
pub mod simd_phi;

use crate::params::ModelParams;
use crate::state::BlockState;

/// φ-kernel implementation selector.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PhiVariant {
    /// General-purpose runtime-N code with per-cell dynamic dispatch.
    Reference,
    /// Specialized scalar N=4 kernel.
    Scalar,
    /// Explicit SIMD, one cell at a time: the 4 phases fill the 4 lanes.
    /// Allows branching per cell (the paper's fastest strategy).
    SimdCellwise,
    /// Explicit SIMD, four cells at a time (lanes = cells). Can only take
    /// shortcuts if the condition holds for all four cells.
    SimdFourCell,
}

/// µ-kernel implementation selector.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MuVariant {
    /// General-purpose runtime-N/K code.
    Reference,
    /// Specialized scalar kernel.
    Scalar,
    /// Explicit SIMD, four cells at a time (the only viable strategy for
    /// the µ-kernel per Sec. 5.1.1).
    SimdFourCell,
}

/// Which part of the split µ-sweep to run (Algorithm 2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MuPart {
    /// Unsplit update (Algorithm 1).
    Full,
    /// Local-φ-dependency part: gradient flux + source + drift (line 6).
    LocalOnly,
    /// Neighbor-φ-dependency part: add −∇·J_at (line 8).
    NeighborOnly,
}

/// Full kernel configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// φ-kernel implementation.
    pub phi: PhiVariant,
    /// µ-kernel implementation.
    pub mu: MuVariant,
    /// Precompute temperature-dependent terms once per z-slice.
    pub tz_precompute: bool,
    /// Buffer staggered face values and reuse them (3 instead of 6 face
    /// evaluations per cell).
    pub staggered_buffer: bool,
    /// Region-dependent shortcuts (bulk skip, pure-cell driving skip,
    /// solid/liquid J_at skip).
    pub shortcuts: bool,
}

/// The cumulative optimization rungs of Fig. 6.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Rung 0: general-purpose reference code.
    Reference,
    /// Rung 1: basic specialized implementation.
    Basic,
    /// Rung 2: + explicit SIMD vectorization.
    Simd,
    /// Rung 3: + T(z) per-slice precomputation.
    SimdTz,
    /// Rung 4: + staggered buffer.
    SimdTzBuf,
    /// Rung 5: + shortcuts.
    SimdTzBufShortcuts,
}

impl OptLevel {
    /// All rungs in ladder order.
    pub const LADDER: [OptLevel; 6] = [
        OptLevel::Reference,
        OptLevel::Basic,
        OptLevel::Simd,
        OptLevel::SimdTz,
        OptLevel::SimdTzBuf,
        OptLevel::SimdTzBufShortcuts,
    ];

    /// The paper's label for this rung.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Reference => "general purpose code",
            OptLevel::Basic => "basic implementation",
            OptLevel::Simd => "with SIMD intrinsics",
            OptLevel::SimdTz => "with T(z) optimization",
            OptLevel::SimdTzBuf => "with staggered buffer",
            OptLevel::SimdTzBufShortcuts => "with shortcuts",
        }
    }

    /// The kernel configuration of this rung.
    pub fn config(self) -> KernelConfig {
        match self {
            OptLevel::Reference => KernelConfig {
                phi: PhiVariant::Reference,
                mu: MuVariant::Reference,
                tz_precompute: false,
                staggered_buffer: false,
                shortcuts: false,
            },
            OptLevel::Basic => KernelConfig {
                phi: PhiVariant::Scalar,
                mu: MuVariant::Scalar,
                tz_precompute: false,
                staggered_buffer: false,
                shortcuts: false,
            },
            OptLevel::Simd => KernelConfig {
                phi: PhiVariant::SimdCellwise,
                mu: MuVariant::SimdFourCell,
                tz_precompute: false,
                staggered_buffer: false,
                shortcuts: false,
            },
            OptLevel::SimdTz => KernelConfig {
                tz_precompute: true,
                ..OptLevel::Simd.config()
            },
            OptLevel::SimdTzBuf => KernelConfig {
                staggered_buffer: true,
                ..OptLevel::SimdTz.config()
            },
            OptLevel::SimdTzBufShortcuts => KernelConfig {
                shortcuts: true,
                ..OptLevel::SimdTzBuf.config()
            },
        }
    }
}

impl Default for KernelConfig {
    /// The production configuration: the fastest rung of the ladder.
    fn default() -> Self {
        OptLevel::SimdTzBufShortcuts.config()
    }
}

/// Run the φ-sweep over a block's interior with the selected variant:
/// `φ_dst ← φ-kernel(φ_src, µ_src)` (Algorithm 1, line 1).
pub fn phi_sweep(params: &ModelParams, state: &mut BlockState, time: f64, cfg: KernelConfig) {
    let (z0, z1) = state.dims.interior_z_range();
    phi_sweep_range(params, state, time, cfg, z0, z1);
}

/// Like [`phi_sweep`] restricted to the z-slices `z0..z1` (absolute,
/// ghost-inclusive coordinates with `g <= z0 <= z1 <= g + nz`). All
/// variants read only the source fields and write each `φ_dst` cell of the
/// slab exactly once, so a disjoint slab partition run in any order (or
/// concurrently) produces the full sweep's result bit-for-bit.
pub fn phi_sweep_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    cfg: KernelConfig,
    z0: usize,
    z1: usize,
) {
    match cfg.phi {
        PhiVariant::Reference => reference::phi_sweep_reference_range(params, state, time, z0, z1),
        PhiVariant::Scalar => scalar_phi::phi_sweep_scalar_range(
            params,
            state,
            time,
            cfg.tz_precompute,
            cfg.staggered_buffer,
            cfg.shortcuts,
            z0,
            z1,
        ),
        PhiVariant::SimdCellwise => simd_phi::phi_sweep_cellwise_range(
            params,
            state,
            time,
            cfg.tz_precompute,
            cfg.staggered_buffer,
            cfg.shortcuts,
            z0,
            z1,
        ),
        PhiVariant::SimdFourCell => simd_phi::phi_sweep_fourcell_range(
            params,
            state,
            time,
            cfg.tz_precompute,
            cfg.shortcuts,
            z0,
            z1,
        ),
    }
}

/// Run the µ-sweep over a block's interior with the selected variant:
/// `µ_dst ← µ-kernel(µ_src, φ_src, φ_dst)` (Algorithm 1, line 4).
pub fn mu_sweep(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    cfg: KernelConfig,
    part: MuPart,
) {
    let (z0, z1) = state.dims.interior_z_range();
    mu_sweep_range(params, state, time, cfg, part, z0, z1);
}

/// Like [`mu_sweep`] restricted to the z-slices `z0..z1` (see
/// [`phi_sweep_range`]). The [`MuPart::NeighborOnly`] accumulation reads
/// and writes only its own cell of `µ_dst`, so it is slab-safe too.
pub fn mu_sweep_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    cfg: KernelConfig,
    part: MuPart,
    z0: usize,
    z1: usize,
) {
    match cfg.mu {
        MuVariant::Reference => {
            reference::mu_sweep_reference_range(params, state, time, part, z0, z1)
        }
        MuVariant::Scalar => scalar_mu::mu_sweep_scalar_range(
            params,
            state,
            time,
            part,
            cfg.tz_precompute,
            cfg.staggered_buffer,
            cfg.shortcuts,
            z0,
            z1,
        ),
        MuVariant::SimdFourCell => simd_mu::mu_sweep_fourcell_range(
            params,
            state,
            time,
            part,
            cfg.tz_precompute,
            cfg.staggered_buffer,
            cfg.shortcuts,
            z0,
            z1,
        ),
    }
}

/// Gather the 4 phase values of linear cell `i` from SoA component slices.
#[inline(always)]
pub(crate) fn get4(c: &[&[f64]; 4], i: usize) -> [f64; 4] {
    [c[0][i], c[1][i], c[2][i], c[3][i]]
}

/// Gather the 2 µ components of linear cell `i`.
#[inline(always)]
pub(crate) fn get2(c: &[&[f64]; 2], i: usize) -> [f64; 2] {
    [c[0][i], c[1][i]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let l = OptLevel::LADDER;
        assert_eq!(l[0].config().phi, PhiVariant::Reference);
        assert_eq!(l[1].config().phi, PhiVariant::Scalar);
        for rung in &l[2..] {
            assert_eq!(rung.config().phi, PhiVariant::SimdCellwise);
            assert_eq!(rung.config().mu, MuVariant::SimdFourCell);
        }
        assert!(!l[2].config().tz_precompute);
        assert!(l[3].config().tz_precompute && !l[3].config().staggered_buffer);
        assert!(l[4].config().staggered_buffer && !l[4].config().shortcuts);
        assert!(l[5].config().shortcuts);
        assert_eq!(KernelConfig::default(), l[5].config());
    }
}
