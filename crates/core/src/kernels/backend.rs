//! Runtime kernel-backend registry and telemetry-driven autotuner.
//!
//! The optimization ladder of Fig. 5/6 ([`super::OptLevel`]) picks a kernel
//! variant *globally*; this module packages every rung behind one
//! object-safe [`KernelBackend`] trait with a **named registry** resolved at
//! runtime, and adds an [`Autotuner`] that measures the candidates per block
//! on the running machine and pins the fastest — the refactor waLBerla
//! underwent to grow heterogeneous backends, and the reason per-machine
//! kernel choice is worth real speedups: the fastest variant depends on
//! region content (bulk vs front) and on the host ISA.
//!
//! # Registry grammar
//!
//! A backend name is a family, optionally followed by `+`-separated
//! toggles:
//!
//! ```text
//! family := reference | scalar | simd | simd-avx2 | simd-portable
//! name   := family [+tz] [+buf] [+sc]
//! ```
//!
//! `tz` enables per-slice T(z) precomputation, `buf` the staggered face
//! buffer, `sc` the region shortcuts — the ladder's cumulative toggles,
//! here freely combinable. `simd` resolves the ISA at runtime
//! ([`SimdIsa::Auto`]); `simd-avx2` *requires* AVX2+FMA and reports a typed
//! [`BackendError::Unavailable`] when the host lacks the features or the
//! `force-scalar` feature is enabled, instead of silently degrading;
//! `simd-portable` forces the bit-identical portable instantiation.
//!
//! # Equivalence guarantee
//!
//! Every registered backend computes the identical discretization.
//! `tests/kernel_equivalence.rs` iterates the registry: `simd-*` backends
//! are bit-exact against each other (same FMA contraction and summation
//! order, toggles only reorganize identical arithmetic or skip exactly-zero
//! terms); `reference`/`scalar` families agree to a stated `1e-11`
//! tolerance. The [`Autotuner`]'s default candidate set
//! ([`AutotunePolicy::bit_exact`]) stays inside one bit-exact family, so
//! its mid-run variant switches are bit-identical to pinning any single
//! candidate — autotuning never changes physics.

use std::collections::BTreeMap;
use std::fmt;

use super::{KernelConfig, MuPart, MuVariant, PhiVariant, SimdIsa};
use crate::params::ModelParams;
use crate::state::BlockState;

/// Why a backend could not be resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The name does not parse as `family[+tz][+buf][+sc]`.
    Unknown {
        /// The offending name.
        name: String,
    },
    /// The family exists but cannot run on this host/build.
    Unavailable {
        /// The requested name.
        name: String,
        /// Human-readable reason (host lacks AVX2+FMA, or `force-scalar`).
        reason: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unknown { name } => write!(
                f,
                "unknown kernel backend '{name}' (families: {}; toggles: +tz +buf +sc)",
                FAMILIES.join(", ")
            ),
            BackendError::Unavailable { name, reason } => {
                write!(f, "kernel backend '{name}' unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// One runnable kernel implementation: the φ- and µ-sweep entry points the
/// time loop needs, object-safe so registries and autotuners can hold
/// `Box<dyn KernelBackend>`.
pub trait KernelBackend: Send + Sync {
    /// Canonical registry name (`"simd-avx2+tz+buf+sc"`-style).
    fn name(&self) -> &str;

    /// The ladder configuration this backend dispatches to.
    fn config(&self) -> KernelConfig;

    /// Run the φ-sweep over z-slices `z0..z1` (see
    /// [`super::phi_sweep_range`] for the slab contract).
    fn phi_sweep_range(
        &self,
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        z0: usize,
        z1: usize,
    );

    /// Run the µ-sweep part over z-slices `z0..z1` (see
    /// [`super::mu_sweep_range`]).
    fn mu_sweep_range(
        &self,
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        part: MuPart,
        z0: usize,
        z1: usize,
    );
}

/// The registry's backend implementation: a named [`KernelConfig`]
/// dispatched through the ladder's range entry points.
struct ConfigBackend {
    name: String,
    cfg: KernelConfig,
}

impl KernelBackend for ConfigBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn config(&self) -> KernelConfig {
        self.cfg
    }

    fn phi_sweep_range(
        &self,
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        z0: usize,
        z1: usize,
    ) {
        super::phi_sweep_range(params, state, time, self.cfg, z0, z1);
    }

    fn mu_sweep_range(
        &self,
        params: &ModelParams,
        state: &mut BlockState,
        time: f64,
        part: MuPart,
        z0: usize,
        z1: usize,
    ) {
        super::mu_sweep_range(params, state, time, self.cfg, part, z0, z1);
    }
}

/// The registered backend families, in ladder order.
pub const FAMILIES: [&str; 5] = ["reference", "scalar", "simd", "simd-avx2", "simd-portable"];

/// Canonical name for a family + toggle combination.
pub fn backend_name(family: &str, tz: bool, buf: bool, sc: bool) -> String {
    let mut name = family.to_string();
    if tz {
        name.push_str("+tz");
    }
    if buf {
        name.push_str("+buf");
    }
    if sc {
        name.push_str("+sc");
    }
    name
}

/// Resolve a registry name to a runnable backend.
///
/// Availability is checked *here*, at resolve time: `simd-avx2` on a host
/// without AVX2+FMA (or under `force-scalar`) is a typed
/// [`BackendError::Unavailable`], never a silent fallback.
pub fn resolve(name: &str) -> Result<Box<dyn KernelBackend>, BackendError> {
    let mut parts = name.split('+');
    let family = parts.next().unwrap_or("");
    let (mut tz, mut buf, mut sc) = (false, false, false);
    for t in parts {
        match t {
            "tz" => tz = true,
            "buf" => buf = true,
            "sc" => sc = true,
            _ => {
                return Err(BackendError::Unknown {
                    name: name.to_string(),
                })
            }
        }
    }
    let (phi, mu, isa) = match family {
        "reference" => (PhiVariant::Reference, MuVariant::Reference, SimdIsa::Auto),
        "scalar" => (PhiVariant::Scalar, MuVariant::Scalar, SimdIsa::Auto),
        "simd" => (
            PhiVariant::SimdCellwise,
            MuVariant::SimdFourCell,
            SimdIsa::Auto,
        ),
        "simd-portable" => (
            PhiVariant::SimdCellwise,
            MuVariant::SimdFourCell,
            SimdIsa::Portable,
        ),
        "simd-avx2" => {
            if !eutectica_simd::avx2_available() {
                let reason = if eutectica_simd::host_has_avx2() {
                    "the `force-scalar` feature disabled the AVX2+FMA backend".to_string()
                } else {
                    "host CPU lacks AVX2+FMA".to_string()
                };
                return Err(BackendError::Unavailable {
                    name: name.to_string(),
                    reason,
                });
            }
            (
                PhiVariant::SimdCellwise,
                MuVariant::SimdFourCell,
                SimdIsa::Avx2,
            )
        }
        _ => {
            return Err(BackendError::Unknown {
                name: name.to_string(),
            })
        }
    };
    Ok(Box::new(ConfigBackend {
        name: backend_name(family, tz, buf, sc),
        cfg: KernelConfig {
            phi,
            mu,
            isa,
            tz_precompute: tz,
            staggered_buffer: buf,
            shortcuts: sc,
        },
    }))
}

/// Every registry name: each family × the ladder's cumulative toggle
/// combinations (none, `+tz`, `+tz+buf`, `+tz+buf+sc`). The equivalence
/// suite iterates this list; resolving an entry may still yield
/// [`BackendError::Unavailable`] (e.g. `simd-avx2` on a non-AVX2 host).
pub fn registry_names() -> Vec<String> {
    let mut names = Vec::new();
    for family in FAMILIES {
        for (tz, buf, sc) in [
            (false, false, false),
            (true, false, false),
            (true, true, false),
            (true, true, true),
        ] {
            names.push(backend_name(family, tz, buf, sc));
        }
    }
    names
}

/// The ISA the explicitly vectorized kernels resolve to on this host
/// (`"avx2"` or `"portable"`), under the default [`SimdIsa::Auto`]
/// selection. This is the *runtime* answer — independent of the target
/// features the binary was compiled with.
pub fn active_simd_backend() -> &'static str {
    SimdIsa::Auto.resolved_name()
}

/// A human-readable note when the SIMD rungs are degraded on this host:
/// the CPU supports AVX2+FMA but the build refuses to use it
/// (`force-scalar`). Returns `None` when the resolved backend is the best
/// the host offers. A host that genuinely lacks AVX2 is not "degraded" —
/// the portable instantiation *is* its best backend.
pub fn degradation_notice() -> Option<String> {
    if eutectica_simd::avx2_available() || !eutectica_simd::host_has_avx2() {
        return None;
    }
    Some(
        "kernel backend degraded: host CPU supports AVX2+FMA but the `force-scalar` \
         feature pins the portable instantiation; 'SIMD' rungs run scalar code"
            .to_string(),
    )
}

/// Log [`degradation_notice`] to stderr once per process, on rank 0 only —
/// the satellite fix for the silent-scalar-fallback bug: a "SIMD" bench row
/// can no longer secretly be scalar without a visible warning.
pub fn warn_once_if_degraded(rank: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    if rank != 0 {
        return;
    }
    ONCE.call_once(|| {
        if let Some(note) = degradation_notice() {
            eprintln!("[eutectica] warning: {note}");
        }
    });
}

/// One autotune candidate: a named, runnable kernel configuration.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Registry-style name, used in telemetry counters and summaries.
    pub name: String,
    /// The configuration the time loop runs while this candidate is
    /// selected.
    pub cfg: KernelConfig,
}

/// Autotuner policy: the candidate set and the warmup protocol.
#[derive(Clone, Debug)]
pub struct AutotunePolicy {
    /// Candidate variants, measured in order. **Bit-identity caveat:** the
    /// autotuner switches variants mid-run, so a run is bit-identical to an
    /// untuned run only if all candidates are bit-identical to each other —
    /// which [`AutotunePolicy::bit_exact`] guarantees. Custom sets that mix
    /// families (e.g. `scalar` with `simd`) trade bit-reproducibility for
    /// search breadth.
    pub candidates: Vec<Candidate>,
    /// Measured steps per candidate per block before moving on. The first
    /// step after every switch is discarded (cache/branch warm-in).
    pub warmup_steps: usize,
    /// EWMA smoothing factor for per-step sweep seconds, as in the
    /// rebalancer's cost model.
    pub alpha: f64,
    /// Re-evaluate a block's pinned choice when its dominant region class
    /// changes, checked every this many steps (0 = never re-check). The
    /// fastest variant is region-dependent, so a block that solidifies from
    /// front to bulk is worth re-tuning.
    pub recheck_every: usize,
}

impl AutotunePolicy {
    /// The default, physics-preserving policy: candidates are the
    /// explicitly vectorized family's cumulative toggle rungs × the ISA
    /// instantiations available on this host — all bit-identical to each
    /// other (pinned by the kernel-equivalence suite), so mid-run switches
    /// are bit-identical to pinning any single candidate.
    pub fn bit_exact() -> Self {
        let mut candidates = Vec::new();
        let mut isas: Vec<&str> = vec!["simd-portable"];
        if eutectica_simd::avx2_available() {
            // Fastest-first: measured in order, so on capable hosts the
            // AVX2 candidates warm up first.
            isas.insert(0, "simd-avx2");
        }
        for family in isas {
            for (tz, buf, sc) in [
                (true, true, true),
                (true, true, false),
                (true, false, false),
                (false, false, false),
            ] {
                let name = backend_name(family, tz, buf, sc);
                let cfg = resolve(&name)
                    .expect("bit-exact candidates resolve by construction")
                    .config();
                candidates.push(Candidate { name, cfg });
            }
        }
        Self {
            candidates,
            warmup_steps: 3,
            alpha: 0.5,
            recheck_every: 64,
        }
    }
}

/// Counters of one rank's autotuner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AutotuneStats {
    /// Blocks whose warmup finished and pinned a winner.
    pub pins: u64,
    /// Pinned blocks sent back to warmup by a region-class change or
    /// migration.
    pub retunes: u64,
    /// Candidate switches performed (warmup advances and re-pins).
    pub switches: u64,
}

/// Per-block tuning state.
#[derive(Clone, Debug)]
struct BlockTune {
    /// Index into the policy's candidate list currently running.
    cand: usize,
    /// Warmup finished; `cand` is the winner.
    pinned: bool,
    /// Discard the next sample (first step after a switch).
    skip_next: bool,
    /// Samples folded into `ewma[cand]` so far this warmup round.
    measured: usize,
    /// Per-candidate EWMA of sweep seconds per step.
    ewma: Vec<Option<f64>>,
    /// Dominant region class (`0` interface, `1` liquid, `2` solid) at the
    /// start of the current tuning round.
    class: usize,
    /// Interior cells, for MLUP/s-based region-rate estimates.
    cells: u64,
}

/// Telemetry-driven per-block kernel autotuner.
///
/// Reuses the rebalancer's measurement machinery conceptually: per-block
/// sweep seconds per step, folded into an EWMA per candidate. Protocol per
/// block: run each candidate for `warmup_steps` measured steps (first step
/// after every switch discarded), then pin the argmin. A pinned block keeps
/// feeding its winner's EWMA, so the estimates stay fresh. Re-tuning is
/// triggered by migration ([`Autotuner::untrack`]/[`Autotuner::track`] —
/// the new rank's cache topology may prefer a different variant) and by
/// dominant-region reclassification ([`Autotuner::note_region_class`]).
///
/// The autotuner is **rank-local**: variant choice affects no communication
/// (ghost exchange is identical for every variant), so no collective
/// coordination is needed and different ranks may pin different winners.
#[derive(Clone, Debug)]
pub struct Autotuner {
    policy: AutotunePolicy,
    blocks: BTreeMap<usize, BlockTune>,
    /// Measured MLUP/s EWMA per dominant region class
    /// (`[interface, liquid, solid]`, the ordering of
    /// [`crate::regions::DEFAULT_REGION_RATES`]).
    region_rate: [Option<f64>; 3],
    stats: AutotuneStats,
}

impl Autotuner {
    /// New autotuner with the given policy (panics on an empty candidate
    /// set).
    pub fn new(policy: AutotunePolicy) -> Self {
        assert!(
            !policy.candidates.is_empty(),
            "autotune policy needs at least one candidate"
        );
        Self {
            policy,
            blocks: BTreeMap::new(),
            region_rate: [None; 3],
            stats: AutotuneStats::default(),
        }
    }

    /// The policy this autotuner runs.
    pub fn policy(&self) -> &AutotunePolicy {
        &self.policy
    }

    /// Counters.
    pub fn stats(&self) -> &AutotuneStats {
        &self.stats
    }

    /// Start (or restart) tuning block `id`: `class` is its dominant region
    /// (`0` interface, `1` liquid, `2` solid), `cells` its interior cell
    /// count.
    pub fn track(&mut self, id: usize, class: usize, cells: u64) {
        let n = self.policy.candidates.len();
        self.blocks.insert(
            id,
            BlockTune {
                cand: 0,
                pinned: n == 1,
                skip_next: true,
                measured: 0,
                ewma: vec![None; n],
                class,
                cells,
            },
        );
        if n == 1 {
            self.stats.pins += 1;
        }
    }

    /// Stop tuning block `id` (it migrated away).
    pub fn untrack(&mut self, id: usize) {
        self.blocks.remove(&id);
    }

    /// The configuration block `id` should run this step: the candidate
    /// currently under measurement, or the pinned winner. `None` for
    /// untracked blocks.
    pub fn config_for(&self, id: usize) -> Option<KernelConfig> {
        let t = self.blocks.get(&id)?;
        Some(self.policy.candidates[t.cand].cfg)
    }

    /// The name of block `id`'s current variant and whether it is pinned.
    pub fn variant_of(&self, id: usize) -> Option<(&str, bool)> {
        let t = self.blocks.get(&id)?;
        Some((self.policy.candidates[t.cand].name.as_str(), t.pinned))
    }

    /// Feed one step's measured sweep seconds for block `id`. Returns the
    /// winner's name when this sample completes the block's warmup (a pin
    /// event, for telemetry counters).
    pub fn observe(&mut self, id: usize, secs: f64) -> Option<String> {
        let alpha = self.policy.alpha;
        let warmup = self.policy.warmup_steps;
        let t = self.blocks.get_mut(&id)?;
        if secs <= 0.0 || !secs.is_finite() {
            return None;
        }
        if t.skip_next {
            t.skip_next = false;
            return None;
        }
        let e = &mut t.ewma[t.cand];
        *e = Some(match *e {
            Some(prev) => alpha * secs + (1.0 - alpha) * prev,
            None => secs,
        });
        if t.pinned {
            // Keep the winner's estimate (and the region rates) fresh.
            let (class, rate) = (t.class, t.cells as f64 / secs / 1e6);
            Self::fold_region_rate(&mut self.region_rate, class, rate, alpha);
            return None;
        }
        t.measured += 1;
        if t.measured < warmup {
            return None;
        }
        // This candidate's round is done; advance or pin.
        t.measured = 0;
        t.skip_next = true;
        self.stats.switches += 1;
        if t.cand + 1 < self.policy.candidates.len() {
            t.cand += 1;
            return None;
        }
        // All candidates measured: pin the argmin (ties → first, i.e. the
        // earliest-measured candidate — deterministic).
        let (winner, best) = t
            .ewma
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|v| (i, v)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("warmup measured every candidate");
        t.cand = winner;
        t.pinned = true;
        self.stats.pins += 1;
        let (class, rate) = (t.class, t.cells as f64 / best / 1e6);
        Self::fold_region_rate(&mut self.region_rate, class, rate, alpha);
        Some(self.policy.candidates[winner].name.clone())
    }

    fn fold_region_rate(rates: &mut [Option<f64>; 3], class: usize, mlups: f64, alpha: f64) {
        if mlups <= 0.0 || !mlups.is_finite() {
            return;
        }
        let e = &mut rates[class];
        *e = Some(match *e {
            Some(prev) => alpha * mlups + (1.0 - alpha) * prev,
            None => mlups,
        });
    }

    /// Report block `id`'s current dominant region class. A pinned block
    /// whose class changed re-enters warmup (the fastest variant is
    /// region-dependent); returns true when that retune was triggered.
    pub fn note_region_class(&mut self, id: usize, class: usize) -> bool {
        let Some(t) = self.blocks.get_mut(&id) else {
            return false;
        };
        if t.class == class {
            return false;
        }
        t.class = class;
        if !t.pinned || self.policy.candidates.len() == 1 {
            return false;
        }
        t.pinned = false;
        t.cand = 0;
        t.measured = 0;
        t.skip_next = true;
        t.ewma.fill(None);
        self.stats.retunes += 1;
        true
    }

    /// True once every tracked block has pinned a winner.
    pub fn all_pinned(&self) -> bool {
        self.blocks.values().all(|t| t.pinned)
    }

    /// Chosen-variant census: `variant name → number of blocks currently
    /// pinned to it` (blocks still warming up are not counted).
    pub fn pinned_summary(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for t in self.blocks.values() {
            if t.pinned {
                *m.entry(self.policy.candidates[t.cand].name.clone())
                    .or_insert(0) += 1;
            }
        }
        m
    }

    /// Per-block view: `(block id, current variant name, pinned?)`, in
    /// block-id order.
    pub fn per_block(&self) -> Vec<(usize, String, bool)> {
        self.blocks
            .iter()
            .map(|(&id, t)| (id, self.policy.candidates[t.cand].name.clone(), t.pinned))
            .collect()
    }

    /// Measured per-region kernel rates `[interface, liquid, solid]` in
    /// MLUP/s, with classes this autotuner has not measured yet filled from
    /// `fallback`. Seeds the rebalancer's cold-start priors in place of the
    /// hardcoded [`crate::regions::DEFAULT_REGION_RATES`] guesses.
    pub fn region_rates_or(&self, fallback: [f64; 3]) -> [f64; 3] {
        core::array::from_fn(|i| self.region_rate[i].unwrap_or(fallback[i]))
    }

    /// True once at least one region class has a measured rate.
    pub fn has_region_rates(&self) -> bool {
        self.region_rate.iter().any(Option::is_some)
    }
}

/// The dominant region class of a block for autotune/prior purposes:
/// `0` interface (front + solid-solid), `1` liquid bulk, `2` solid bulk —
/// the ordering of [`crate::regions::DEFAULT_REGION_RATES`].
pub fn dominant_region_class(counts: &crate::regions::RegionCounts) -> usize {
    let groups = [
        counts.front + counts.solid_interface,
        counts.liquid_bulk,
        counts.solid_bulk,
    ];
    groups
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_known_names() {
        for name in registry_names() {
            match resolve(&name) {
                Ok(b) => {
                    assert_eq!(b.name(), name);
                    let cfg = b.config();
                    assert_eq!(cfg.tz_precompute, name.contains("+tz"));
                    assert_eq!(cfg.staggered_buffer, name.contains("+buf"));
                    assert_eq!(cfg.shortcuts, name.contains("+sc"));
                }
                Err(BackendError::Unavailable { name: n, .. }) => {
                    assert!(n.starts_with("simd-avx2"));
                    assert!(!eutectica_simd::avx2_available());
                }
                Err(e) => panic!("registry name {name} failed: {e}"),
            }
        }
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        for bad in ["", "simd2", "simd+fast", "avx2", "scalar+tz+nope"] {
            assert!(matches!(resolve(bad), Err(BackendError::Unknown { .. })));
        }
    }

    #[test]
    fn avx2_availability_matches_runtime_detection() {
        match resolve("simd-avx2") {
            Ok(b) => {
                assert!(eutectica_simd::avx2_available());
                assert_eq!(b.config().isa, SimdIsa::Avx2);
            }
            Err(BackendError::Unavailable { reason, .. }) => {
                assert!(!eutectica_simd::avx2_available());
                if eutectica_simd::host_has_avx2() {
                    assert!(reason.contains("force-scalar"), "reason: {reason}");
                }
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    #[test]
    fn degradation_notice_fires_exactly_under_force_scalar_on_capable_host() {
        let degraded = eutectica_simd::host_has_avx2() && !eutectica_simd::avx2_available();
        assert_eq!(degradation_notice().is_some(), degraded);
    }

    fn tiny_policy(n: usize) -> AutotunePolicy {
        let base = resolve("simd-portable").unwrap().config();
        AutotunePolicy {
            candidates: (0..n)
                .map(|i| Candidate {
                    name: format!("cand-{i}"),
                    cfg: base,
                })
                .collect(),
            warmup_steps: 2,
            alpha: 0.5,
            recheck_every: 0,
        }
    }

    /// Drive a block through warmup with candidate `k` given synthetic
    /// per-step costs `costs[k]`; returns the pinned winner index.
    fn run_warmup(tuner: &mut Autotuner, id: usize, costs: &[f64]) -> usize {
        // Per candidate: 1 discarded sample + warmup_steps measured.
        for _ in 0..costs.len() * (tuner.policy.warmup_steps + 1) {
            let cand = tuner.blocks[&id].cand;
            tuner.observe(id, costs[cand]);
        }
        let t = &tuner.blocks[&id];
        assert!(t.pinned, "warmup did not pin");
        t.cand
    }

    #[test]
    fn autotuner_pins_the_cheapest_candidate() {
        let mut tuner = Autotuner::new(tiny_policy(3));
        tuner.track(7, 0, 1_000_000);
        let winner = run_warmup(&mut tuner, 7, &[3e-3, 1e-3, 2e-3]);
        assert_eq!(winner, 1);
        assert_eq!(tuner.stats().pins, 1);
        assert_eq!(tuner.variant_of(7), Some(("cand-1", true)));
        let summary = tuner.pinned_summary();
        assert_eq!(summary.get("cand-1"), Some(&1));
        // Region rates were seeded from the winner: 1e6 cells in 1e-3 s
        // per step = 1000 MLUP/s for class 0, fallback elsewhere.
        let rates = tuner.region_rates_or([1.0, 2.0, 3.0]);
        assert!((rates[0] - 1000.0).abs() < 1.0, "rates: {rates:?}");
        assert_eq!(rates[1], 2.0);
        assert_eq!(rates[2], 3.0);
    }

    #[test]
    fn region_reclassification_triggers_retune() {
        let mut tuner = Autotuner::new(tiny_policy(2));
        tuner.track(0, 1, 1000);
        run_warmup(&mut tuner, 0, &[1e-3, 2e-3]);
        assert!(!tuner.note_region_class(0, 1), "same class must not retune");
        assert!(tuner.note_region_class(0, 2), "class change must retune");
        assert!(!tuner.all_pinned());
        assert_eq!(tuner.stats().retunes, 1);
        // The block re-pins after another warmup round.
        run_warmup(&mut tuner, 0, &[2e-3, 1e-3]);
        assert_eq!(tuner.variant_of(0), Some(("cand-1", true)));
    }

    #[test]
    fn single_candidate_pins_immediately() {
        let mut tuner = Autotuner::new(tiny_policy(1));
        tuner.track(3, 0, 1000);
        assert!(tuner.all_pinned());
        assert_eq!(tuner.variant_of(3), Some(("cand-0", true)));
    }

    #[test]
    fn bit_exact_policy_stays_in_the_simd_family() {
        let policy = AutotunePolicy::bit_exact();
        assert!(!policy.candidates.is_empty());
        for c in &policy.candidates {
            assert_eq!(c.cfg.phi, PhiVariant::SimdCellwise);
            assert_eq!(c.cfg.mu, MuVariant::SimdFourCell);
            assert!(c.name.starts_with("simd-"), "candidate {}", c.name);
        }
        if !eutectica_simd::avx2_available() {
            assert!(policy
                .candidates
                .iter()
                .all(|c| c.cfg.isa == SimdIsa::Portable));
        }
    }
}
