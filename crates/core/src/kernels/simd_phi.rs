//! Explicitly vectorized φ-kernels (ladder rung 2+).
//!
//! Two strategies, exactly as compared in Fig. 5:
//!
//! * **cellwise** ([`phi_sweep_cellwise`]): "a SIMD vector [represents] the
//!   four phases of a cell. With this technique, the field is still updated
//!   cellwise, such that branching on a cell-by-cell basis becomes
//!   possible" — pays for lane permutes (matrix–vector products need
//!   broadcasts) but can take per-cell shortcuts and keeps more
//!   intermediates in registers. The paper's fastest variant.
//! * **four-cell** ([`phi_sweep_fourcell`]): "unroll the innermost loop,
//!   updating four cells in one iteration" — contiguous SoA loads, no
//!   permutes, but "can only take these shortcuts if the condition is true
//!   for all four cells".
//!
//! Every kernel is generic over the ISA backend `V:`[`SimdF64x4`]; the
//! `_v`-suffixed entry points take the backend as a type parameter and are
//! instantiated per ISA by the runtime dispatch layer in [`super`]. The
//! unsuffixed entry points keep the original signatures and instantiate the
//! compile-time default `eutectica_simd::F64x4`.

use crate::kernels::simd_common::{
    eq_mask, gamma_cols, gather_cell4, matvec, project_simplex_lanes, scatter_cell4, SliceCtxV,
};
use crate::params::ModelParams;
use crate::state::BlockState;
use crate::temperature::{SliceCtx, SliceTable};
use crate::N_PHASES;
use eutectica_simd::{F64x4, SimdF64x4, SimdMask4};

/// Cellwise sweep entry point (compile-time default backend).
pub fn phi_sweep_cellwise(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    tz: bool,
    stag: bool,
    shortcuts: bool,
) {
    let (z0, z1) = state.dims.interior_z_range();
    phi_sweep_cellwise_range(params, state, time, tz, stag, shortcuts, z0, z1);
}

/// Range-restricted entry point for z-slab work-sharing (see
/// [`crate::kernels::scalar_phi::phi_sweep_scalar_range`] for the
/// coordinate convention and the bit-exactness argument).
#[allow(clippy::too_many_arguments)]
pub fn phi_sweep_cellwise_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    tz: bool,
    stag: bool,
    shortcuts: bool,
    z0: usize,
    z1: usize,
) {
    phi_sweep_cellwise_range_v::<F64x4>(params, state, time, tz, stag, shortcuts, z0, z1);
}

/// Backend-generic cellwise range sweep; instantiated per ISA by the runtime
/// dispatcher in [`super`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn phi_sweep_cellwise_range_v<V: SimdF64x4>(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    tz: bool,
    stag: bool,
    shortcuts: bool,
    z0: usize,
    z1: usize,
) {
    // With a uniform surface-energy matrix (γ_αβ = γ for α ≠ β, the standard
    // setup here and in the paper), Γ·v = γ(Σv − v): the matrix–vector
    // product collapses to one horizontal sum — the "φ_α Σ φ_β"-style
    // permute structure the paper describes for its cellwise kernel.
    let g = params.gamma[0][1];
    let uniform = (0..4).all(|a| {
        (0..4).all(|b| {
            let want = if a == b { 0.0 } else { g };
            params.gamma[a][b] == want
        })
    });
    let (p, s, t) = (params, state, time);
    match (uniform, tz, stag, shortcuts) {
        (false, false, false, false) => cellwise::<V, false, false, false, false>(p, s, t, z0, z1),
        (false, false, false, true) => cellwise::<V, false, false, true, false>(p, s, t, z0, z1),
        (false, false, true, false) => cellwise::<V, false, true, false, false>(p, s, t, z0, z1),
        (false, false, true, true) => cellwise::<V, false, true, true, false>(p, s, t, z0, z1),
        (false, true, false, false) => cellwise::<V, true, false, false, false>(p, s, t, z0, z1),
        (false, true, false, true) => cellwise::<V, true, false, true, false>(p, s, t, z0, z1),
        (false, true, true, false) => cellwise::<V, true, true, false, false>(p, s, t, z0, z1),
        (false, true, true, true) => cellwise::<V, true, true, true, false>(p, s, t, z0, z1),
        (true, false, false, false) => cellwise::<V, false, false, false, true>(p, s, t, z0, z1),
        (true, false, false, true) => cellwise::<V, false, false, true, true>(p, s, t, z0, z1),
        (true, false, true, false) => cellwise::<V, false, true, false, true>(p, s, t, z0, z1),
        (true, false, true, true) => cellwise::<V, false, true, true, true>(p, s, t, z0, z1),
        (true, true, false, false) => cellwise::<V, true, false, false, true>(p, s, t, z0, z1),
        (true, true, false, true) => cellwise::<V, true, false, true, true>(p, s, t, z0, z1),
        (true, true, true, false) => cellwise::<V, true, true, false, true>(p, s, t, z0, z1),
        (true, true, true, true) => cellwise::<V, true, true, true, true>(p, s, t, z0, z1),
    }
}

/// Γ·v for the cellwise kernel: uniform-γ fast path (one horizontal sum)
/// or the general 4×4 matrix–vector product.
#[inline(always)]
fn gamma_apply<V: SimdF64x4, const UG: bool>(gcols: &[V; N_PHASES], gu: V, v: V) -> V {
    if UG {
        gu * (v.hsum_splat() - v)
    } else {
        matvec(gcols, v)
    }
}

/// Staggered gradient-energy face flux, lanes = phases.
#[inline(always)]
fn face_flux_v<V: SimdF64x4, const UG: bool>(
    gcols: &[V; N_PHASES],
    gu: V,
    l: V,
    r: V,
    inv_dx: V,
) -> V {
    let pf = (l + r) * V::splat(0.5);
    let g = (r - l) * inv_dx;
    let s1 = gamma_apply::<V, UG>(gcols, gu, pf * g);
    let s2 = gamma_apply::<V, UG>(gcols, gu, pf * pf);
    (pf * s1 - g * s2) * V::splat(-2.0)
}

#[inline(always)]
fn cellwise<V: SimdF64x4, const TZ: bool, const STAG: bool, const SC: bool, const UG: bool>(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    z0: usize,
    z1: usize,
) {
    let dims = state.dims;
    let g = dims.ghost;
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    debug_assert!(g <= z0 && z0 <= z1 && z1 <= g + nz);
    let (sy, sz) = (dims.sy(), dims.sz());
    let inv_dx_s = 1.0 / params.dx;
    let inv_dx = V::splat(inv_dx_s);
    let inv_2dx = V::splat(0.5 * inv_dx_s);
    let gcols = gamma_cols::<V>(&params.gamma);
    let gu = V::splat(params.gamma[0][1]);
    let rate = V::splat(params.dt / (params.tau * params.eps));
    let quarter = V::splat(0.25);
    let two = V::splat(2.0);
    let one = V::splat(1.0);
    let origin_z = state.origin[2] as isize;

    let table = if TZ {
        Some(SliceTable::build(params, origin_z, dims.tz(), g, time))
    } else {
        None
    };
    // black_box: keep the per-cell recomputation from being hoisted (see
    // scalar_phi.rs).
    let cell_ctx = |z: usize| -> SliceCtxV<V> {
        let gz = origin_z as f64 + z as f64 - g as f64;
        SliceCtxV::from_ctx(&SliceCtx::at(
            params,
            std::hint::black_box(params.temperature(gz, time)),
        ))
    };

    let BlockState {
        phi_src,
        mu_src,
        phi_dst,
        ..
    } = state;
    let ps = phi_src.comps();
    let ms = mu_src.comps();
    let mut pd = phi_dst.comps_mut();

    let face = |il: usize, ir: usize| -> V {
        face_flux_v::<V, UG>(
            &gcols,
            gu,
            gather_cell4(&ps, il),
            gather_cell4(&ps, ir),
            inv_dx,
        )
    };

    let mut zbuf = vec![V::zero(); if STAG { nx * ny } else { 0 }];
    let mut ybuf = vec![V::zero(); if STAG { nx } else { 0 }];

    if STAG && z0 < z1 {
        for y in 0..ny {
            for x in 0..nx {
                let i = dims.idx(x + g, y + g, z0);
                zbuf[y * nx + x] = face(i - sz, i);
            }
        }
    }

    for z in z0..z1 {
        let ctx_z = if TZ {
            SliceCtxV::from_ctx(&table.as_ref().unwrap().cell[z])
        } else {
            cell_ctx(g) // placeholder; recomputed per cell
        };
        if STAG {
            for x in 0..nx {
                let i = dims.idx(x + g, g, z);
                ybuf[x] = face(i - sy, i);
            }
        }
        for y in g..g + ny {
            let mut xprev = if STAG {
                let i = dims.idx(g, y, z);
                face(i - 1, i)
            } else {
                V::zero()
            };
            for x in g..g + nx {
                let i = dims.idx(x, y, z);
                let pc = gather_cell4::<V>(&ps, i);
                let xm = gather_cell4::<V>(&ps, i - 1);
                let xp = gather_cell4::<V>(&ps, i + 1);
                let ym = gather_cell4::<V>(&ps, i - sy);
                let yp = gather_cell4::<V>(&ps, i + sy);
                let zm = gather_cell4::<V>(&ps, i - sz);
                let zp = gather_cell4::<V>(&ps, i + sz);

                let pure_mask = pc.ge(one);
                if SC && pure_mask.any() {
                    // Bulk shortcut: the cell is pure; if all six neighbors
                    // equal it exactly, ∂φ/∂t = 0.
                    let same = eq_mask(xm, pc)
                        .and(eq_mask(xp, pc))
                        .and(eq_mask(ym, pc))
                        .and(eq_mask(yp, pc))
                        .and(eq_mask(zm, pc))
                        .and(eq_mask(zp, pc));
                    if same.all() {
                        scatter_cell4(&mut pd, i, pc);
                        if STAG {
                            xprev = V::zero();
                            ybuf[x - g] = V::zero();
                            zbuf[(y - g) * nx + (x - g)] = V::zero();
                        }
                        continue;
                    }
                }

                let ctx = if TZ { ctx_z } else { cell_ctx(z) };

                // Reuse the already-gathered cell vectors for every face.
                let (f_xl, f_yl, f_zl) = if STAG {
                    (xprev, ybuf[x - g], zbuf[(y - g) * nx + (x - g)])
                } else {
                    (
                        face_flux_v::<V, UG>(&gcols, gu, xm, pc, inv_dx),
                        face_flux_v::<V, UG>(&gcols, gu, ym, pc, inv_dx),
                        face_flux_v::<V, UG>(&gcols, gu, zm, pc, inv_dx),
                    )
                };
                let f_xh = face_flux_v::<V, UG>(&gcols, gu, pc, xp, inv_dx);
                let f_yh = face_flux_v::<V, UG>(&gcols, gu, pc, yp, inv_dx);
                let f_zh = face_flux_v::<V, UG>(&gcols, gu, pc, zp, inv_dx);
                if STAG {
                    xprev = f_xh;
                    ybuf[x - g] = f_yh;
                    zbuf[(y - g) * nx + (x - g)] = f_zh;
                }

                // Central gradients (lanes = phases).
                let gx = (xp - xm) * inv_2dx;
                let gy = (yp - ym) * inv_2dx;
                let gz = (zp - zm) * inv_2dx;

                // ∂a/∂φ = 2[φ (Γ m) − Σ_axis g_axis (Γ (φ g_axis))].
                let m = gx.mul_add(gx, gy.mul_add(gy, gz * gz));
                let t2 = gx * gamma_apply::<V, UG>(&gcols, gu, pc * gx)
                    + gy * gamma_apply::<V, UG>(&gcols, gu, pc * gy)
                    + gz * gamma_apply::<V, UG>(&gcols, gu, pc * gz);
                let da = (pc * gamma_apply::<V, UG>(&gcols, gu, m) - t2) * two;

                let div = (f_xh - f_xl + f_yh - f_yl + f_zh - f_zl) * inv_dx;
                let obst = gamma_apply::<V, UG>(&gcols, gu, pc);

                // Driving force, skipped for pure cells with shortcuts.
                let drive = if SC && pure_mask.any() {
                    V::zero()
                } else {
                    let phi2 = pc * pc;
                    let inv_s = one / phi2.hsum_splat();
                    let mu0 = V::splat(ms[0][i]);
                    let mu1 = V::splat(ms[1][i]);
                    let psi = -(mu0 * mu0 * ctx.inv4k[0] + mu1 * mu1 * ctx.inv4k[1])
                        - (mu0 * ctx.c_eq[0] + mu1 * ctx.c_eq[1])
                        + ctx.offset;
                    let psi_bar = (phi2 * psi).hsum_splat() * inv_s;
                    two * pc * inv_s * (psi - psi_bar)
                };

                let vdf =
                    V::splat(ctx.pref_grad) * (da - div) + V::splat(ctx.pref_obst) * obst + drive;
                let mean = vdf.hsum_splat() * quarter;
                let raw = pc - rate * (vdf - mean);
                let out = crate::simplex::project_to_simplex(raw.to_array());
                scatter_cell4(&mut pd, i, V::from_array(out));
            }
        }
    }
}

/// Four-cell sweep entry point (compile-time default backend). The
/// staggered-buffer variant carries face fluxes across the four-cell groups
/// with lane shifts (`shift_in`), exactly like the µ-kernel's buffered
/// sweep, and is bit-exact against the unbuffered variant because
/// [`face_flux_cells`] is purely lanewise.
pub fn phi_sweep_fourcell(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    tz: bool,
    stag: bool,
    shortcuts: bool,
) {
    let (z0, z1) = state.dims.interior_z_range();
    phi_sweep_fourcell_range(params, state, time, tz, stag, shortcuts, z0, z1);
}

/// Range-restricted entry point for z-slab work-sharing. With the staggered
/// buffer the z-face plane is pre-filled at `z0`, so restarting at any slab
/// boundary reproduces the full sweep bit-for-bit (same argument as the
/// µ-kernel).
#[allow(clippy::too_many_arguments)]
pub fn phi_sweep_fourcell_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    tz: bool,
    stag: bool,
    shortcuts: bool,
    z0: usize,
    z1: usize,
) {
    phi_sweep_fourcell_range_v::<F64x4>(params, state, time, tz, stag, shortcuts, z0, z1);
}

/// Backend-generic four-cell range sweep; instantiated per ISA by the
/// runtime dispatcher in [`super`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn phi_sweep_fourcell_range_v<V: SimdF64x4>(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    tz: bool,
    stag: bool,
    shortcuts: bool,
    z0: usize,
    z1: usize,
) {
    let (p, s, t) = (params, state, time);
    match (tz, stag, shortcuts) {
        (false, false, false) => fourcell::<V, false, false, false>(p, s, t, z0, z1),
        (false, false, true) => fourcell::<V, false, false, true>(p, s, t, z0, z1),
        (false, true, false) => fourcell::<V, false, true, false>(p, s, t, z0, z1),
        (false, true, true) => fourcell::<V, false, true, true>(p, s, t, z0, z1),
        (true, false, false) => fourcell::<V, true, false, false>(p, s, t, z0, z1),
        (true, false, true) => fourcell::<V, true, false, true>(p, s, t, z0, z1),
        (true, true, false) => fourcell::<V, true, true, false>(p, s, t, z0, z1),
        (true, true, true) => fourcell::<V, true, true, true>(p, s, t, z0, z1),
    }
}

/// Face flux for four consecutive cells: lanes = cells, one output per phase.
/// Purely lanewise (splat constants only), so a face value is bit-identical
/// regardless of which lane position it is computed in — the property the
/// staggered carry relies on.
#[inline(always)]
fn face_flux_cells<V: SimdF64x4>(
    gamma: &[[f64; N_PHASES]; N_PHASES],
    l: &[V; N_PHASES],
    r: &[V; N_PHASES],
    inv_dx: V,
) -> [V; N_PHASES] {
    let half = V::splat(0.5);
    let pf: [V; N_PHASES] = core::array::from_fn(|a| (l[a] + r[a]) * half);
    let gd: [V; N_PHASES] = core::array::from_fn(|a| (r[a] - l[a]) * inv_dx);
    core::array::from_fn(|a| {
        let mut s1 = V::zero();
        let mut s2 = V::zero();
        for b in 0..N_PHASES {
            let gm = V::splat(gamma[a][b]);
            s1 = (gm * pf[b]).mul_add(gd[b], s1);
            s2 = (gm * pf[b]).mul_add(pf[b], s2);
        }
        (pf[a] * s1 - gd[a] * s2) * V::splat(-2.0)
    })
}

/// Shift a face-flux vector one lane right, inserting `carry` in lane 0:
/// the x-low faces of a four-cell group are the x-high faces of the same
/// group shifted by one cell, with the carry coming from the previous group.
#[inline(always)]
fn shift_in<V: SimdF64x4>(carry: f64, v: V) -> V {
    v.permute::<3, 0, 1, 2>().replace(0, carry)
}

#[inline(always)]
fn fourcell<V: SimdF64x4, const TZ: bool, const STAG: bool, const SC: bool>(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    z0: usize,
    z1: usize,
) {
    let dims = state.dims;
    let g = dims.ghost;
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    debug_assert!(g <= z0 && z0 <= z1 && z1 <= g + nz);
    let (sy, sz) = (dims.sy(), dims.sz());
    let inv_dx_s = 1.0 / params.dx;
    let inv_dx = V::splat(inv_dx_s);
    let inv_2dx = V::splat(0.5 * inv_dx_s);
    let rate = V::splat(params.dt / (params.tau * params.eps));
    let two = V::splat(2.0);
    let one = V::splat(1.0);
    let origin_z = state.origin[2] as isize;

    let table = if TZ {
        Some(SliceTable::build(params, origin_z, dims.tz(), g, time))
    } else {
        None
    };
    // black_box: see scalar_phi.rs.
    let scalar_ctx = |z: usize| -> SliceCtx {
        let gz = origin_z as f64 + z as f64 - g as f64;
        SliceCtx::at(params, std::hint::black_box(params.temperature(gz, time)))
    };

    let BlockState {
        phi_src,
        mu_src,
        phi_dst,
        ..
    } = state;
    let ps = phi_src.comps();
    let ms = mu_src.comps();
    let pd = phi_dst.comps_mut();

    let load4 = |off: isize, i: usize| -> [V; N_PHASES] {
        core::array::from_fn(|a| V::load(ps[a], (i as isize + off) as usize))
    };

    // Staggered face buffers, one entry per four-cell group (lanes = cells).
    let ngx = nx / 4;
    let mut zbuf = vec![[V::zero(); N_PHASES]; if STAG { ngx * ny } else { 0 }];
    let mut ybuf = vec![[V::zero(); N_PHASES]; if STAG { ngx } else { 0 }];

    if STAG && z0 < z1 {
        for y in 0..ny {
            for gx in 0..ngx {
                let i = dims.idx(g + gx * 4, y + g, z0);
                let pc = load4(0, i);
                let zm = load4(-(sz as isize), i);
                zbuf[y * ngx + gx] = face_flux_cells(&params.gamma, &zm, &pc, inv_dx);
            }
        }
    }

    for z in z0..z1 {
        let ctx = if TZ {
            table.as_ref().unwrap().cell[z]
        } else {
            scalar_ctx(z) // placeholder; recomputed per group below
        };
        if STAG {
            for gx in 0..ngx {
                let i = dims.idx(g + gx * 4, g, z);
                let pc = load4(0, i);
                let ym = load4(-(sy as isize), i);
                ybuf[gx] = face_flux_cells(&params.gamma, &ym, &pc, inv_dx);
            }
        }
        for y in g..g + ny {
            let row = dims.idx(g, y, z);
            // Row-start x-carry: the face between the ghost cell and the
            // first interior cell, read out of lane 0 of a lanewise flux.
            let mut carry = [0.0f64; N_PHASES];
            if STAG && ngx > 0 {
                let pc = load4(0, row);
                let xm = load4(-1, row);
                let f = face_flux_cells(&params.gamma, &xm, &pc, inv_dx);
                for a in 0..N_PHASES {
                    carry[a] = f[a].extract(0);
                }
            }
            let mut x = 0usize;
            let mut gx_i = 0usize;
            // Vectorized groups of four cells.
            while x + 4 <= nx {
                let i = row + x;
                let ctx = if TZ { ctx } else { scalar_ctx(z) };
                let pc = load4(0, i);
                let xm = load4(-1, i);
                let xp = load4(1, i);
                let ym = load4(-(sy as isize), i);
                let yp = load4(sy as isize, i);
                let zm = load4(-(sz as isize), i);
                let zp = load4(sz as isize, i);

                // Shortcut only if the condition holds for ALL four cells:
                // some phase is pure (=1) in every lane with all neighbors
                // equal — i.e. the whole group sits in one bulk region.
                if SC {
                    let mut skipped = false;
                    for a in 0..N_PHASES {
                        if pc[a].ge(one).all()
                            && xm[a].ge(one).all()
                            && xp[a].ge(one).all()
                            && ym[a].ge(one).all()
                            && yp[a].ge(one).all()
                            && zm[a].ge(one).all()
                            && zp[a].ge(one).all()
                        {
                            for b in 0..N_PHASES {
                                pc[b].store(pd[b], i);
                            }
                            skipped = true;
                            break;
                        }
                    }
                    if skipped {
                        // A pure group with pure equal neighbors has exactly
                        // zero flux on every face (l == r ⇒ zero gradient and
                        // Γ(pf·g) = 0), so zeroing the carried faces is
                        // bit-exact against recomputing them.
                        if STAG {
                            carry = [0.0; N_PHASES];
                            ybuf[gx_i] = [V::zero(); N_PHASES];
                            zbuf[(y - g) * ngx + gx_i] = [V::zero(); N_PHASES];
                        }
                        x += 4;
                        gx_i += 1;
                        continue;
                    }
                }

                // Face fluxes (lanes = cells). With the staggered buffer the
                // low faces come from the previous group (x, via lane shift)
                // or the previous row/plane (y/z, verbatim).
                let f_xh = face_flux_cells(&params.gamma, &pc, &xp, inv_dx);
                let (f_xl, f_yl, f_zl) = if STAG {
                    let xl: [V; N_PHASES] = core::array::from_fn(|a| shift_in(carry[a], f_xh[a]));
                    (xl, ybuf[gx_i], zbuf[(y - g) * ngx + gx_i])
                } else {
                    (
                        face_flux_cells(&params.gamma, &xm, &pc, inv_dx),
                        face_flux_cells(&params.gamma, &ym, &pc, inv_dx),
                        face_flux_cells(&params.gamma, &zm, &pc, inv_dx),
                    )
                };
                let f_yh = face_flux_cells(&params.gamma, &pc, &yp, inv_dx);
                let f_zh = face_flux_cells(&params.gamma, &pc, &zp, inv_dx);
                if STAG {
                    for a in 0..N_PHASES {
                        carry[a] = f_xh[a].extract(3);
                    }
                    ybuf[gx_i] = f_yh;
                    zbuf[(y - g) * ngx + gx_i] = f_zh;
                }

                // Gradients per phase.
                let gx: [V; N_PHASES] = core::array::from_fn(|a| (xp[a] - xm[a]) * inv_2dx);
                let gy: [V; N_PHASES] = core::array::from_fn(|a| (yp[a] - ym[a]) * inv_2dx);
                let gz: [V; N_PHASES] = core::array::from_fn(|a| (zp[a] - zm[a]) * inv_2dx);

                // ∂a/∂φ_a = 2[φ_a Σ_b γ m_b − Σ_b γ φ_b (g_a·g_b)].
                let m: [V; N_PHASES] = core::array::from_fn(|a| {
                    gx[a].mul_add(gx[a], gy[a].mul_add(gy[a], gz[a] * gz[a]))
                });
                let mut da = [V::zero(); N_PHASES];
                for a in 0..N_PHASES {
                    let mut s_norm = V::zero();
                    let mut s_dot = V::zero();
                    for b in 0..N_PHASES {
                        let gm = V::splat(params.gamma[a][b]);
                        s_norm = gm.mul_add(m[b], s_norm);
                        let dot = gx[a].mul_add(gx[b], gy[a].mul_add(gy[b], gz[a] * gz[b]));
                        s_dot = (gm * pc[b]).mul_add(dot, s_dot);
                    }
                    da[a] = (pc[a] * s_norm - s_dot) * two;
                }

                // Driving force (ψ per phase, lanes = cells).
                let mu0 = V::load(ms[0], i);
                let mu1 = V::load(ms[1], i);
                let mut s_phi2 = V::zero();
                for a in 0..N_PHASES {
                    s_phi2 = pc[a].mul_add(pc[a], s_phi2);
                }
                let inv_s = one / s_phi2;
                let mut psi = [V::zero(); N_PHASES];
                let mut psi_bar = V::zero();
                let skip_drive = SC && {
                    // All four cells pure in some (possibly different) phase.
                    let mut max = pc[0];
                    for v in &pc[1..] {
                        max = max.max(*v);
                    }
                    max.ge(one).all()
                };
                if !skip_drive {
                    for a in 0..N_PHASES {
                        psi[a] = -(mu0 * mu0 * V::splat(ctx.inv4k[a][0])
                            + mu1 * mu1 * V::splat(ctx.inv4k[a][1]))
                            - (mu0 * V::splat(ctx.c_eq[a][0]) + mu1 * V::splat(ctx.c_eq[a][1]))
                            + V::splat(ctx.offset[a]);
                        psi_bar = (pc[a] * pc[a] * inv_s).mul_add(psi[a], psi_bar);
                    }
                }

                // Assemble, project the mean out, integrate.
                let pref_grad = V::splat(ctx.pref_grad);
                let pref_obst = V::splat(ctx.pref_obst);
                let mut vdf = [V::zero(); N_PHASES];
                let mut mean = V::zero();
                for a in 0..N_PHASES {
                    let div = (f_xh[a] - f_xl[a] + f_yh[a] - f_yl[a] + f_zh[a] - f_zl[a]) * inv_dx;
                    let mut obst = V::zero();
                    for b in 0..N_PHASES {
                        obst = V::splat(params.gamma[a][b]).mul_add(pc[b], obst);
                    }
                    let drive = if skip_drive {
                        V::zero()
                    } else {
                        two * pc[a] * inv_s * (psi[a] - psi_bar)
                    };
                    vdf[a] = pref_grad * (da[a] - div) + pref_obst * obst + drive;
                    mean += vdf[a];
                }
                mean *= V::splat(0.25);
                let raw: [V; N_PHASES] = core::array::from_fn(|a| pc[a] - rate * (vdf[a] - mean));
                let out = project_simplex_lanes(raw);
                for a in 0..N_PHASES {
                    out[a].store(pd[a], i);
                }
                x += 4;
                gx_i += 1;
            }
            // Scalar remainder (recomputes its faces unbuffered; no vector
            // group reads these cells' buffer slots, so STAG needs no
            // plumbing here).
            while x < nx {
                let i = row + x;
                let ctx = if TZ {
                    table.as_ref().unwrap().cell[z]
                } else {
                    scalar_ctx(z)
                };
                let pc = crate::kernels::get4(&ps, i);
                let xm = crate::kernels::get4(&ps, i - 1);
                let xp = crate::kernels::get4(&ps, i + 1);
                let ym = crate::kernels::get4(&ps, i - sy);
                let yp = crate::kernels::get4(&ps, i + sy);
                let zm = crate::kernels::get4(&ps, i - sz);
                let zp = crate::kernels::get4(&ps, i + sz);
                let grads = crate::model::central_gradients(xm, xp, ym, yp, zm, zp, 0.5 * inv_dx_s);
                let faces = [
                    crate::model::phi_face_flux(&params.gamma, xm, pc, inv_dx_s),
                    crate::model::phi_face_flux(&params.gamma, pc, xp, inv_dx_s),
                    crate::model::phi_face_flux(&params.gamma, ym, pc, inv_dx_s),
                    crate::model::phi_face_flux(&params.gamma, pc, yp, inv_dx_s),
                    crate::model::phi_face_flux(&params.gamma, zm, pc, inv_dx_s),
                    crate::model::phi_face_flux(&params.gamma, pc, zp, inv_dx_s),
                ];
                let mu = crate::kernels::get2(&ms, i);
                let out = crate::model::phi_cell_update(
                    params,
                    &ctx,
                    pc,
                    &grads,
                    &faces,
                    mu,
                    SC && crate::model::is_pure(pc),
                );
                for c in 0..N_PHASES {
                    pd[c][i] = out[c];
                }
                x += 1;
            }
        }
    }
}

/// Cellwise φ-sweep reading the phase field from an **array-of-structures**
/// mirror: the four phases of a cell load as one contiguous vector, removing
/// the SoA gather (the layout experiment of Sec. 5.1.1: "the fastest
/// φ-kernel requires an array-of-structures (AoS) layout to be able to load
/// a SIMD vector directly from contiguous memory ... no notable differences
/// could be measured in the φ-kernel performance after a data layout
/// change"). Production uses SoA (the µ-kernel's preference); this variant
/// exists for the layout ablation bench and is equivalence-tested against
/// [`phi_sweep_cellwise`].
///
/// Runs the T(z) + staggered-buffer configuration (rung 4) with uniform-γ
/// fast path when applicable.
pub fn phi_sweep_cellwise_aos(
    params: &ModelParams,
    phi_src: &eutectica_blockgrid::field::AosField<N_PHASES>,
    mu_src: &eutectica_blockgrid::field::SoaField<2>,
    phi_dst: &mut eutectica_blockgrid::field::SoaField<N_PHASES>,
    origin_z: isize,
    time: f64,
) {
    let dims = phi_dst.dims();
    assert_eq!(dims, phi_src.dims());
    let g = dims.ghost;
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    let (sy, sz) = (dims.sy(), dims.sz());
    let inv_dx_s = 1.0 / params.dx;
    let inv_dx = F64x4::splat(inv_dx_s);
    let inv_2dx = F64x4::splat(0.5 * inv_dx_s);
    let gcols = gamma_cols(&params.gamma);
    let gu = F64x4::splat(params.gamma[0][1]);
    let uniform = {
        let gv = params.gamma[0][1];
        (0..N_PHASES)
            .all(|a| (0..N_PHASES).all(|b| params.gamma[a][b] == if a == b { 0.0 } else { gv }))
    };
    let rate = F64x4::splat(params.dt / (params.tau * params.eps));
    let quarter = F64x4::splat(0.25);
    let two = F64x4::splat(2.0);
    let one = F64x4::splat(1.0);

    let table = SliceTable::build(params, origin_z, dims.tz(), g, time);
    let raw = phi_src.raw();
    let ms: [&[f64]; 2] = [mu_src.comp(0), mu_src.comp(1)];
    let pd = phi_dst.comps_mut();

    // One contiguous load per cell — the AoS advantage.
    let cell = |i: usize| -> F64x4 { F64x4::load(raw, i * N_PHASES) };
    let gapply = |v: F64x4| -> F64x4 {
        if uniform {
            gu * (v.hsum_splat() - v)
        } else {
            matvec(&gcols, v)
        }
    };
    let face = |il: usize, ir: usize| -> F64x4 {
        let (l, r) = (cell(il), cell(ir));
        let pf = (l + r) * F64x4::splat(0.5);
        let gd = (r - l) * inv_dx;
        let s1 = gapply(pf * gd);
        let s2 = gapply(pf * pf);
        (pf * s1 - gd * s2) * F64x4::splat(-2.0)
    };

    let mut zbuf = vec![F64x4::zero(); nx * ny];
    let mut ybuf = vec![F64x4::zero(); nx];
    for y in 0..ny {
        for x in 0..nx {
            let i = dims.idx(x + g, y + g, g);
            zbuf[y * nx + x] = face(i - sz, i);
        }
    }

    for z in g..g + nz {
        let ctx = SliceCtxV::<F64x4>::from_ctx(&table.cell[z]);
        for x in 0..nx {
            let i = dims.idx(x + g, g, z);
            ybuf[x] = face(i - sy, i);
        }
        for y in g..g + ny {
            let mut xprev = {
                let i = dims.idx(g, y, z);
                face(i - 1, i)
            };
            for x in g..g + nx {
                let i = dims.idx(x, y, z);
                let pc = cell(i);
                let xm = cell(i - 1);
                let xp = cell(i + 1);
                let ym = cell(i - sy);
                let yp = cell(i + sy);
                let zm = cell(i - sz);
                let zp = cell(i + sz);

                let (f_xl, f_yl, f_zl) = (xprev, ybuf[x - g], zbuf[(y - g) * nx + (x - g)]);
                let f_xh = face(i, i + 1);
                let f_yh = face(i, i + sy);
                let f_zh = face(i, i + sz);
                xprev = f_xh;
                ybuf[x - g] = f_yh;
                zbuf[(y - g) * nx + (x - g)] = f_zh;

                let gx = (xp - xm) * inv_2dx;
                let gy = (yp - ym) * inv_2dx;
                let gz = (zp - zm) * inv_2dx;
                let m = gx.mul_add(gx, gy.mul_add(gy, gz * gz));
                let t2 = gx * gapply(pc * gx) + gy * gapply(pc * gy) + gz * gapply(pc * gz);
                let da = (pc * gapply(m) - t2) * two;
                let div = (f_xh - f_xl + f_yh - f_yl + f_zh - f_zl) * inv_dx;
                let obst = gapply(pc);

                let phi2 = pc * pc;
                let inv_s = one / phi2.hsum_splat();
                let mu0 = F64x4::splat(ms[0][i]);
                let mu1 = F64x4::splat(ms[1][i]);
                let psi = -(mu0 * mu0 * ctx.inv4k[0] + mu1 * mu1 * ctx.inv4k[1])
                    - (mu0 * ctx.c_eq[0] + mu1 * ctx.c_eq[1])
                    + ctx.offset;
                let psi_bar = (phi2 * psi).hsum_splat() * inv_s;
                let drive = two * pc * inv_s * (psi - psi_bar);

                let vdf = F64x4::splat(ctx.pref_grad) * (da - div)
                    + F64x4::splat(ctx.pref_obst) * obst
                    + drive;
                let mean = vdf.hsum_splat() * quarter;
                let out = crate::simplex::project_to_simplex((pc - rate * (vdf - mean)).to_array());
                for c in 0..N_PHASES {
                    pd[c][i] = out[c];
                }
            }
        }
    }
}

#[cfg(test)]
mod aos_tests {
    use super::*;
    use crate::state::BlockState;
    use eutectica_blockgrid::GridDims;

    #[test]
    fn aos_variant_matches_soa_cellwise() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let dims = GridDims::cube(8);
        let mut s = BlockState::new(dims, [0, 0, 2]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
                    s.phi_src
                        .set_cell(x, y, z, crate::simplex::project_to_simplex(raw));
                    s.mu_src.set_cell(
                        x,
                        y,
                        z,
                        [rng.random_range(-0.2..0.2), rng.random_range(-0.2..0.2)],
                    );
                }
            }
        }
        // SoA cellwise (T(z) + staggered buffer, no shortcuts).
        let mut soa = s.clone();
        phi_sweep_cellwise(&ModelParams::ag_al_cu(), &mut soa, 1.0, true, true, false);
        // AoS variant.
        let params = ModelParams::ag_al_cu();
        let aos = s.phi_src.to_aos();
        let mut out = s.phi_dst.clone();
        phi_sweep_cellwise_aos(&params, &aos, &s.mu_src, &mut out, 2, 1.0);
        for c in 0..4 {
            for (x, y, z) in dims.interior_iter() {
                let a = soa.phi_dst.at(c, x, y, z);
                let b = out.at(c, x, y, z);
                assert!((a - b).abs() < 1e-13, "phi[{c}]@({x},{y},{z}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn fourcell_staggered_is_bit_exact_vs_unbuffered() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let params = ModelParams::ag_al_cu();
        // nx = 10 exercises both the group path (8 cells) and the scalar
        // remainder (2 cells); a pure slab exercises the shortcut zeroing.
        let dims = GridDims::new(10, 6, 6, 1);
        let mut s = BlockState::new(dims, [0, 0, 3]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    let cell = if y < dims.ty() / 2 {
                        [1.0, 0.0, 0.0, 0.0]
                    } else {
                        let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
                        crate::simplex::project_to_simplex(raw)
                    };
                    s.phi_src.set_cell(x, y, z, cell);
                    s.mu_src.set_cell(
                        x,
                        y,
                        z,
                        [rng.random_range(-0.2..0.2), rng.random_range(-0.2..0.2)],
                    );
                }
            }
        }
        for tz in [false, true] {
            for sc in [false, true] {
                let mut plain = s.clone();
                let mut stag = s.clone();
                phi_sweep_fourcell(&params, &mut plain, 1.0, tz, false, sc);
                phi_sweep_fourcell(&params, &mut stag, 1.0, tz, true, sc);
                for c in 0..N_PHASES {
                    for (x, y, z) in dims.interior_iter() {
                        let a = plain.phi_dst.at(c, x, y, z);
                        let b = stag.phi_dst.at(c, x, y, z);
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "tz={tz} sc={sc} phi[{c}]@({x},{y},{z}): {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}
