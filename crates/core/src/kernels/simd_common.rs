//! Shared helpers for the explicitly vectorized kernels.
//!
//! Everything here is generic over the ISA backend `V:`[`SimdF64x4`], so the
//! vectorized kernels can be instantiated per ISA and dispatched at runtime
//! (see [`super::backend`]). The crate-level `eutectica_simd::F64x4` alias
//! remains the compile-time default instantiation.

use crate::temperature::SliceCtx;
use crate::{N_COMP, N_PHASES};
use eutectica_simd::{SimdF64x4, SimdMask4};

/// Gather the 4 phase values of one cell from the SoA planes into a vector
/// (lane α = φ_α). This is the cost of running the cellwise φ-kernel on a
/// SoA field; the paper measured it to be negligible thanks to the kernel's
/// high arithmetic intensity (Sec. 5.1.1).
#[inline(always)]
pub fn gather_cell4<V: SimdF64x4>(comps: &[&[f64]; N_PHASES], i: usize) -> V {
    V::from_array([comps[0][i], comps[1][i], comps[2][i], comps[3][i]])
}

/// Scatter a phase vector back to the SoA planes.
#[inline(always)]
pub fn scatter_cell4<V: SimdF64x4>(comps: &mut [&mut [f64]; N_PHASES], i: usize, v: V) {
    let a = v.to_array();
    comps[0][i] = a[0];
    comps[1][i] = a[1];
    comps[2][i] = a[2];
    comps[3][i] = a[3];
}

/// 4×4 matrix–vector product with the matrix stored as column vectors:
/// `(M v)_α = Σ_β M_αβ v_β`. Three FMAs and four lane broadcasts
/// (`vpermpd`) — the "various permute or rotate operations" the cellwise
/// strategy pays for (Sec. 5.1.1).
#[inline(always)]
pub fn matvec<V: SimdF64x4>(cols: &[V; N_PHASES], v: V) -> V {
    let r = cols[0] * v.broadcast_lane::<0>();
    let r = cols[1].mul_add(v.broadcast_lane::<1>(), r);
    let r = cols[2].mul_add(v.broadcast_lane::<2>(), r);
    cols[3].mul_add(v.broadcast_lane::<3>(), r)
}

/// γ matrix as column vectors (symmetric, so columns = rows).
#[inline(always)]
pub fn gamma_cols<V: SimdF64x4>(gamma: &[[f64; N_PHASES]; N_PHASES]) -> [V; N_PHASES] {
    core::array::from_fn(|b| V::from_array(core::array::from_fn(|a| gamma[a][b])))
}

/// Per-slice thermodynamic constants in lane-per-phase layout for the
/// cellwise φ-kernel.
#[derive(Copy, Clone, Debug)]
pub struct SliceCtxV<V: SimdF64x4> {
    /// c^eq_α per component, lane α = phase.
    pub c_eq: [V; N_COMP],
    /// Grand-potential offsets X_α, lane α = phase.
    pub offset: V,
    /// 1/(4k_α,i(T)) per component, lane α = phase.
    pub inv4k: [V; N_COMP],
    /// T·ε.
    pub pref_grad: f64,
    /// 16T/(π²ε).
    pub pref_obst: f64,
}

impl<V: SimdF64x4> SliceCtxV<V> {
    /// Convert a scalar slice context.
    #[inline(always)]
    pub fn from_ctx(ctx: &SliceCtx) -> Self {
        Self {
            c_eq: [
                V::from_array(core::array::from_fn(|a| ctx.c_eq[a][0])),
                V::from_array(core::array::from_fn(|a| ctx.c_eq[a][1])),
            ],
            offset: V::from_array(ctx.offset),
            inv4k: [
                V::from_array(core::array::from_fn(|a| ctx.inv4k[a][0])),
                V::from_array(core::array::from_fn(|a| ctx.inv4k[a][1])),
            ],
            pref_grad: ctx.pref_grad,
            pref_obst: ctx.pref_obst,
        }
    }
}

/// Lanewise equality mask via `ge ∧ le` (no dedicated eq in the API).
#[inline(always)]
pub fn eq_mask<V: SimdF64x4>(a: V, b: V) -> V::Mask {
    a.ge(b).and(a.le(b))
}

/// Lane-parallel Gibbs-simplex projection for four independent cells:
/// `phi[α]` holds phase α of all four cells. Mirrors
/// [`crate::simplex::project_to_simplex`] with compare/select instead of
/// branches.
#[inline(always)]
pub fn project_simplex_lanes<V: SimdF64x4>(phi: [V; N_PHASES]) -> [V; N_PHASES] {
    // Sorting network (descending) across the four phase registers.
    #[inline(always)]
    fn cswap<V: SimdF64x4>(a: V, b: V) -> (V, V) {
        (a.max(b), a.min(b))
    }
    let [p0, p1, p2, p3] = phi;
    let (u0, u1) = cswap(p0, p1);
    let (u2, u3) = cswap(p2, p3);
    let (u0, u2) = cswap(u0, u2);
    let (u1, u3) = cswap(u1, u3);
    let (u1, u2) = cswap(u1, u2);
    let sorted = [u0, u1, u2, u3];

    let one = V::splat(1.0);
    let zero = V::zero();
    let mut cumsum = zero;
    let mut lambda = zero;
    for (j, u) in sorted.iter().enumerate() {
        cumsum += *u;
        let l = (one - cumsum) * V::splat(1.0 / (j as f64 + 1.0));
        let mask = (*u + l).gt(zero);
        lambda = mask.select(l, lambda);
    }
    core::array::from_fn(|a| (phi[a] + lambda).max(zero))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_simd::F64x4;

    #[test]
    fn matvec_matches_scalar() {
        let gamma = crate::params::ModelParams::ag_al_cu().gamma;
        let cols = gamma_cols::<F64x4>(&gamma);
        let v = F64x4::from_array([0.1, 0.2, 0.3, 0.4]);
        let got = matvec(&cols, v).to_array();
        for a in 0..4 {
            let want: f64 = (0..4).map(|b| gamma[a][b] * v.extract(b)).sum();
            assert!((got[a] - want).abs() < 1e-14, "row {a}");
        }
    }

    #[test]
    fn lane_projection_matches_scalar_projection() {
        let cells = [
            [1.2, -0.1, -0.05, -0.05],
            [0.25, 0.25, 0.25, 0.25],
            [0.9, 0.4, -0.2, 0.1],
            [0.0, 1.0, 0.0, 0.0],
        ];
        // Transpose into per-phase lanes.
        let phi: [F64x4; 4] =
            core::array::from_fn(|a| F64x4::from_array(core::array::from_fn(|c| cells[c][a])));
        let out = project_simplex_lanes(phi);
        for (c, cell) in cells.iter().enumerate() {
            let want = crate::simplex::project_to_simplex(*cell);
            for a in 0..4 {
                assert!(
                    (out[a].extract(c) - want[a]).abs() < 1e-14,
                    "cell {c} phase {a}: {} vs {}",
                    out[a].extract(c),
                    want[a]
                );
            }
        }
    }

    #[test]
    fn eq_mask_detects_equality() {
        let a = F64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::from_array([1.0, 2.5, 3.0, 4.0]);
        assert_eq!(eq_mask(a, a).bitmask(), 0b1111);
        assert_eq!(eq_mask(a, b).bitmask(), 0b1101);
    }
}
