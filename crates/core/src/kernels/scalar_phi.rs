//! Specialized scalar φ-kernel (optimization-ladder rung 1, plus the T(z),
//! staggered-buffer and shortcut flags of rungs 3–5 in scalar form).
//!
//! The sweep walks the block interior with z outermost (so per-slice
//! temperature terms amortize), evaluates the staggered gradient-energy face
//! fluxes, and updates each cell through [`crate::model::phi_cell_update`].
//!
//! With `staggered_buffer` the three "low" faces of each cell are reused
//! from the previously computed "high" faces (register / row buffer / slab
//! buffer as in Fig. 3), halving the face evaluations. With `shortcuts`,
//! bulk cells are skipped entirely and pure cells skip the driving force.

use crate::kernels::{get2, get4};
use crate::model::{central_gradients, is_bulk, is_pure, phi_cell_update, phi_face_flux};
use crate::params::ModelParams;
use crate::state::BlockState;
use crate::temperature::{SliceCtx, SliceTable};

/// Entry point: dispatches the flag combination to a monomorphized sweep.
pub fn phi_sweep_scalar(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    tz: bool,
    stag: bool,
    shortcuts: bool,
) {
    let (z0, z1) = state.dims.interior_z_range();
    phi_sweep_scalar_range(params, state, time, tz, stag, shortcuts, z0, z1);
}

/// Range-restricted entry point for z-slab work-sharing: updates only the
/// slices `z0..z1` (absolute, ghost-inclusive coordinates with
/// `g <= z0 <= z1 <= g + nz`). Because all reads go to the source fields,
/// a partition of the interior into slabs yields exactly the cells the
/// full sweep computes — the staggered z-slab buffer is reprefilled at `z0`
/// from source faces, which the flag-equivalence tests pin bit-exact
/// against the carried values.
#[allow(clippy::too_many_arguments)]
pub fn phi_sweep_scalar_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    tz: bool,
    stag: bool,
    shortcuts: bool,
    z0: usize,
    z1: usize,
) {
    match (tz, stag, shortcuts) {
        (false, false, false) => sweep::<false, false, false>(params, state, time, z0, z1),
        (false, false, true) => sweep::<false, false, true>(params, state, time, z0, z1),
        (false, true, false) => sweep::<false, true, false>(params, state, time, z0, z1),
        (false, true, true) => sweep::<false, true, true>(params, state, time, z0, z1),
        (true, false, false) => sweep::<true, false, false>(params, state, time, z0, z1),
        (true, false, true) => sweep::<true, false, true>(params, state, time, z0, z1),
        (true, true, false) => sweep::<true, true, false>(params, state, time, z0, z1),
        (true, true, true) => sweep::<true, true, true>(params, state, time, z0, z1),
    }
}

fn sweep<const TZ: bool, const STAG: bool, const SC: bool>(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    z0: usize,
    z1: usize,
) {
    let dims = state.dims;
    let g = dims.ghost;
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    debug_assert!(g <= z0 && z0 <= z1 && z1 <= g + nz);
    let (sy, sz) = (dims.sy(), dims.sz());
    let inv_dx = 1.0 / params.dx;
    let inv_2dx = 0.5 * inv_dx;
    let gamma = &params.gamma;
    let origin_z = state.origin[2] as isize;

    let table = if TZ {
        Some(SliceTable::build(params, origin_z, dims.tz(), g, time))
    } else {
        None
    };
    // Per-cell temperature evaluation for the unoptimized rungs — identical
    // arithmetic to the table entries, just recomputed redundantly. The
    // `black_box` models the original code's per-cell temperature lookup,
    // which the compiler cannot hoist out of the loop (otherwise LLVM's
    // loop-invariant code motion would silently apply the T(z) optimization
    // to the "unoptimized" rungs too).
    let cell_ctx = |z: usize| -> SliceCtx {
        let gz = origin_z as f64 + z as f64 - g as f64;
        SliceCtx::at(params, std::hint::black_box(params.temperature(gz, time)))
    };

    // Split borrows: read φ_src/µ_src, write φ_dst.
    let BlockState {
        phi_src,
        mu_src,
        phi_dst,
        ..
    } = state;
    let ps = phi_src.comps();
    let ms = mu_src.comps();
    let pd = phi_dst.comps_mut();

    let face = |il: usize, ir: usize| -> [f64; 4] {
        phi_face_flux(gamma, get4(&ps, il), get4(&ps, ir), inv_dx)
    };

    // Staggered buffers (Fig. 3): z slab, y row, x register.
    let mut zbuf = vec![[0.0f64; 4]; if STAG { nx * ny } else { 0 }];
    let mut ybuf = vec![[0.0f64; 4]; if STAG { nx } else { 0 }];

    if STAG && z0 < z1 {
        // Prefill the z slab with the fluxes through the faces below the
        // first computed slice (ghost faces for a full sweep, interior
        // faces when restarting mid-block for a z-slab partition).
        for y in 0..ny {
            for x in 0..nx {
                let i = dims.idx(x + g, y + g, z0);
                zbuf[y * nx + x] = face(i - sz, i);
            }
        }
    }

    for z in z0..z1 {
        let ctx_z = if TZ {
            table.as_ref().unwrap().cell[z]
        } else {
            // Placeholder; recomputed per cell below.
            SliceCtx::at(params, 0.0)
        };
        if STAG {
            // Prefill the y row buffer with the front ghost faces.
            for x in 0..nx {
                let i = dims.idx(x + g, g, z);
                ybuf[x] = face(i - sy, i);
            }
        }
        for y in g..g + ny {
            let mut xprev = if STAG {
                let i = dims.idx(g, y, z);
                face(i - 1, i)
            } else {
                [0.0; 4]
            };
            for x in g..g + nx {
                let i = dims.idx(x, y, z);
                let pc = get4(&ps, i);
                let xm = get4(&ps, i - 1);
                let xp = get4(&ps, i + 1);
                let ym = get4(&ps, i - sy);
                let yp = get4(&ps, i + sy);
                let zm = get4(&ps, i - sz);
                let zp = get4(&ps, i + sz);

                if SC && is_bulk(pc, &[xm, xp, ym, yp, zm, zp]) {
                    // Bulk shortcut: ∂φ/∂t = 0 exactly; all faces to the
                    // following cells are between identical pure cells → 0.
                    for c in 0..4 {
                        pd[c][i] = pc[c];
                    }
                    if STAG {
                        xprev = [0.0; 4];
                        ybuf[x - g] = [0.0; 4];
                        zbuf[(y - g) * nx + (x - g)] = [0.0; 4];
                    }
                    continue;
                }

                let ctx = if TZ { ctx_z } else { cell_ctx(z) };

                let (f_xl, f_yl, f_zl) = if STAG {
                    (xprev, ybuf[x - g], zbuf[(y - g) * nx + (x - g)])
                } else {
                    (face(i - 1, i), face(i - sy, i), face(i - sz, i))
                };
                let f_xh = face(i, i + 1);
                let f_yh = face(i, i + sy);
                let f_zh = face(i, i + sz);
                if STAG {
                    xprev = f_xh;
                    ybuf[x - g] = f_yh;
                    zbuf[(y - g) * nx + (x - g)] = f_zh;
                }

                let grads = central_gradients(xm, xp, ym, yp, zm, zp, inv_2dx);
                let mu = get2(&ms, i);
                let skip_driving = SC && is_pure(pc);
                let out = phi_cell_update(
                    params,
                    &ctx,
                    pc,
                    &grads,
                    &[f_xl, f_xh, f_yl, f_yh, f_zl, f_zh],
                    mu,
                    skip_driving,
                );
                for c in 0..4 {
                    pd[c][i] = out[c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::GridDims;

    fn random_state(seed: u64, n: usize) -> BlockState {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dims = GridDims::cube(n);
        let mut s = BlockState::new(dims, [0, 0, 0]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
                    let phi = crate::simplex::project_to_simplex(raw);
                    s.phi_src.set_cell(x, y, z, phi);
                    s.mu_src.set_cell(
                        x,
                        y,
                        z,
                        [rng.random_range(-0.2..0.2), rng.random_range(-0.2..0.2)],
                    );
                }
            }
        }
        s
    }

    fn max_diff(a: &BlockState, b: &BlockState) -> f64 {
        let mut m = 0.0f64;
        for c in 0..4 {
            for (x, y) in a.phi_dst.comp(c).iter().zip(b.phi_dst.comp(c)) {
                m = m.max((x - y).abs());
            }
        }
        m
    }

    #[test]
    fn flag_combinations_are_bit_exact() {
        let base = random_state(7, 6);
        let p = ModelParams::ag_al_cu();
        let mut reference = base.clone();
        phi_sweep_scalar(&p, &mut reference, 3.0, false, false, false);
        for tz in [false, true] {
            for stag in [false, true] {
                for sc in [false, true] {
                    let mut s = base.clone();
                    phi_sweep_scalar(&p, &mut s, 3.0, tz, stag, sc);
                    let d = max_diff(&reference, &s);
                    assert_eq!(d, 0.0, "flags ({tz},{stag},{sc}) diverged by {d:e}");
                }
            }
        }
    }

    #[test]
    fn output_stays_on_simplex() {
        let p = ModelParams::ag_al_cu();
        let mut s = random_state(11, 5);
        phi_sweep_scalar(&p, &mut s, 0.0, true, true, true);
        for (x, y, z) in s.dims.interior_iter() {
            let phi = s.phi_dst.cell(x, y, z);
            assert!(
                crate::simplex::on_simplex(phi, 1e-12),
                "off simplex at ({x},{y},{z}): {phi:?}"
            );
        }
    }

    #[test]
    fn uniform_liquid_is_stationary() {
        let p = ModelParams::ag_al_cu();
        let dims = GridDims::cube(5);
        let mut s = BlockState::new(dims, [0, 0, 0]); // all liquid, µ = 0
        phi_sweep_scalar(&p, &mut s, 0.0, false, false, false);
        for (x, y, z) in dims.interior_iter() {
            assert_eq!(s.phi_dst.cell(x, y, z), [0.0, 0.0, 0.0, 1.0]);
        }
    }

    #[test]
    fn undercooled_interface_moves_towards_liquid() {
        // A flat Al/liquid interface below T_eu: the solid fraction grows.
        let p = ModelParams::ag_al_cu(); // t0 = 0.97 < 1 at z ≈ 0
        let dims = GridDims::new(4, 4, 12, 1);
        let mut s = BlockState::new(dims, [0, 0, 0]);
        for (x, y, z) in dims.interior_iter() {
            // Diffuse interface around z = 6.
            let d = z as f64 - 6.0;
            let ps = (0.5 - 0.5 * (d / 2.0).tanh()).clamp(0.0, 1.0);
            s.phi_src.set_cell(x, y, z, [ps, 0.0, 0.0, 1.0 - ps]);
        }
        s.apply_bc_src();
        let solid_before: f64 = dims
            .interior_iter()
            .map(|(x, y, z)| s.phi_src.at(0, x, y, z))
            .sum();
        let mut time = 0.0;
        for _ in 0..20 {
            phi_sweep_scalar(&p, &mut s, time, true, true, false);
            s.phi_src.swap(&mut s.phi_dst);
            s.bc_phi.apply(&mut s.phi_src);
            time += p.dt;
        }
        let solid_after: f64 = dims
            .interior_iter()
            .map(|(x, y, z)| s.phi_src.at(0, x, y, z))
            .sum();
        assert!(
            solid_after > solid_before + 0.5,
            "front did not advance: {solid_before} -> {solid_after}"
        );
    }
}
