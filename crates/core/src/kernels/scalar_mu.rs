//! Specialized scalar µ-kernel (ladder rung 1 + scalar forms of rungs 3–5).
//!
//! The µ-update (Eq. 3) evaluates, at staggered faces, the gradient flux
//! M(φ)∇µ (D3C7) and the anti-trapping current J_at (D3C19, Eq. 4), plus the
//! local phase-change source and temperature drift. "The computationally
//! most intensive part of equation (3) is the calculation of the divergence
//! of v_buf := (M∇µ − J_at)" — with `staggered_buffer`, half of those face
//! values are buffered and reused exactly as in Fig. 3.
//!
//! The sweep supports the Algorithm-2 split ([`MuPart`]): `LocalOnly`
//! updates with everything except J_at (local φ dependency only), and
//! `NeighborOnly` adds −∇·J_at afterwards, once the φ_dst ghost layers have
//! arrived.

use crate::kernels::{get2, get4, MuPart};
use crate::model::{
    jat_face_flux, mu_cell_update, mu_face_flux_gradient, phase_change_source, susceptibility,
    temp_drift,
};
use crate::params::ModelParams;
use crate::state::BlockState;
use crate::temperature::{SliceCtx, SliceTable};
use crate::{N_COMP, N_PHASES};

/// Entry point: dispatches the flag combination to a monomorphized sweep.
pub fn mu_sweep_scalar(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    part: MuPart,
    tz: bool,
    stag: bool,
    shortcuts: bool,
) {
    let (z0, z1) = state.dims.interior_z_range();
    mu_sweep_scalar_range(params, state, time, part, tz, stag, shortcuts, z0, z1);
}

/// Range-restricted entry point for z-slab work-sharing (see
/// [`crate::kernels::scalar_phi::phi_sweep_scalar_range`] for the
/// coordinate convention and the bit-exactness argument).
#[allow(clippy::too_many_arguments)]
pub fn mu_sweep_scalar_range(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    part: MuPart,
    tz: bool,
    stag: bool,
    shortcuts: bool,
    z0: usize,
    z1: usize,
) {
    match (tz, stag, shortcuts) {
        (false, false, false) => sweep::<false, false, false>(params, state, time, part, z0, z1),
        (false, false, true) => sweep::<false, false, true>(params, state, time, part, z0, z1),
        (false, true, false) => sweep::<false, true, false>(params, state, time, part, z0, z1),
        (false, true, true) => sweep::<false, true, true>(params, state, time, part, z0, z1),
        (true, false, false) => sweep::<true, false, false>(params, state, time, part, z0, z1),
        (true, false, true) => sweep::<true, false, true>(params, state, time, part, z0, z1),
        (true, true, false) => sweep::<true, true, false>(params, state, time, part, z0, z1),
        (true, true, true) => sweep::<true, true, true>(params, state, time, part, z0, z1),
    }
}

/// Everything a face-flux evaluation needs, bundled to keep signatures sane.
/// Shared with the four-cell SIMD kernel's scalar remainder path.
pub(crate) struct SweepCtx<'a> {
    #[allow(dead_code)]
    pub(crate) params: &'a ModelParams,
    pub(crate) inv_dx: f64,
    pub(crate) inv_dt: f64,
    pub(crate) atc_pref: f64,
    pub(crate) dc_dt: [[f64; N_COMP]; N_PHASES],
    pub(crate) sy: usize,
    pub(crate) sz: usize,
    pub(crate) with_grad: bool,
    pub(crate) with_jat: bool,
}

impl SweepCtx<'_> {
    /// Build for a given part/flags combination.
    pub(crate) fn new(params: &ModelParams, sy: usize, sz: usize, part: MuPart) -> SweepCtx<'_> {
        SweepCtx {
            params,
            inv_dx: 1.0 / params.dx,
            inv_dt: 1.0 / params.dt,
            atc_pref: params.atc_prefactor(),
            dc_dt: params.dc_dt_coeffs(),
            sy,
            sz,
            with_grad: part != MuPart::NeighborOnly,
            with_jat: params.enable_atc && part != MuPart::LocalOnly,
        }
    }

    /// Transverse strides of `axis`.
    #[inline(always)]
    fn trans(&self, axis: usize) -> (usize, usize) {
        match axis {
            0 => (self.sy, self.sz),
            1 => (1, self.sz),
            _ => (1, self.sy),
        }
    }

    /// Combined staggered face flux `M∇µ − J_at` (restricted by
    /// `with_grad`/`with_jat` for the split parts) between linear cells
    /// `il` and `ir = il + stride(axis)`.
    ///
    /// `SC` enables the early-out shortcut branches; they are bit-exact with
    /// the branchless indicator guards inside [`jat_face_flux`].
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn face_flux<const SC: bool>(
        &self,
        ps: &[&[f64]; N_PHASES],
        pd: &[&[f64]; N_PHASES],
        ms: &[&[f64]; N_COMP],
        ctx_face: &SliceCtx,
        il: usize,
        ir: usize,
        axis: usize,
    ) -> [f64; N_COMP] {
        let phi_l = get4(ps, il);
        let phi_r = get4(ps, ir);
        let mut flux = [0.0; N_COMP];
        if self.with_grad {
            let mu_l = get2(ms, il);
            let mu_r = get2(ms, ir);
            flux = mu_face_flux_gradient(ctx_face, phi_l, phi_r, mu_l, mu_r, self.inv_dx);
        }
        if self.with_jat {
            if SC {
                // Shortcut 1: no liquid at the face → J_at = 0.
                let pl = 0.5 * (phi_l[crate::LIQ] + phi_r[crate::LIQ]);
                if pl <= 0.0 {
                    return flux;
                }
                // Shortcut 2: zero liquid gradient (bulk liquid) → J_at = 0.
                let gl = self.face_gradient(ps, il, ir, axis, crate::LIQ);
                if gl[0] * gl[0] + gl[1] * gl[1] + gl[2] * gl[2] == 0.0 {
                    return flux;
                }
            }
            let phi_f: [f64; N_PHASES] = core::array::from_fn(|a| 0.5 * (phi_l[a] + phi_r[a]));
            let grad_f: [[f64; 3]; N_PHASES] =
                core::array::from_fn(|a| self.face_gradient(ps, il, ir, axis, a));
            let dphidt_f: [f64; N_PHASES] = core::array::from_fn(|a| {
                0.5 * ((pd[a][il] - ps[a][il]) + (pd[a][ir] - ps[a][ir])) * self.inv_dt
            });
            let mu_l = get2(ms, il);
            let mu_r = get2(ms, ir);
            let mu_f = [0.5 * (mu_l[0] + mu_r[0]), 0.5 * (mu_l[1] + mu_r[1])];
            let jat = jat_face_flux(
                ctx_face,
                self.atc_pref,
                &phi_f,
                &grad_f,
                &dphidt_f,
                mu_f,
                axis,
            );
            flux[0] -= jat[0];
            flux[1] -= jat[1];
        }
        flux
    }

    /// Full 3-component gradient of φ_a at the face between `il` and `ir`:
    /// normal from the face difference, transverse from averaged central
    /// differences (the D3C19 accesses of the µ-kernel).
    #[inline(always)]
    fn face_gradient(
        &self,
        ps: &[&[f64]; N_PHASES],
        il: usize,
        ir: usize,
        axis: usize,
        a: usize,
    ) -> [f64; 3] {
        let (se1, se2) = self.trans(axis);
        let p = ps[a];
        let normal = (p[ir] - p[il]) * self.inv_dx;
        let t1 = 0.25 * self.inv_dx * ((p[il + se1] - p[il - se1]) + (p[ir + se1] - p[ir - se1]));
        let t2 = 0.25 * self.inv_dx * ((p[il + se2] - p[il - se2]) + (p[ir + se2] - p[ir - se2]));
        match axis {
            0 => [normal, t1, t2],
            1 => [t1, normal, t2],
            _ => [t1, t2, normal],
        }
    }
}

fn sweep<const TZ: bool, const STAG: bool, const SC: bool>(
    params: &ModelParams,
    state: &mut BlockState,
    time: f64,
    part: MuPart,
    z0: usize,
    z1: usize,
) {
    let dims = state.dims;
    let g = dims.ghost;
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    debug_assert!(g <= z0 && z0 <= z1 && z1 <= g + nz);
    let (sy, sz) = (dims.sy(), dims.sz());
    let origin_z = state.origin[2] as isize;
    let dt = params.dt;

    let cx = SweepCtx::new(params, sy, sz, part);
    let with_local_terms = part != MuPart::NeighborOnly;
    let accumulate = part == MuPart::NeighborOnly;

    let table = if TZ {
        Some(SliceTable::build(params, origin_z, dims.tz(), g, time))
    } else {
        None
    };
    // `black_box` keeps the per-cell recomputation of the unoptimized rungs
    // from being hoisted by loop-invariant code motion (see scalar_phi.rs).
    let temp_of = |z: usize| -> f64 {
        let gz = origin_z as f64 + z as f64 - g as f64;
        if TZ {
            params.temperature(gz, time)
        } else {
            std::hint::black_box(params.temperature(gz, time))
        }
    };
    let zface_ctx =
        |z: usize| -> SliceCtx { SliceCtx::at(params, 0.5 * (temp_of(z) + temp_of(z + 1))) };

    let BlockState {
        phi_src,
        phi_dst,
        mu_src,
        mu_dst,
        ..
    } = state;
    let ps = phi_src.comps();
    let pd = phi_dst.comps();
    let ms = mu_src.comps();
    let md = mu_dst.comps_mut();

    // Staggered buffers for the combined face flux.
    let mut zbuf = vec![[0.0f64; N_COMP]; if STAG { nx * ny } else { 0 }];
    let mut ybuf = vec![[0.0f64; N_COMP]; if STAG { nx } else { 0 }];

    if STAG && z0 < z1 {
        let ctx_zlow = if TZ {
            table.as_ref().unwrap().zface[z0 - 1]
        } else {
            zface_ctx(z0 - 1)
        };
        for y in 0..ny {
            for x in 0..nx {
                let i = dims.idx(x + g, y + g, z0);
                zbuf[y * nx + x] = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx_zlow, i - sz, i, 2);
            }
        }
    }

    for z in z0..z1 {
        let (ctx_z, ctx_zf_low, ctx_zf_high) = if TZ {
            let t = table.as_ref().unwrap();
            (t.cell[z], t.zface[z - 1], t.zface[z])
        } else {
            // Recomputed per cell below; placeholders here.
            (
                SliceCtx::at(params, 0.0),
                SliceCtx::at(params, 0.0),
                SliceCtx::at(params, 0.0),
            )
        };
        if STAG {
            let ctx_yf = if TZ {
                ctx_z
            } else {
                SliceCtx::at(params, temp_of(z))
            };
            for x in 0..nx {
                let i = dims.idx(x + g, g, z);
                ybuf[x] = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx_yf, i - sy, i, 1);
            }
        }
        for y in g..g + ny {
            let mut xprev = [0.0f64; N_COMP];
            if STAG {
                let i = dims.idx(g, y, z);
                let ctx_xf = if TZ {
                    ctx_z
                } else {
                    SliceCtx::at(params, temp_of(z))
                };
                xprev = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx_xf, i - 1, i, 0);
            }
            for x in g..g + nx {
                let i = dims.idx(x, y, z);
                // Temperature contexts: per-slice from the table (TZ) or
                // recomputed redundantly per cell (the unoptimized rungs).
                let (ctx, czl, czh) = if TZ {
                    (ctx_z, ctx_zf_low, ctx_zf_high)
                } else {
                    (
                        SliceCtx::at(params, temp_of(z)),
                        zface_ctx(z - 1),
                        zface_ctx(z),
                    )
                };

                let (f_xl, f_yl, f_zl) = if STAG {
                    (xprev, ybuf[x - g], zbuf[(y - g) * nx + (x - g)])
                } else {
                    (
                        cx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i - 1, i, 0),
                        cx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i - sy, i, 1),
                        cx.face_flux::<SC>(&ps, &pd, &ms, &czl, i - sz, i, 2),
                    )
                };
                let f_xh = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i, i + 1, 0);
                let f_yh = cx.face_flux::<SC>(&ps, &pd, &ms, &ctx, i, i + sy, 1);
                let f_zh = cx.face_flux::<SC>(&ps, &pd, &ms, &czh, i, i + sz, 2);
                if STAG {
                    xprev = f_xh;
                    ybuf[x - g] = f_yh;
                    zbuf[(y - g) * nx + (x - g)] = f_zh;
                }

                let div = [
                    (f_xh[0] - f_xl[0] + f_yh[0] - f_yl[0] + f_zh[0] - f_zl[0]) * cx.inv_dx,
                    (f_xh[1] - f_xl[1] + f_yh[1] - f_yl[1] + f_zh[1] - f_zl[1]) * cx.inv_dx,
                ];

                let phi_old = get4(&ps, i);
                let chi = susceptibility(&ctx, phi_old);

                if accumulate {
                    md[0][i] += dt * div[0] / chi[0];
                    md[1][i] += dt * div[1] / chi[1];
                    continue;
                }

                let mu = get2(&ms, i);
                let (source, drift) = if with_local_terms {
                    let phi_new = get4(&pd, i);
                    let src = if SC
                        && phi_new[0] == phi_old[0]
                        && phi_new[1] == phi_old[1]
                        && phi_new[2] == phi_old[2]
                        && phi_new[3] == phi_old[3]
                    {
                        // Shortcut: no interface motion → ∂h/∂t = 0 exactly.
                        [0.0; N_COMP]
                    } else {
                        phase_change_source(&ctx, phi_old, phi_new, mu, cx.inv_dt)
                    };
                    let drift = temp_drift(&cx.dc_dt, phi_old, params.dtemp_dt());
                    (src, drift)
                } else {
                    ([0.0; N_COMP], [0.0; N_COMP])
                };

                let out = mu_cell_update(mu, div, source, drift, chi, dt);
                md[0][i] = out[0];
                md[1][i] = out[1];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::GridDims;

    /// Random valid state with φ_dst slightly evolved from φ_src (as after a
    /// φ-sweep), so the source and J_at terms are exercised.
    fn random_state(seed: u64, n: usize) -> BlockState {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dims = GridDims::cube(n);
        let mut s = BlockState::new(dims, [0, 0, 0]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
                    let phi = crate::simplex::project_to_simplex(raw);
                    s.phi_src.set_cell(x, y, z, phi);
                    let nudged: [f64; 4] =
                        core::array::from_fn(|a| phi[a] + rng.random_range(-0.02..0.02));
                    s.phi_dst
                        .set_cell(x, y, z, crate::simplex::project_to_simplex(nudged));
                    s.mu_src.set_cell(
                        x,
                        y,
                        z,
                        [rng.random_range(-0.2..0.2), rng.random_range(-0.2..0.2)],
                    );
                }
            }
        }
        s
    }

    fn max_mu_diff(a: &BlockState, b: &BlockState) -> f64 {
        let mut m = 0.0f64;
        for c in 0..2 {
            for (x, y) in a.mu_dst.comp(c).iter().zip(b.mu_dst.comp(c)) {
                m = m.max((x - y).abs());
            }
        }
        m
    }

    #[test]
    fn flag_combinations_are_bit_exact() {
        let base = random_state(3, 6);
        let p = ModelParams::ag_al_cu();
        let mut reference = base.clone();
        mu_sweep_scalar(&p, &mut reference, 2.0, MuPart::Full, false, false, false);
        for tz in [false, true] {
            for stag in [false, true] {
                for sc in [false, true] {
                    let mut s = base.clone();
                    mu_sweep_scalar(&p, &mut s, 2.0, MuPart::Full, tz, stag, sc);
                    let d = max_mu_diff(&reference, &s);
                    assert_eq!(d, 0.0, "flags ({tz},{stag},{sc}) diverged by {d:e}");
                }
            }
        }
    }

    #[test]
    fn split_parts_compose_to_full() {
        let base = random_state(5, 6);
        let p = ModelParams::ag_al_cu();
        let mut full = base.clone();
        mu_sweep_scalar(&p, &mut full, 1.0, MuPart::Full, true, true, false);
        let mut split = base.clone();
        mu_sweep_scalar(&p, &mut split, 1.0, MuPart::LocalOnly, true, true, false);
        mu_sweep_scalar(&p, &mut split, 1.0, MuPart::NeighborOnly, true, true, false);
        let d = max_mu_diff(&full, &split);
        assert!(d < 1e-13, "split composition diverged by {d:e}");
    }

    #[test]
    fn uniform_equilibrium_is_stationary() {
        // Pure liquid at µ = 0, T arbitrary, no φ motion: µ must stay put
        // except for the temperature drift of the liquid.
        let mut p = ModelParams::ag_al_cu();
        p.vel_v = 0.0; // no drift
        let dims = GridDims::cube(5);
        let mut s = BlockState::new(dims, [0, 0, 0]);
        s.sync_dst_from_src();
        mu_sweep_scalar(&p, &mut s, 0.0, MuPart::Full, true, true, false);
        for (x, y, z) in dims.interior_iter() {
            let mu = s.mu_dst.cell(x, y, z);
            assert!(
                mu[0].abs() < 1e-14 && mu[1].abs() < 1e-14,
                "µ drifted: {mu:?}"
            );
        }
    }

    #[test]
    fn temperature_drift_raises_mu_when_cooling() {
        // With v > 0 the temperature at fixed z drops; the liquidus line
        // c_eq moves, so µ (measured from equilibrium) must respond through
        // the drift term −(∂c/∂T)(∂T/∂t) with ∂T/∂t < 0 and s > 0 → ∂µ/∂t>0.
        let p = ModelParams::ag_al_cu();
        assert!(p.vel_v > 0.0);
        let dims = GridDims::cube(4);
        let mut s = BlockState::new(dims, [0, 0, 0]);
        s.sync_dst_from_src();
        mu_sweep_scalar(&p, &mut s, 0.0, MuPart::Full, true, false, false);
        let mu = s.mu_dst.cell(2, 2, 2);
        assert!(
            mu[0] > 0.0 && mu[1] > 0.0,
            "expected warming drift, got {mu:?}"
        );
    }

    #[test]
    fn mu_diffuses_towards_uniformity_in_liquid() {
        let mut p = ModelParams::ag_al_cu();
        p.vel_v = 0.0;
        let dims = GridDims::cube(6);
        let mut s = BlockState::new(dims, [0, 0, 0]);
        // A µ bump in the middle.
        s.mu_src.set_cell(3, 3, 3, [0.5, -0.5]);
        s.sync_dst_from_src();
        s.apply_bc_src();
        let var_before = mu_variance(&s);
        for step in 0..10 {
            mu_sweep_scalar(
                &p,
                &mut s,
                step as f64 * p.dt,
                MuPart::Full,
                true,
                true,
                false,
            );
            s.mu_src.swap(&mut s.mu_dst);
            s.bc_mu.apply(&mut s.mu_src);
        }
        let var_after = mu_variance(&s);
        assert!(
            var_after < 0.5 * var_before,
            "no diffusion: {var_before} -> {var_after}"
        );
    }

    fn mu_variance(s: &BlockState) -> f64 {
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut n = 0.0;
        for (x, y, z) in s.dims.interior_iter() {
            let v = s.mu_src.at(0, x, y, z);
            sum += v;
            sum2 += v * v;
            n += 1.0;
        }
        sum2 / n - (sum / n) * (sum / n)
    }

    #[test]
    fn mass_is_conserved_in_closed_system() {
        // Fully periodic, no temperature motion: total mixture concentration
        // Σ_cells c(φ, µ) is conserved by construction of the source term.
        use eutectica_blockgrid::boundary::{Bc, BoundarySpec};
        let mut p = ModelParams::ag_al_cu();
        p.vel_v = 0.0;
        p.grad_g = 0.0;
        let dims = GridDims::cube(6);
        let mut s = random_state(17, 6);
        s.bc_phi = BoundarySpec::uniform(Bc::Periodic);
        s.bc_mu = BoundarySpec::uniform(Bc::Periodic);
        // Make dst = src so there is no phase motion (isolate flux terms).
        s.phi_dst = s.phi_src.clone();
        s.apply_bc_src();
        s.bc_phi.apply(&mut s.phi_dst);

        let ctx = SliceCtx::at(&p, p.t0);
        let total = |field: &BlockState, use_dst: bool| -> [f64; 2] {
            let mut t = [0.0; 2];
            for (x, y, z) in dims.interior_iter() {
                let phi = field.phi_src.cell(x, y, z);
                let mu = if use_dst {
                    field.mu_dst.cell(x, y, z)
                } else {
                    field.mu_src.cell(x, y, z)
                };
                let c = crate::model::mixture_concentration(&ctx, phi, mu);
                t[0] += c[0];
                t[1] += c[1];
            }
            t
        };
        let before = total(&s, false);
        mu_sweep_scalar(&p, &mut s, 0.0, MuPart::Full, true, true, false);
        let after = total(&s, true);
        for i in 0..2 {
            assert!(
                (after[i] - before[i]).abs() < 1e-10 * before[i].abs().max(1.0),
                "component {i} drifted: {before:?} -> {after:?}"
            );
        }
    }
}
