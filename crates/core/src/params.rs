//! Model and numerical parameters.

use eutectica_thermo::TernarySystem;
use serde::{Deserialize, Serialize};

use crate::{N_COMP, N_PHASES};

/// All physical and numerical parameters of the phase-field model.
///
/// Everything is nondimensionalized: `dx = 1` cell, eutectic temperature 1,
/// liquid diffusivity 1 (see `eutectica-thermo`). Defaults correspond to the
/// Ag-Al-Cu directional-solidification scenario of the paper, scaled to
/// workstation domain sizes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelParams {
    /// Thermodynamic description of the ternary system.
    pub sys: TernarySystem,
    /// Interface-width parameter ε (in units of dx). The diffuse interface
    /// spans ≈ π²ε/4 cells.
    pub eps: f64,
    /// Relaxation constant τ coupling the phase-field to physical time.
    pub tau: f64,
    /// Symmetric surface-energy matrix γ_αβ (diagonal unused).
    pub gamma: [[f64; N_PHASES]; N_PHASES],
    /// Grid spacing (1 in nondimensional units).
    pub dx: f64,
    /// Time-step size; must satisfy [`ModelParams::validate`].
    pub dt: f64,
    /// Temperature at global z = 0 at t = 0.
    pub t0: f64,
    /// Frozen temperature gradient G (per cell).
    pub grad_g: f64,
    /// Pulling velocity v of the temperature profile (cells per time unit).
    pub vel_v: f64,
    /// Enable the anti-trapping current J_at (Eq. 4). Disabling it is the
    /// model ablation discussed in the introduction (refs. [29] vs [30]).
    pub enable_atc: bool,
}

impl ModelParams {
    /// Default Ag-Al-Cu directional solidification parameters.
    pub fn ag_al_cu() -> Self {
        let g = 1.0;
        let mut gamma = [[g; N_PHASES]; N_PHASES];
        for (a, row) in gamma.iter_mut().enumerate() {
            row[a] = 0.0;
        }
        Self {
            sys: TernarySystem::ag_al_cu(),
            eps: 2.0,
            tau: 1.0,
            gamma,
            dx: 1.0,
            dt: 0.08,
            // Slightly undercooled at the bottom so nuclei grow, with the
            // eutectic isotherm inside the domain.
            t0: 0.97,
            grad_g: 0.001,
            vel_v: 0.02,
            enable_atc: true,
        }
    }

    /// Frozen-temperature ansatz: T(z, t) = t0 + G (z·dx − v·t), constant in
    /// each x-y-slice (Sec. 2; Fig. 2).
    #[inline(always)]
    pub fn temperature(&self, global_z: f64, time: f64) -> f64 {
        self.t0 + self.grad_g * (global_z * self.dx - self.vel_v * time)
    }

    /// ∂T/∂t of the frozen profile (spatially constant): −G·v.
    #[inline(always)]
    pub fn dtemp_dt(&self) -> f64 {
        -self.grad_g * self.vel_v
    }

    /// Largest surface energy (used by the stability estimate).
    pub fn gamma_max(&self) -> f64 {
        let mut m: f64 = 0.0;
        for a in 0..N_PHASES {
            for b in 0..N_PHASES {
                if a != b {
                    m = m.max(self.gamma[a][b]);
                }
            }
        }
        m
    }

    /// Check explicit-Euler stability limits.
    ///
    /// The µ-equation is diffusive with effective diffusivity D_α (χ cancels
    /// between mobility and susceptibility), the φ-equation with effective
    /// diffusivity ≈ 2 T γ_max / τ. Both must satisfy the 3-D stability
    /// bound `dt ≤ dx² / (6 D)` with margin.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.eps > 0.0 && self.tau > 0.0 && self.dx > 0.0 && self.dt > 0.0) {
            return Err("eps, tau, dx, dt must be positive".into());
        }
        let d_mu = self
            .sys
            .phases
            .iter()
            .map(|p| p.diffusivity)
            .fold(0.0f64, f64::max);
        // The moving window keeps temperatures near T_eu; bound the profile
        // by a 512-cell domain height.
        let t_max = self.t0 + self.grad_g.abs() * 512.0;
        let d_phi = t_max * self.gamma_max() / self.tau;
        let d = d_mu.max(d_phi);
        let dt_max = self.dx * self.dx / (6.0 * d);
        if self.dt > dt_max {
            return Err(format!(
                "dt = {} exceeds stability limit {:.4} (D_mu = {d_mu}, D_phi = {d_phi:.3})",
                self.dt, dt_max
            ));
        }
        for a in 0..N_PHASES {
            for b in 0..N_PHASES {
                if (self.gamma[a][b] - self.gamma[b][a]).abs() > 1e-14 {
                    return Err(format!("gamma not symmetric at ({a},{b})"));
                }
            }
        }
        Ok(())
    }

    /// Scaled obstacle-potential prefactor 16/π².
    #[inline(always)]
    pub fn obstacle_scale() -> f64 {
        16.0 / (core::f64::consts::PI * core::f64::consts::PI)
    }

    /// Anti-trapping prefactor π ε / 4 (Eq. 4).
    #[inline(always)]
    pub fn atc_prefactor(&self) -> f64 {
        core::f64::consts::PI * self.eps / 4.0
    }

    /// Per-phase dc^eq/dT slopes (temperature-independent).
    pub fn dc_dt_coeffs(&self) -> [[f64; N_COMP]; N_PHASES] {
        core::array::from_fn(|a| self.sys.dc_dt(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_stable() {
        ModelParams::ag_al_cu()
            .validate()
            .expect("default params valid");
    }

    #[test]
    fn unstable_dt_rejected() {
        let mut p = ModelParams::ag_al_cu();
        p.dt = 10.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn asymmetric_gamma_rejected() {
        let mut p = ModelParams::ag_al_cu();
        p.gamma[0][1] = 2.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn temperature_profile_moves_with_velocity() {
        let p = ModelParams::ag_al_cu();
        let t_a = p.temperature(10.0, 0.0);
        let t_b = p.temperature(10.0, 100.0);
        // Temperature at a fixed point drops as the hot zone moves up.
        assert!(t_b < t_a);
        assert!((t_a - t_b - p.grad_g * p.vel_v * 100.0).abs() < 1e-12);
        assert!((p.dtemp_dt() + p.grad_g * p.vel_v).abs() < 1e-15);
        // Higher z is hotter (liquid on top).
        assert!(p.temperature(50.0, 0.0) > p.temperature(0.0, 0.0));
    }
}
