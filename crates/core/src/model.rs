//! Scalar per-cell / per-face model primitives — the single source of truth
//! for the discretized equations.
//!
//! Every kernel variant (reference, basic scalar, SIMD cellwise/four-cell)
//! implements the same math; the scalar kernels call these primitives
//! directly, the manually vectorized kernels re-derive them lane-wise, and
//! the equivalence test suite pins all of them against each other (the
//! paper: "a regularly running test suite checks all kernel versions for
//! equivalence", Sec. 5.1.1).
//!
//! # Discretization summary
//!
//! φ-update (Eqs. 1–2), one cell:
//!
//! ```text
//! δF/δφ_α = Tε (∂a/∂φ_α − ∇·Ψ_α)  +  (16T/π²ε) Σ_β γ_αβ φ_β  +  ∂ψ/∂φ_α
//! ∂φ_α/∂t = −(1/τε) (δF/δφ_α − mean_β δF/δφ_β),   then simplex projection
//! ```
//!
//! with the gradient energy a(φ,∇φ) = Σ_{α<β} γ_αβ |q_αβ|²,
//! q_αβ = φ_α∇φ_β − φ_β∇φ_α. The divergence of Ψ_α = ∂a/∂∇φ_α is evaluated
//! in staggered form: the face-normal component of Ψ_α needs only the
//! face-normal derivatives (the transverse parts of q never enter), so the
//! φ-kernel is a D3C7 stencil exactly as the paper states, and face values
//! can be buffered and reused ("staggered buffer" optimization).
//!
//! µ-update (Eq. 3), one cell:
//!
//! ```text
//! ∂µ/∂t = χ(φ)⁻¹ [ ∇·(M(φ)∇µ) − ∇·J_at − Σ_α c_α(µ,T) ∂h_α/∂t − (∂c/∂T)(∂T/∂t) ]
//! ```
//!
//! with Moelans interpolation h_α = φ_α²/Σφ², diagonal susceptibility
//! χ = Σ_α h_α/(2k_α), mobility M = Σ_α φ_α D_α χ_α at staggered faces
//! (D3C7), and the anti-trapping current J_at (Eq. 4) at staggered faces
//! whose normalized φ-gradients need transverse derivatives → D3C19.

use crate::params::ModelParams;
use crate::temperature::SliceCtx;
use crate::{LIQ, N_COMP, N_PHASES};

/// Gradient of each phase at a cell from central differences:
/// `grads[α] = (∂x, ∂y, ∂z) φ_α`.
#[inline(always)]
pub fn central_gradients(
    xm: [f64; N_PHASES],
    xp: [f64; N_PHASES],
    ym: [f64; N_PHASES],
    yp: [f64; N_PHASES],
    zm: [f64; N_PHASES],
    zp: [f64; N_PHASES],
    inv_2dx: f64,
) -> [[f64; 3]; N_PHASES] {
    core::array::from_fn(|a| {
        [
            (xp[a] - xm[a]) * inv_2dx,
            (yp[a] - ym[a]) * inv_2dx,
            (zp[a] - zm[a]) * inv_2dx,
        ]
    })
}

/// Moelans interpolation weights h_α = φ_α² / Σ_β φ_β².
///
/// Returns uniform weights at the (unphysical) all-zero point to stay
/// finite; the simplex projection guarantees Σφ² ≥ 1/N in practice.
#[inline(always)]
pub fn interp_h(phi: [f64; N_PHASES]) -> [f64; N_PHASES] {
    let s: f64 = phi.iter().map(|p| p * p).sum();
    if s <= 0.0 {
        return [1.0 / N_PHASES as f64; N_PHASES];
    }
    let inv = 1.0 / s;
    core::array::from_fn(|a| phi[a] * phi[a] * inv)
}

/// Face-normal component of Ψ_α = ∂a/∂∇φ_α at the staggered face between
/// cells `l` and `r` (r is the +axis neighbor):
///
/// Ψ_α·ê_d = −2 Σ_{β≠α} γ_αβ φF_β (φF_α ∂_d φ_β − φF_β ∂_d φ_α)
///        = −2 [ φF_α (Γ·(φF ⊙ g))_α − g_α (Γ·(φF ⊙ φF))_α ]
///
/// with φF = (φ_l+φ_r)/2 and g = (φ_r − φ_l)/dx. Only face-normal
/// derivatives appear — this is why the φ-kernel stays D3C7.
#[inline(always)]
pub fn phi_face_flux(
    gamma: &[[f64; N_PHASES]; N_PHASES],
    l: [f64; N_PHASES],
    r: [f64; N_PHASES],
    inv_dx: f64,
) -> [f64; N_PHASES] {
    let mut pf = [0.0; N_PHASES];
    let mut g = [0.0; N_PHASES];
    for a in 0..N_PHASES {
        pf[a] = 0.5 * (l[a] + r[a]);
        g[a] = (r[a] - l[a]) * inv_dx;
    }
    let mut out = [0.0; N_PHASES];
    for a in 0..N_PHASES {
        let mut s1 = 0.0; // Σ_β γ_αβ φF_β g_β
        let mut s2 = 0.0; // Σ_β γ_αβ φF_β²
        for b in 0..N_PHASES {
            s1 += gamma[a][b] * pf[b] * g[b];
            s2 += gamma[a][b] * pf[b] * pf[b];
        }
        out[a] = -2.0 * (pf[a] * s1 - g[a] * s2);
    }
    out
}

/// ∂a/∂φ_α at a cell:
/// ∂a/∂φ_α = 2 Σ_{β≠α} γ_αβ (q_αβ·∇φ_β)
///         = 2 [ φ_α Σ_β γ_αβ |∇φ_β|² − Σ_axis ∂φ_α Σ_β γ_αβ φ_β ∂φ_β ].
#[inline(always)]
pub fn da_dphi(
    gamma: &[[f64; N_PHASES]; N_PHASES],
    phi: [f64; N_PHASES],
    grads: &[[f64; 3]; N_PHASES],
) -> [f64; N_PHASES] {
    let mut norm2 = [0.0; N_PHASES];
    for a in 0..N_PHASES {
        norm2[a] =
            grads[a][0] * grads[a][0] + grads[a][1] * grads[a][1] + grads[a][2] * grads[a][2];
    }
    let mut out = [0.0; N_PHASES];
    for a in 0..N_PHASES {
        let mut s_norm = 0.0; // Σ_β γ_αβ |∇φ_β|²
        let mut s_dot = 0.0; // Σ_β γ_αβ φ_β (∇φ_α·∇φ_β)
        for b in 0..N_PHASES {
            s_norm += gamma[a][b] * norm2[b];
            let dot =
                grads[a][0] * grads[b][0] + grads[a][1] * grads[b][1] + grads[a][2] * grads[b][2];
            s_dot += gamma[a][b] * phi[b] * dot;
        }
        out[a] = 2.0 * (phi[a] * s_norm - s_dot);
    }
    out
}

/// Obstacle-potential derivative (unscaled): ∂ω̂/∂φ_α = Σ_β γ_αβ φ_β.
/// The caller multiplies by the slice prefactor 16T/(π²ε).
#[inline(always)]
pub fn obstacle_deriv(
    gamma: &[[f64; N_PHASES]; N_PHASES],
    phi: [f64; N_PHASES],
) -> [f64; N_PHASES] {
    let mut out = [0.0; N_PHASES];
    for a in 0..N_PHASES {
        let mut s = 0.0;
        for b in 0..N_PHASES {
            s += gamma[a][b] * phi[b];
        }
        out[a] = s;
    }
    out
}

/// Driving force ∂ψ/∂φ_α = Σ_β ψ_β ∂h_β/∂φ_α = (2φ_α/S)(ψ_α − Σ_β h_β ψ_β)
/// with S = Σφ². Zero for pure cells (the φ-kernel "shortcut" in liquid).
#[inline(always)]
pub fn driving_force(ctx: &SliceCtx, phi: [f64; N_PHASES], mu: [f64; N_COMP]) -> [f64; N_PHASES] {
    let mut psi = [0.0; N_PHASES];
    for a in 0..N_PHASES {
        psi[a] = ctx.grand_potential(a, mu);
    }
    let s: f64 = phi.iter().map(|p| p * p).sum();
    if s <= 0.0 {
        return [0.0; N_PHASES];
    }
    let inv_s = 1.0 / s;
    let mut psi_bar = 0.0;
    for a in 0..N_PHASES {
        psi_bar += phi[a] * phi[a] * inv_s * psi[a];
    }
    core::array::from_fn(|a| 2.0 * phi[a] * inv_s * (psi[a] - psi_bar))
}

/// Complete φ-update of one cell given the six staggered face fluxes
/// (`faces[f][α]`, ordered like [`eutectica_blockgrid::Face`]), the central
/// gradients, and the chemical potential. Returns the projected new φ.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn phi_cell_update(
    params: &ModelParams,
    ctx: &SliceCtx,
    phi: [f64; N_PHASES],
    grads: &[[f64; 3]; N_PHASES],
    faces: &[[f64; N_PHASES]; 6],
    mu: [f64; N_COMP],
    skip_driving: bool,
) -> [f64; N_PHASES] {
    let inv_dx = 1.0 / params.dx;
    let da = da_dphi(&params.gamma, phi, grads);
    let obst = obstacle_deriv(&params.gamma, phi);
    let drive = if skip_driving {
        [0.0; N_PHASES]
    } else {
        driving_force(ctx, phi, mu)
    };
    let mut vdf = [0.0; N_PHASES];
    let mut mean = 0.0;
    for a in 0..N_PHASES {
        let div = (faces[1][a] - faces[0][a] + faces[3][a] - faces[2][a] + faces[5][a]
            - faces[4][a])
            * inv_dx;
        vdf[a] = ctx.pref_grad * (da[a] - div) + ctx.pref_obst * obst[a] + drive[a];
        mean += vdf[a];
    }
    mean *= 1.0 / N_PHASES as f64;
    let rate = params.dt / (params.tau * params.eps);
    let raw: [f64; N_PHASES] = core::array::from_fn(|a| phi[a] - rate * (vdf[a] - mean));
    crate::simplex::project_to_simplex(raw)
}

/// True if the cell is a pure-phase bulk cell with all six neighbors pure in
/// the same phase — then ∂φ/∂t = 0 exactly (obstacle clipping) and the
/// φ-kernel may skip the cell entirely (bulk shortcut).
#[inline(always)]
pub fn is_bulk(phi: [f64; N_PHASES], neighbors: &[[f64; N_PHASES]; 6]) -> bool {
    let mut pure = usize::MAX;
    for a in 0..N_PHASES {
        if phi[a] == 1.0 {
            pure = a;
            break;
        }
    }
    if pure == usize::MAX {
        return false;
    }
    neighbors.iter().all(|n| n[pure] == 1.0)
}

/// True if the cell is pure in any phase (driving force is exactly zero).
#[inline(always)]
pub fn is_pure(phi: [f64; N_PHASES]) -> bool {
    phi.contains(&1.0)
}

/// Gradient-flux part of the µ-equation at a staggered face: M(φF)·∇µ·ê_d
/// with M = Σ_α φF_α D_α χ_α (diagonal per component).
#[inline(always)]
pub fn mu_face_flux_gradient(
    ctx_face: &SliceCtx,
    phi_l: [f64; N_PHASES],
    phi_r: [f64; N_PHASES],
    mu_l: [f64; N_COMP],
    mu_r: [f64; N_COMP],
    inv_dx: f64,
) -> [f64; N_COMP] {
    let mut m = [0.0; N_COMP];
    for a in 0..N_PHASES {
        let pf = 0.5 * (phi_l[a] + phi_r[a]);
        m[0] += pf * ctx_face.mob[a][0];
        m[1] += pf * ctx_face.mob[a][1];
    }
    [
        m[0] * (mu_r[0] - mu_l[0]) * inv_dx,
        m[1] * (mu_r[1] - mu_l[1]) * inv_dx,
    ]
}

/// Anti-trapping current J_at·ê_d at a staggered face (Eq. 4).
///
/// `grad_f[α]` are the full 3-component face gradients of φ (normal
/// component from the face difference, transverse from averaged central
/// differences — the D3C19 part of the µ-kernel). `dphidt_f[α]` is the
/// face-averaged ∂φ_α/∂t, `axis` the face normal (0/1/2).
///
/// This eager form is **branchless**: guard conditions multiply contributions
/// by an exact 0/1 indicator instead of branching, so the no-shortcut
/// µ-kernel has uniform cost everywhere in the domain (the paper: "the
/// kernel runtime for updating µ is, up to measurement error, equal in the
/// complete domain"). The shortcut variant in the sweeps replaces the
/// indicators by early-out branches — the results are identical because the
/// guards test exact zeros:
/// * liquid fraction zero at the face → J_at = 0 (h_ℓ = 0),
/// * |∇φ_ℓ| = 0 (bulk liquid) → J_at = 0,
/// * per-solid: φ_α = 0 or |∇φ_α| = 0 → that term is 0.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn jat_face_flux(
    ctx_face: &SliceCtx,
    prefactor: f64,
    phi_f: &[f64; N_PHASES],
    grad_f: &[[f64; 3]; N_PHASES],
    dphidt_f: &[f64; N_PHASES],
    mu_f: [f64; N_COMP],
    axis: usize,
) -> [f64; N_COMP] {
    let pl = phi_f[LIQ];
    let gl = grad_f[LIQ];
    let nl2 = gl[0] * gl[0] + gl[1] * gl[1] + gl[2] * gl[2];
    let ind_l = ((pl > 0.0) & (nl2 > 0.0)) as u8 as f64;
    let inv_nl = 1.0 / nl2.max(f64::MIN_POSITIVE).sqrt();
    let inv_pl = 1.0 / pl.max(f64::MIN_POSITIVE);
    let s: f64 = phi_f.iter().map(|p| p * p).sum();
    let h_l = pl * pl / s;
    let mut out = [0.0; N_COMP];
    for a in 0..LIQ {
        let pa = phi_f[a];
        let ga = grad_f[a];
        let na2 = ga[0] * ga[0] + ga[1] * ga[1] + ga[2] * ga[2];
        let ind_a = ((pa > 0.0) & (na2 > 0.0)) as u8 as f64;
        let inv_na = 1.0 / na2.max(f64::MIN_POSITIVE).sqrt();
        // g_α h_ℓ / sqrt(φ_α φ_ℓ) with g_α = φ_α  →  h_ℓ sqrt(φ_α/φ_ℓ).
        let weight = h_l * (pa.max(0.0) * inv_pl).sqrt();
        let n_dot = (ga[0] * gl[0] + ga[1] * gl[1] + ga[2] * gl[2]) * inv_na * inv_nl;
        let cdiff = ctx_face.c_liq_minus_c(a, mu_f);
        let scale = ind_l * ind_a * prefactor * weight * dphidt_f[a] * n_dot * ga[axis] * inv_na;
        out[0] += scale * cdiff[0];
        out[1] += scale * cdiff[1];
    }
    out
}

/// Diagonal susceptibility χ(φ) = Σ_α h_α(φ)/(2k_α).
#[inline(always)]
pub fn susceptibility(ctx: &SliceCtx, phi: [f64; N_PHASES]) -> [f64; N_COMP] {
    let h = interp_h(phi);
    let mut out = [0.0; N_COMP];
    for a in 0..N_PHASES {
        out[0] += h[a] * ctx.inv2k[a][0];
        out[1] += h[a] * ctx.inv2k[a][1];
    }
    out
}

/// Source term −Σ_α c_α(µ,T) ∂h_α/∂t from the φ evolution.
#[inline(always)]
pub fn phase_change_source(
    ctx: &SliceCtx,
    phi_old: [f64; N_PHASES],
    phi_new: [f64; N_PHASES],
    mu: [f64; N_COMP],
    inv_dt: f64,
) -> [f64; N_COMP] {
    let h_old = interp_h(phi_old);
    let h_new = interp_h(phi_new);
    let mut out = [0.0; N_COMP];
    for a in 0..N_PHASES {
        let dh = (h_new[a] - h_old[a]) * inv_dt;
        let c = ctx.c_of_mu(a, mu);
        out[0] -= c[0] * dh;
        out[1] -= c[1] * dh;
    }
    out
}

/// Temperature-drift term −(∂c/∂T)(∂T/∂t) with ∂c/∂T = Σ_α h_α s_α.
#[inline(always)]
pub fn temp_drift(
    dc_dt: &[[f64; N_COMP]; N_PHASES],
    phi: [f64; N_PHASES],
    dtemp_dt: f64,
) -> [f64; N_COMP] {
    let h = interp_h(phi);
    let mut s = [0.0; N_COMP];
    for a in 0..N_PHASES {
        s[0] += h[a] * dc_dt[a][0];
        s[1] += h[a] * dc_dt[a][1];
    }
    [-s[0] * dtemp_dt, -s[1] * dtemp_dt]
}

/// Complete µ-update of one cell: `µ_new = µ + dt (div + source + drift)/χ`.
#[inline(always)]
pub fn mu_cell_update(
    mu: [f64; N_COMP],
    div: [f64; N_COMP],
    source: [f64; N_COMP],
    drift: [f64; N_COMP],
    chi: [f64; N_COMP],
    dt: f64,
) -> [f64; N_COMP] {
    [
        mu[0] + dt * (div[0] + source[0] + drift[0]) / chi[0],
        mu[1] + dt * (div[1] + source[1] + drift[1]) / chi[1],
    ]
}

/// Mixture concentration c(φ, µ, T) = Σ_α h_α c_α(µ, T) — the conserved
/// quantity of the µ-equation (used by conservation tests and analysis).
#[inline]
pub fn mixture_concentration(
    ctx: &SliceCtx,
    phi: [f64; N_PHASES],
    mu: [f64; N_COMP],
) -> [f64; N_COMP] {
    let h = interp_h(phi);
    let mut out = [0.0; N_COMP];
    for a in 0..N_PHASES {
        let c = ctx.c_of_mu(a, mu);
        out[0] += h[a] * c[0];
        out[1] += h[a] * c[1];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::ag_al_cu()
    }

    #[test]
    fn interp_h_partitions_unity_on_simplex() {
        for phi in [
            [1.0, 0.0, 0.0, 0.0],
            [0.25, 0.25, 0.25, 0.25],
            [0.5, 0.3, 0.2, 0.0],
        ] {
            let h = interp_h(phi);
            let sum: f64 = h.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(h.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        // Pure phase: one-hot.
        assert_eq!(interp_h([0.0, 1.0, 0.0, 0.0]), [0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn phi_face_flux_antisymmetric_pairs_cancel() {
        // A uniform field has zero face flux.
        let p = params();
        let phi = [0.4, 0.3, 0.2, 0.1];
        let f = phi_face_flux(&p.gamma, phi, phi, 1.0);
        assert_eq!(f, [0.0; 4]);
    }

    #[test]
    fn two_phase_face_flux_matches_analytic() {
        // For two phases with φ1+φ2 = 1: Ψ_1·ê = −2γ[φF1 (φF1 g1·γ-weighted…)]
        // reduces to Ψ_1·ê_d = 2γ ∂_d φ_1 · (φF1² + φF1 φF2 + …); verify
        // against direct summation of the defining formula.
        let p = params();
        let l = [0.3, 0.7, 0.0, 0.0];
        let r = [0.5, 0.5, 0.0, 0.0];
        let f = phi_face_flux(&p.gamma, l, r, 1.0);
        // Direct: Ψ_α = −2 Σ_β γ φF_β (φF_α g_β − φF_β g_α)
        let pf: Vec<f64> = (0..4).map(|a| 0.5 * (l[a] + r[a])).collect();
        let g: Vec<f64> = (0..4).map(|a| r[a] - l[a]).collect();
        for a in 0..4 {
            let mut direct = 0.0;
            for b in 0..4 {
                direct += p.gamma[a][b] * pf[b] * (pf[a] * g[b] - pf[b] * g[a]);
            }
            direct *= -2.0;
            assert!(
                (f[a] - direct).abs() < 1e-14,
                "phase {a}: {f:?} vs {direct}"
            );
        }
    }

    #[test]
    fn da_dphi_zero_for_uniform_gradients_zero() {
        let p = params();
        let grads = [[0.0; 3]; 4];
        assert_eq!(da_dphi(&p.gamma, [0.25; 4], &grads), [0.0; 4]);
    }

    #[test]
    fn da_dphi_matches_direct_formula() {
        let p = params();
        let phi = [0.4, 0.3, 0.2, 0.1];
        let grads = [
            [0.1, -0.2, 0.05],
            [-0.1, 0.15, 0.0],
            [0.02, 0.05, -0.05],
            [-0.02, 0.0, 0.0],
        ];
        let got = da_dphi(&p.gamma, phi, &grads);
        for a in 0..4 {
            let mut direct = 0.0;
            for b in 0..4 {
                // 2 γ_αβ (q_αβ · ∇φ_β), q_αβ = φ_α∇φ_β − φ_β∇φ_α
                let mut q_dot = 0.0;
                for d in 0..3 {
                    let q = phi[a] * grads[b][d] - phi[b] * grads[a][d];
                    q_dot += q * grads[b][d];
                }
                direct += 2.0 * p.gamma[a][b] * q_dot;
            }
            assert!((got[a] - direct).abs() < 1e-13, "phase {a}");
        }
    }

    #[test]
    fn driving_force_zero_at_pure_and_balanced() {
        let p = params();
        let ctx = SliceCtx::at(&p, 0.98);
        // Pure cells: exactly zero (shortcut validity).
        for a in 0..4 {
            let mut phi = [0.0; 4];
            phi[a] = 1.0;
            assert_eq!(driving_force(&ctx, phi, [0.1, -0.1]), [0.0; 4]);
        }
        // Sum over phases weighted by φ_α is zero? Not generally, but the
        // projected update conserves Σφ; check driving force is finite.
        let d = driving_force(&ctx, [0.4, 0.3, 0.2, 0.1], [0.0, 0.0]);
        assert!(d.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn driving_force_pushes_solidification_below_t_eu() {
        // In a solid-liquid interface below T_eu, the solid grand potential
        // is lower, so ∂ψ/∂φ_solid < 0 (growth after the −1/τε sign).
        let p = params();
        let ctx = SliceCtx::at(&p, 0.95);
        let phi = [0.5, 0.0, 0.0, 0.5]; // Al / liquid interface
        let d = driving_force(&ctx, phi, [0.0, 0.0]);
        assert!(d[0] < 0.0, "solid driving {d:?}");
        assert!(d[3] > 0.0, "liquid driving {d:?}");
    }

    #[test]
    fn bulk_detection() {
        let pure = [0.0, 0.0, 1.0, 0.0];
        let mixed = [0.5, 0.0, 0.5, 0.0];
        assert!(is_bulk(pure, &[pure; 6]));
        let mut nb = [pure; 6];
        nb[3] = mixed;
        assert!(!is_bulk(pure, &nb));
        assert!(!is_bulk(mixed, &[pure; 6]));
        assert!(is_pure(pure));
        assert!(!is_pure(mixed));
    }

    #[test]
    fn bulk_cell_update_is_identity() {
        // The projected update of a bulk cell returns exactly the corner.
        let p = params();
        let ctx = SliceCtx::at(&p, 0.97);
        let phi = [0.0, 1.0, 0.0, 0.0];
        let grads = [[0.0; 3]; 4];
        let faces = [[0.0; 4]; 6];
        let out = phi_cell_update(&p, &ctx, phi, &grads, &faces, [0.0, 0.0], false);
        assert_eq!(out, phi, "bulk cell moved: {out:?}");
    }

    #[test]
    fn mu_gradient_flux_uniform_mu_is_zero() {
        let p = params();
        let ctx = SliceCtx::at(&p, 0.97);
        let f = mu_face_flux_gradient(
            &ctx,
            [0.2, 0.2, 0.2, 0.4],
            [0.0, 0.0, 0.0, 1.0],
            [0.3, -0.1],
            [0.3, -0.1],
            1.0,
        );
        assert_eq!(f, [0.0; 2]);
    }

    #[test]
    fn mu_gradient_flux_scales_with_liquid_fraction() {
        let p = params();
        let ctx = SliceCtx::at(&p, 0.97);
        let liq = [0.0, 0.0, 0.0, 1.0];
        let sol = [1.0, 0.0, 0.0, 0.0];
        let mu_l = [0.0, 0.0];
        let mu_r = [1.0, 1.0];
        let f_liq = mu_face_flux_gradient(&ctx, liq, liq, mu_l, mu_r, 1.0);
        let f_sol = mu_face_flux_gradient(&ctx, sol, sol, mu_l, mu_r, 1.0);
        assert!(f_liq[0] > 100.0 * f_sol[0], "liquid diffuses much faster");
    }

    #[test]
    fn jat_zero_in_bulk_regions() {
        let p = params();
        let ctx = SliceCtx::at(&p, 0.97);
        let pref = p.atc_prefactor();
        let grad = [[0.1, 0.0, 0.0]; 4];
        let dphidt = [0.1, 0.0, 0.0, -0.1];
        // No liquid at the face.
        let f = jat_face_flux(
            &ctx,
            pref,
            &[0.5, 0.5, 0.0, 0.0],
            &grad,
            &dphidt,
            [0.0; 2],
            0,
        );
        assert_eq!(f, [0.0; 2]);
        // Bulk liquid: zero liquid gradient.
        let mut g2 = grad;
        g2[LIQ] = [0.0; 3];
        let f = jat_face_flux(&ctx, pref, &[0.0, 0.0, 0.0, 1.0], &g2, &dphidt, [0.0; 2], 0);
        assert_eq!(f, [0.0; 2]);
    }

    #[test]
    fn jat_nonzero_at_solidifying_front() {
        let p = params();
        let ctx = SliceCtx::at(&p, 0.97);
        let pref = p.atc_prefactor();
        // Al solidifying upward: φ_Al decreasing with z at the front,
        // liquid increasing; front moving so ∂φ_Al/∂t > 0 locally.
        let phi_f = [0.5, 0.0, 0.0, 0.5];
        let grad_f = [[0.0, 0.0, -0.3], [0.0; 3], [0.0; 3], [0.0, 0.0, 0.3]];
        let dphidt = [0.2, 0.0, 0.0, -0.2];
        let f = jat_face_flux(&ctx, pref, &phi_f, &grad_f, &dphidt, [0.0; 2], 2);
        assert!(
            f[0] != 0.0 || f[1] != 0.0,
            "expected nonzero J_at, got {f:?}"
        );
        // Al rejects Ag and Cu (c_l > c_al): check sign pattern is consistent
        // with rejection *into* the liquid (flux along +z where liquid is).
        assert!(f[0].is_finite() && f[1].is_finite());
    }

    #[test]
    fn susceptibility_interpolates_between_phases() {
        let p = params();
        let ctx = SliceCtx::at(&p, 0.97);
        let chi_l = susceptibility(&ctx, [0.0, 0.0, 0.0, 1.0]);
        assert!((chi_l[0] - ctx.inv2k[LIQ][0]).abs() < 1e-15);
        let chi_s = susceptibility(&ctx, [1.0, 0.0, 0.0, 0.0]);
        assert!((chi_s[0] - ctx.inv2k[0][0]).abs() < 1e-15);
        let chi_m = susceptibility(&ctx, [0.5, 0.0, 0.0, 0.5]);
        assert!(chi_m[0] > chi_s[0] && chi_m[0] < chi_l[0]);
    }

    #[test]
    fn source_term_conserves_mixture_concentration() {
        // d/dt [Σ h_α c_α] from interface motion alone must be cancelled by
        // the source: χ ∂µ/∂t = source ⇒ ∂c/∂t = χ∂µ/∂t + Σ c_α ∂h_α/∂t = 0.
        let p = params();
        let ctx = SliceCtx::at(&p, 0.97);
        let phi_old = [0.30, 0.10, 0.05, 0.55];
        let phi_new = [0.32, 0.11, 0.05, 0.52];
        let mu = [0.05, -0.02];
        let dt = p.dt;
        let src = phase_change_source(&ctx, phi_old, phi_new, mu, 1.0 / dt);
        let chi = susceptibility(&ctx, phi_old);
        let mu_new = [mu[0] + dt * src[0] / chi[0], mu[1] + dt * src[1] / chi[1]];
        let c_old = mixture_concentration(&ctx, phi_old, mu);
        let c_new = mixture_concentration(&ctx, phi_new, mu_new);
        // First-order in dφ: conservation up to O(dφ²) (χ evaluated at old φ).
        for i in 0..2 {
            assert!(
                (c_new[i] - c_old[i]).abs() < 5e-3 * c_old[i].abs().max(1e-3),
                "component {i}: {c_old:?} -> {c_new:?}"
            );
        }
    }
}
