//! In-situ field health monitoring and deterministic numerical-fault
//! injection — the silent-corruption defense layer.
//!
//! At the paper's scale (up to 262k cores) silent data corruption and
//! numerical divergence dominate failure modes long before rank death does:
//! a single NaN born in one cell of a φ-sweep propagates through ghost
//! exchanges and poisons the whole domain without any process ever dying.
//! This module enforces the solver's field invariants at runtime with cheap
//! periodic per-block scans:
//!
//! * every φ and µ value is finite,
//! * φ lies on the Gibbs simplex: Σ_α φ_α within tolerance of 1 and every
//!   component within `[−tol, 1 + tol]` (the contract established by
//!   [`crate::simplex::project_to_simplex`]),
//! * µ lies inside physically plausible bounds derived from the parabolic
//!   thermodynamics (`TernarySystem::mu_plausible_bounds`),
//! * optionally, the solidification front advances no faster than a
//!   configured number of cells per step (interface-velocity sanity).
//!
//! Per-rank [`ScanStats`] are reduced into a cross-rank [`HealthReport`]
//! via `Rank::allreduce_u64s` by the timeloop; `pfio::resilient` reacts to
//! unhealthy reports with in-flight rollback (see its `RecoveryPolicy`).
//!
//! # What a scan can and cannot see
//!
//! Invariant scans detect corruption that leaves the *valid manifold*:
//! non-finite values, off-simplex φ, implausible µ. Corruption that lands
//! back inside the valid region (e.g. a low-order mantissa flip) is
//! indistinguishable from legitimate state by construction — defending
//! against that requires redundant computation, not invariants. In practice
//! exponent-level upsets are the detectable signature, and the φ/µ update
//! equations propagate any non-finite input into µ (which nothing clips),
//! so NaN/Inf-class corruption is caught within one scan cadence.
//!
//! [`FieldFaultPlan`] is the numerical-fault analogue of `comm::FaultPlan`:
//! a seed-deterministic plan of bit-flips / NaN writes into φ/µ storage at
//! chosen (step, block, cell) coordinates, injected by the timeloop just
//! before the step consumes the source fields. Each fault fires exactly
//! once — a rollback past the injection step does *not* re-inject, modeling
//! a transient upset rather than a stuck bit.

use crate::params::ModelParams;
use crate::state::BlockState;
use crate::sweep_pool::{slab, SweepPool};
use crate::{N_COMP, N_PHASES};
use std::sync::Mutex;

/// Default scan cadence (steps between invariant scans).
pub const DEFAULT_SCAN_EVERY: usize = 4;

/// Default tolerance on the Gibbs-simplex invariants.
pub const DEFAULT_SIMPLEX_TOL: f64 = 1e-6;

/// Configuration of the periodic invariant scans.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Scan cadence: scan after every `every`-th step (0 disables scans).
    pub every: usize,
    /// Tolerance on |Σφ − 1| and on the per-component box `[−tol, 1+tol]`.
    pub simplex_tol: f64,
    /// Plausible per-component µ bounds (inclusive), usually derived from
    /// the thermodynamics via [`HealthConfig::for_params`].
    pub mu_bounds: [(f64, f64); N_COMP],
    /// Maximum plausible front displacement in cells per step. Checked only
    /// when finite (the default is `INFINITY` = disabled, because the
    /// front estimator jumps legitimately while the first solid nucleates).
    pub max_front_speed: f64,
}

impl HealthConfig {
    /// Scan configuration derived from the model parameters: default
    /// cadence and simplex tolerance, µ bounds from
    /// `TernarySystem::mu_plausible_bounds` over the temperature range the
    /// frozen-T ansatz can produce across a generous 1024-cell column,
    /// doubled in half-width for slack. Front-speed sanity is off by
    /// default; enable with [`HealthConfig::with_front_speed`].
    pub fn for_params(params: &ModelParams) -> Self {
        let span = params.grad_g.abs() * 1024.0 * params.dx + 0.5;
        let (t_lo, t_hi) = (params.t0 - span, params.t0 + span);
        let tight = params.sys.mu_plausible_bounds(t_lo, t_hi, 0.5);
        let mut mu_bounds = [(0.0, 0.0); N_COMP];
        for i in 0..N_COMP {
            let (lo, hi) = tight[i];
            let (mid, half) = (0.5 * (lo + hi), 0.5 * (hi - lo));
            mu_bounds[i] = (mid - 2.0 * half, mid + 2.0 * half);
        }
        Self {
            every: DEFAULT_SCAN_EVERY,
            simplex_tol: DEFAULT_SIMPLEX_TOL,
            mu_bounds,
            max_front_speed: f64::INFINITY,
        }
    }

    /// Same configuration with a different scan cadence.
    pub fn with_every(mut self, every: usize) -> Self {
        self.every = every;
        self
    }

    /// Same configuration with interface-velocity sanity enabled at
    /// `cells_per_step` maximum front displacement.
    pub fn with_front_speed(mut self, cells_per_step: f64) -> Self {
        self.max_front_speed = cells_per_step;
        self
    }
}

/// Which invariant a cell violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BadKind {
    /// A φ component is NaN or infinite.
    PhiNonFinite,
    /// φ is finite but off the Gibbs simplex (sum or component bounds).
    PhiOffSimplex,
    /// A µ component is NaN or infinite.
    MuNonFinite,
    /// µ is finite but outside the plausible thermodynamic bounds.
    MuOutOfBounds,
}

/// First offending cell found by a scan (diagnostic breadcrumb).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BadCell {
    /// Global block id.
    pub block: u64,
    /// Padded (ghost-inclusive) cell coordinates within the block.
    pub cell: [usize; 3],
    /// Violated invariant.
    pub kind: BadKind,
}

impl BadCell {
    /// Deterministic ordering key (block, z, y, x) so merged scans report
    /// the same first-bad cell regardless of slab/thread scheduling.
    fn key(&self) -> (u64, usize, usize, usize) {
        (self.block, self.cell[2], self.cell[1], self.cell[0])
    }
}

/// Violation counters of one scan (one block, one slab, or a merged total).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScanStats {
    /// Interior cells examined.
    pub cells: u64,
    /// Cells with a non-finite φ component.
    pub phi_nonfinite: u64,
    /// Cells with finite φ off the Gibbs simplex.
    pub phi_off_simplex: u64,
    /// Cells with a non-finite µ component.
    pub mu_nonfinite: u64,
    /// Cells with finite µ outside the plausible bounds.
    pub mu_out_of_bounds: u64,
    /// Deterministically-first offending cell, if any.
    pub first_bad: Option<BadCell>,
}

impl ScanStats {
    /// Total invariant violations.
    pub fn violations(&self) -> u64 {
        self.phi_nonfinite + self.phi_off_simplex + self.mu_nonfinite + self.mu_out_of_bounds
    }

    /// Violation counters in the fixed order used for the cross-rank
    /// reduction: `[phi_nonfinite, phi_off_simplex, mu_nonfinite,
    /// mu_out_of_bounds]`.
    pub fn counts(&self) -> [u64; 4] {
        [
            self.phi_nonfinite,
            self.phi_off_simplex,
            self.mu_nonfinite,
            self.mu_out_of_bounds,
        ]
    }

    /// Accumulate `other` into `self`. Counter sums are order-independent
    /// and `first_bad` keeps the smallest (block, z, y, x) key, so merging
    /// slab partials yields the same result at any thread count.
    pub fn merge(&mut self, other: &ScanStats) {
        self.cells += other.cells;
        self.phi_nonfinite += other.phi_nonfinite;
        self.phi_off_simplex += other.phi_off_simplex;
        self.mu_nonfinite += other.mu_nonfinite;
        self.mu_out_of_bounds += other.mu_out_of_bounds;
        self.first_bad = match (self.first_bad, other.first_bad) {
            (Some(a), Some(b)) => Some(if a.key() <= b.key() { a } else { b }),
            (a, b) => a.or(b),
        };
    }

    fn record(&mut self, block: u64, cell: [usize; 3], kind: BadKind) {
        let bad = BadCell { block, cell, kind };
        self.first_bad = match self.first_bad {
            Some(cur) if cur.key() <= bad.key() => Some(cur),
            _ => Some(bad),
        };
    }
}

/// Scan the interior z-rows `z0..z1` of one block against the invariants.
pub fn scan_block_range(
    state: &BlockState,
    cfg: &HealthConfig,
    block: u64,
    z0: usize,
    z1: usize,
) -> ScanStats {
    let d = state.dims;
    let g = d.ghost;
    let phi = state.phi_src.comps();
    let mu = state.mu_src.comps();
    let tol = cfg.simplex_tol;
    let mut s = ScanStats::default();
    for z in z0..z1 {
        for y in g..g + d.ny {
            let row = d.idx(g, y, z);
            for i in 0..d.nx {
                let idx = row + i;
                let cell = [g + i, y, z];
                s.cells += 1;
                let mut sum = 0.0;
                let mut finite = true;
                let mut boxed = true;
                for c in 0..N_PHASES {
                    let v = phi[c][idx];
                    finite &= v.is_finite();
                    boxed &= (-tol..=1.0 + tol).contains(&v);
                    sum += v;
                }
                if !finite {
                    s.phi_nonfinite += 1;
                    s.record(block, cell, BadKind::PhiNonFinite);
                } else if !boxed || (sum - 1.0).abs() > tol {
                    s.phi_off_simplex += 1;
                    s.record(block, cell, BadKind::PhiOffSimplex);
                }
                let mut mu_finite = true;
                let mut mu_boxed = true;
                for c in 0..N_COMP {
                    let v = mu[c][idx];
                    mu_finite &= v.is_finite();
                    let (lo, hi) = cfg.mu_bounds[c];
                    mu_boxed &= (lo..=hi).contains(&v);
                }
                if !mu_finite {
                    s.mu_nonfinite += 1;
                    s.record(block, cell, BadKind::MuNonFinite);
                } else if !mu_boxed {
                    s.mu_out_of_bounds += 1;
                    s.record(block, cell, BadKind::MuOutOfBounds);
                }
            }
        }
    }
    s
}

/// Scan the full interior of one block (serial).
pub fn scan_block(state: &BlockState, cfg: &HealthConfig, block: u64) -> ScanStats {
    let (z0, z1) = state.dims.interior_z_range();
    scan_block_range(state, cfg, block, z0, z1)
}

/// Scan one block with z-slab work sharing across `pool`. The merge is
/// deterministic (see [`ScanStats::merge`]), so the result is identical to
/// [`scan_block`] at any thread count.
pub fn scan_block_pooled(
    pool: &SweepPool,
    state: &BlockState,
    cfg: &HealthConfig,
    block: u64,
) -> ScanStats {
    let (z0, z1) = state.dims.interior_z_range();
    let parts = pool.threads().min(z1 - z0);
    if parts <= 1 {
        return scan_block_range(state, cfg, block, z0, z1);
    }
    let total = Mutex::new(ScanStats::default());
    pool.run(parts, &|k| {
        let (lo, hi) = slab(z0, z1, parts, k);
        let partial = scan_block_range(state, cfg, block, lo, hi);
        total.lock().unwrap().merge(&partial);
    });
    total.into_inner().unwrap()
}

/// Which field component a fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldTarget {
    /// Order-parameter component `0..N_PHASES` of φ_src.
    Phi(usize),
    /// Chemical-potential component `0..N_COMP` of µ_src.
    Mu(usize),
}

/// How the targeted value is corrupted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// XOR the given bit (0..64) of the IEEE-754 representation — bit 62
    /// (exponent MSB) is the canonical detectable upset.
    BitFlip(u32),
    /// Overwrite with NaN.
    Nan,
    /// Overwrite with an arbitrary value.
    Set(f64),
}

/// One scheduled fault: corrupt `target` of `block` at interior-relative
/// `cell` just before step `step` runs (i.e. in the fields holding time
/// t_step). Cell coordinates are taken modulo the block's interior extent,
/// so seed-derived plans are valid for any block size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FieldFault {
    /// Step index (0-based) before which the fault fires.
    pub step: u64,
    /// Global block id.
    pub block: u64,
    /// Interior-relative cell coordinates (wrapped into the block).
    pub cell: [usize; 3],
    /// Targeted field component.
    pub target: FieldTarget,
    /// Corruption applied.
    pub kind: FaultKind,
}

/// Deterministic, seed-driven plan of numerical faults — the field-storage
/// analogue of `comm::FaultPlan`. Identical seeds and topology produce
/// identical injections on every run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FieldFaultPlan {
    /// Seed recorded for diagnostics (plans built explicitly may keep 0).
    pub seed: u64,
    faults: Vec<FieldFault>,
}

impl FieldFaultPlan {
    /// Empty plan tagged with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Add an explicitly placed fault.
    pub fn inject(mut self, fault: FieldFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Single seed-derived fault at step `step`: the block, cell, target
    /// component, and (for `pick_kind`) corruption all follow
    /// deterministically from `seed` via splitmix64.
    pub fn random_fault(
        seed: u64,
        step: u64,
        n_blocks: u64,
        interior: [usize; 3],
        kind: FaultKind,
    ) -> Self {
        let h = |i: u64| splitmix64(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)));
        let block = h(0) % n_blocks.max(1);
        let cell = [
            (h(1) % interior[0].max(1) as u64) as usize,
            (h(2) % interior[1].max(1) as u64) as usize,
            (h(3) % interior[2].max(1) as u64) as usize,
        ];
        let target = match h(4) % (N_PHASES + N_COMP) as u64 {
            t if t < N_PHASES as u64 => FieldTarget::Phi(t as usize),
            t => FieldTarget::Mu((t - N_PHASES as u64) as usize),
        };
        Self::new(seed).inject(FieldFault {
            step,
            block,
            cell,
            target,
            kind,
        })
    }

    /// All scheduled faults.
    pub fn faults(&self) -> &[FieldFault] {
        &self.faults
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Apply one fault to a block's source fields; returns `(old, new)` values
/// of the corrupted component.
pub fn apply_fault(state: &mut BlockState, fault: &FieldFault) -> (f64, f64) {
    let d = state.dims;
    let g = d.ghost;
    let x = g + fault.cell[0] % d.nx;
    let y = g + fault.cell[1] % d.ny;
    let z = g + fault.cell[2] % d.nz;
    let corrupt = |v: f64| match fault.kind {
        FaultKind::BitFlip(bit) => f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64))),
        FaultKind::Nan => f64::NAN,
        FaultKind::Set(w) => w,
    };
    match fault.target {
        FieldTarget::Phi(c) => {
            let c = c % N_PHASES;
            let old = state.phi_src.at(c, x, y, z);
            let new = corrupt(old);
            state.phi_src.set(c, x, y, z, new);
            (old, new)
        }
        FieldTarget::Mu(c) => {
            let c = c % N_COMP;
            let old = state.mu_src.at(c, x, y, z);
            let new = corrupt(old);
            state.mu_src.set(c, x, y, z, new);
            (old, new)
        }
    }
}

/// Cross-rank health verdict of one scan, produced by the timeloop.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Step count at scan time (completed steps).
    pub step: usize,
    /// This rank's local scan result (diagnostics; includes `first_bad`).
    pub local: ScanStats,
    /// Violation counters summed over all ranks, in [`ScanStats::counts`]
    /// order.
    pub global: [u64; 4],
    /// Global front position and measured speed (cells/step), when the
    /// interface-velocity check is enabled and has a previous sample.
    pub front: Option<(f64, f64)>,
    /// False when the front moved faster than `max_front_speed`.
    pub front_ok: bool,
}

impl HealthReport {
    /// True when no rank saw any violation and the front speed is sane.
    pub fn is_healthy(&self) -> bool {
        self.global.iter().sum::<u64>() == 0 && self.front_ok
    }

    /// Total violations across all ranks.
    pub fn total_violations(&self) -> u64 {
        self.global.iter().sum()
    }

    /// One-line diagnostic summary.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        let names = ["phi_nonfinite", "phi_off_simplex", "mu_nonfinite", "mu_oob"];
        for (name, &n) in names.iter().zip(&self.global) {
            if n > 0 {
                parts.push(format!("{name}={n}"));
            }
        }
        if !self.front_ok {
            parts.push("front_speed".into());
        }
        if let Some(bad) = self.local.first_bad {
            parts.push(format!(
                "first@block{}[{},{},{}]:{:?}",
                bad.block, bad.cell[0], bad.cell[1], bad.cell[2], bad.kind
            ));
        }
        format!(
            "step {}: {}",
            self.step,
            if parts.is_empty() {
                "healthy".into()
            } else {
                parts.join(" ")
            }
        )
    }
}

/// Per-simulation health state: scan configuration, the (fire-once) fault
/// plan, and the rolling scan results. Owned by `timeloop::DistributedSim`.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    /// Scan configuration.
    pub cfg: HealthConfig,
    plan: FieldFaultPlan,
    fired: Vec<bool>,
    /// Total faults injected so far.
    pub injected: u64,
    last: Option<HealthReport>,
    pending_unhealthy: Option<HealthReport>,
    prev_front: Option<(usize, f64)>,
}

impl HealthMonitor {
    /// Monitor with the given scan configuration and no fault plan.
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            cfg,
            plan: FieldFaultPlan::default(),
            fired: Vec::new(),
            injected: 0,
            last: None,
            pending_unhealthy: None,
            prev_front: None,
        }
    }

    /// Attach a deterministic fault plan (testing / chaos drills).
    pub fn with_faults(mut self, plan: FieldFaultPlan) -> Self {
        self.fired = vec![false; plan.faults().len()];
        self.plan = plan;
        self
    }

    /// True when a scan is due after completing step number `step`.
    pub fn due(&self, step: usize) -> bool {
        self.cfg.every > 0 && step > 0 && step % self.cfg.every == 0
    }

    /// Most recent scan report.
    pub fn last_report(&self) -> Option<&HealthReport> {
        self.last.as_ref()
    }

    /// Take the unhealthy report produced by the latest scan, if any —
    /// consumed by the recovery driver; healthy scans leave `None` here.
    pub fn take_unhealthy(&mut self) -> Option<HealthReport> {
        self.pending_unhealthy.take()
    }

    /// Faults scheduled for `step` that have not fired yet; marks them
    /// fired (transient-upset semantics: rollback does not re-inject).
    pub fn due_faults(&mut self, step: u64) -> Vec<FieldFault> {
        let mut due = Vec::new();
        for (i, f) in self.plan.faults().iter().enumerate() {
            if f.step == step && !self.fired[i] {
                self.fired[i] = true;
                due.push(*f);
            }
        }
        due
    }

    /// Record a completed scan's report.
    pub fn record(&mut self, report: HealthReport) {
        if let Some((pos, _)) = report.front {
            self.prev_front = Some((report.step, pos));
        }
        if !report.is_healthy() {
            self.pending_unhealthy = Some(report.clone());
        }
        self.last = Some(report);
    }

    /// Previous front sample `(step, position)` for speed estimation.
    pub fn front_sample(&self) -> Option<(usize, f64)> {
        self.prev_front
    }

    /// Seed the front tracker without a full report (used right after a
    /// restore so the first post-rollback scan has a valid baseline).
    pub fn set_front_sample(&mut self, step: usize, pos: f64) {
        self.prev_front = Some((step, pos));
    }

    /// Forget rolling state that is invalidated by a progress jump
    /// (restore / rollback): the front baseline and any pending verdicts.
    pub fn on_progress_reset(&mut self) {
        self.prev_front = None;
        self.pending_unhealthy = None;
    }
}

/// splitmix64 — the same tiny deterministic hash `comm::FaultPlan` uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::GridDims;

    fn cfg() -> HealthConfig {
        HealthConfig::for_params(&ModelParams::ag_al_cu())
    }

    fn block() -> BlockState {
        // Fresh liquid block: φ = (0,0,0,1), µ = 0 — healthy by construction.
        BlockState::new(GridDims::new(6, 5, 7, 1), [0, 0, 0])
    }

    #[test]
    fn clean_block_scans_healthy() {
        let s = scan_block(&block(), &cfg(), 0);
        assert_eq!(s.cells, 6 * 5 * 7);
        assert_eq!(s.violations(), 0);
        assert_eq!(s.first_bad, None);
    }

    #[test]
    fn each_violation_class_is_detected_and_classified() {
        let cases: [(FieldTarget, FaultKind, BadKind); 4] = [
            (FieldTarget::Phi(1), FaultKind::Nan, BadKind::PhiNonFinite),
            (
                FieldTarget::Phi(2),
                FaultKind::Set(0.5),
                BadKind::PhiOffSimplex,
            ),
            (FieldTarget::Mu(0), FaultKind::Nan, BadKind::MuNonFinite),
            (
                FieldTarget::Mu(1),
                FaultKind::Set(1e6),
                BadKind::MuOutOfBounds,
            ),
        ];
        for (target, kind, expect) in cases {
            let mut b = block();
            let fault = FieldFault {
                step: 0,
                block: 3,
                cell: [2, 1, 4],
                target,
                kind,
            };
            apply_fault(&mut b, &fault);
            let s = scan_block(&b, &cfg(), 3);
            assert_eq!(s.violations(), 1, "{target:?} {kind:?}");
            let bad = s.first_bad.expect("first_bad recorded");
            assert_eq!(bad.kind, expect);
            assert_eq!(bad.block, 3);
        }
    }

    #[test]
    fn exponent_bit_flip_on_phi_is_always_detected() {
        // Flipping the exponent MSB of any value in [0, 1] produces either
        // a huge value (≥ 2) or an Inf — both leave the simplex box.
        for &v in &[0.0f64, 1e-12, 0.25, 0.5, 0.999, 1.0] {
            let flipped = f64::from_bits(v.to_bits() ^ (1u64 << 62));
            assert!(
                !flipped.is_finite() || flipped.abs() >= 2.0 || flipped.abs() < 1e-30,
                "v={v} flipped={flipped}"
            );
        }
        let mut b = block();
        apply_fault(
            &mut b,
            &FieldFault {
                step: 0,
                block: 0,
                cell: [0, 0, 0],
                target: FieldTarget::Phi(3), // liquid φ = 1.0 → flips to huge
                kind: FaultKind::BitFlip(62),
            },
        );
        assert!(scan_block(&b, &cfg(), 0).violations() > 0);
    }

    #[test]
    fn pooled_scan_matches_serial_at_any_thread_count() {
        let mut b = block();
        apply_fault(
            &mut b,
            &FieldFault {
                step: 0,
                block: 7,
                cell: [1, 2, 3],
                target: FieldTarget::Mu(0),
                kind: FaultKind::Nan,
            },
        );
        apply_fault(
            &mut b,
            &FieldFault {
                step: 0,
                block: 7,
                cell: [4, 0, 6],
                target: FieldTarget::Phi(0),
                kind: FaultKind::Set(2.0),
            },
        );
        let serial = scan_block(&b, &cfg(), 7);
        for threads in [1, 2, 3, 8] {
            let pool = SweepPool::new(threads);
            let pooled = scan_block_pooled(&pool, &b, &cfg(), 7);
            assert_eq!(pooled, serial, "threads={threads}");
        }
    }

    #[test]
    fn merge_keeps_deterministic_first_bad() {
        let mk = |block, z| ScanStats {
            cells: 1,
            phi_nonfinite: 1,
            first_bad: Some(BadCell {
                block,
                cell: [0, 0, z],
                kind: BadKind::PhiNonFinite,
            }),
            ..Default::default()
        };
        let (a, b) = (mk(1, 5), mk(1, 2));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.first_bad.unwrap().cell[2], 2);
        assert_eq!(ab.phi_nonfinite, 2);
    }

    #[test]
    fn fault_plan_is_seed_deterministic_and_fires_once() {
        let p1 = FieldFaultPlan::random_fault(42, 5, 8, [16, 16, 16], FaultKind::Nan);
        let p2 = FieldFaultPlan::random_fault(42, 5, 8, [16, 16, 16], FaultKind::Nan);
        assert_eq!(p1, p2);
        let p3 = FieldFaultPlan::random_fault(43, 5, 8, [16, 16, 16], FaultKind::Nan);
        assert_ne!(p1, p3, "different seeds should move the fault");
        assert!(p1.faults()[0].block < 8);

        let mut m = HealthMonitor::new(cfg()).with_faults(p1);
        assert_eq!(m.due_faults(4).len(), 0);
        assert_eq!(m.due_faults(5).len(), 1);
        // Transient-upset semantics: a rollback past step 5 must not replay.
        assert_eq!(m.due_faults(5).len(), 0);
    }

    #[test]
    fn monitor_cadence_and_pending_verdicts() {
        let mut m = HealthMonitor::new(cfg().with_every(3));
        assert!(!m.due(0)); // nothing completed yet
        assert!(!m.due(2));
        assert!(m.due(3));
        assert!(m.due(6));
        let unhealthy = HealthReport {
            step: 3,
            local: ScanStats::default(),
            global: [1, 0, 0, 0],
            front: None,
            front_ok: true,
        };
        m.record(unhealthy);
        assert!(m.take_unhealthy().is_some());
        assert!(m.take_unhealthy().is_none(), "verdict consumed once");
        let healthy = HealthReport {
            step: 6,
            local: ScanStats::default(),
            global: [0; 4],
            front: Some((12.0, 0.1)),
            front_ok: true,
        };
        m.record(healthy);
        assert!(m.take_unhealthy().is_none());
        assert_eq!(m.front_sample(), Some((6, 12.0)));
        m.on_progress_reset();
        assert_eq!(m.front_sample(), None);
    }
}
