//! Wire format for in-flight block migration.
//!
//! When the dynamic rebalancer moves a block between ranks, the *entire*
//! persistent state of that block must arrive bit-identically: both halves
//! of each double-buffered field (φ src/dst, µ src/dst — the dst buffers
//! are the staggered half-step targets of the explicit Euler update),
//! including every ghost layer, plus the block's window-shifted origin and
//! the cost-model knowledge accumulated by the previous owner. The field
//! payloads go through the bit-exact [`codec`](eutectica_blockgrid::codec)
//! (CRC-protected, budget-validated); this module frames them with a block
//! header.
//!
//! There are no additional persistent per-block buffers to ship: the
//! kernels' staggered slab buffers are per-sweep temporaries re-prefetched
//! at the start of every sweep, and the boundary conditions are a pure
//! function of the decomposition, rebuilt on the receiver from the block
//! descriptor.
//!
//! Wire layout (little-endian):
//!
//! ```text
//! magic "EUTMIG01" (8) | block id u64 | origin u64 × 3 |
//! has_measured u8 | measured f64 (raw bits) | prior f64 (raw bits) |
//! 4 × ( field length u64 | codec-encoded SoA field )
//!     order: phi_src, phi_dst, mu_src, mu_dst
//! ```

use eutectica_blockgrid::codec::{self, CodecError};
use eutectica_blockgrid::rebalance::CostEntry;
use eutectica_blockgrid::GridDims;

use crate::state::BlockState;
use crate::{N_COMP, N_PHASES};

/// Magic bytes of a migrated block.
pub const MIG_MAGIC: [u8; 8] = *b"EUTMIG01";

/// Header bytes before the first field payload.
const HEADER_LEN: usize = 8 + 8 + 3 * 8 + 1 + 8 + 8;

/// Typed decode failure for a migration payload.
#[derive(Debug)]
pub enum MigrateError {
    /// The bytes do not start with [`MIG_MAGIC`].
    BadMagic,
    /// The input ended before the structure was complete.
    Truncated,
    /// A field payload failed to decode (corruption, bad dims, CRC).
    Field(CodecError),
    /// A decoded field's dimensions differ from the receiver's descriptor —
    /// the sender and receiver disagree about the decomposition.
    DimsMismatch {
        /// Dimensions the receiving rank's block descriptor implies.
        expected: GridDims,
        /// Dimensions found in the payload.
        found: GridDims,
    },
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::BadMagic => write!(f, "bad migration magic"),
            MigrateError::Truncated => write!(f, "truncated migration payload"),
            MigrateError::Field(e) => write!(f, "field decode failed: {e}"),
            MigrateError::DimsMismatch { expected, found } => write!(
                f,
                "dims mismatch: descriptor implies {expected:?}, payload has {found:?}"
            ),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<CodecError> for MigrateError {
    fn from(e: CodecError) -> Self {
        MigrateError::Field(e)
    }
}

/// Serialize a block for migration: header + all four field buffers
/// (ghosts included) through the bit-exact codec.
pub fn encode_block(state: &BlockState, id: u64, entry: &CostEntry) -> Vec<u8> {
    let fields = [
        codec::encode_soa(&state.phi_src),
        codec::encode_soa(&state.phi_dst),
        codec::encode_soa(&state.mu_src),
        codec::encode_soa(&state.mu_dst),
    ];
    let body: usize = fields.iter().map(|f| 8 + f.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + body);
    out.extend_from_slice(&MIG_MAGIC);
    out.extend_from_slice(&id.to_le_bytes());
    for o in state.origin {
        out.extend_from_slice(&(o as u64).to_le_bytes());
    }
    out.push(entry.measured.is_some() as u8);
    out.extend_from_slice(&entry.measured.unwrap_or(0.0).to_le_bytes());
    out.extend_from_slice(&entry.prior.to_le_bytes());
    for f in &fields {
        out.extend_from_slice(&(f.len() as u64).to_le_bytes());
        out.extend_from_slice(f);
    }
    out
}

/// Deserialize a migrated block. `expected` is the receiver's idea of the
/// block's dimensions (from the decomposition descriptor); every field must
/// match it exactly. Boundary conditions are *not* part of the payload —
/// the caller rebuilds them from the descriptor's neighbor table.
///
/// Returns `(block id, state, cost entry)`.
pub fn decode_block(
    bytes: &[u8],
    expected: GridDims,
    budget: u64,
) -> Result<(u64, BlockState, CostEntry), MigrateError> {
    if bytes.len() < HEADER_LEN {
        return Err(MigrateError::Truncated);
    }
    if bytes[..8] != MIG_MAGIC {
        return Err(MigrateError::BadMagic);
    }
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    let f64_at = |o: usize| f64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    let id = u64_at(8);
    let origin = [
        u64_at(16) as usize,
        u64_at(24) as usize,
        u64_at(32) as usize,
    ];
    let has_measured = bytes[40] != 0;
    let measured = f64_at(41);
    let prior = f64_at(49);
    let entry = CostEntry {
        measured: has_measured.then_some(measured),
        prior,
    };
    let mut off = HEADER_LEN;
    let mut next = |bytes: &[u8]| -> Result<(usize, usize), MigrateError> {
        if bytes.len() < off + 8 {
            return Err(MigrateError::Truncated);
        }
        let len = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
        let start = off + 8;
        let end = start.checked_add(len).ok_or(MigrateError::Truncated)?;
        if bytes.len() < end {
            return Err(MigrateError::Truncated);
        }
        off = end;
        Ok((start, end))
    };
    let check = |dims: GridDims| -> Result<(), MigrateError> {
        if dims != expected {
            return Err(MigrateError::DimsMismatch {
                expected,
                found: dims,
            });
        }
        Ok(())
    };
    let (s, e) = next(bytes)?;
    let phi_src = codec::decode_soa::<N_PHASES>(&bytes[s..e], budget)?;
    check(phi_src.dims())?;
    let (s, e) = next(bytes)?;
    let phi_dst = codec::decode_soa::<N_PHASES>(&bytes[s..e], budget)?;
    check(phi_dst.dims())?;
    let (s, e) = next(bytes)?;
    let mu_src = codec::decode_soa::<N_COMP>(&bytes[s..e], budget)?;
    check(mu_src.dims())?;
    let (s, e) = next(bytes)?;
    let mu_dst = codec::decode_soa::<N_COMP>(&bytes[s..e], budget)?;
    check(mu_dst.dims())?;
    let mut state = BlockState::new(expected, origin);
    state.phi_src = phi_src;
    state.phi_dst = phi_dst;
    state.mu_src = mu_src;
    state.mu_dst = mu_dst;
    Ok((id, state, entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::codec::DEFAULT_FIELD_BYTE_BUDGET;

    fn scrambled_block(dims: GridDims, seed: u64) -> BlockState {
        let mut st = BlockState::new(dims, [3, 5, 7]);
        let mut s = seed | 1;
        let mut next = || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            f64::from_bits(s.wrapping_mul(0x2545_f491_4f6c_dd1d))
        };
        for v in st.phi_src.raw_mut() {
            *v = next();
        }
        for v in st.phi_dst.raw_mut() {
            *v = next();
        }
        for v in st.mu_src.raw_mut() {
            *v = next();
        }
        for v in st.mu_dst.raw_mut() {
            *v = next();
        }
        st
    }

    #[test]
    fn block_roundtrip_is_bit_identical() {
        let dims = GridDims::new(4, 3, 5, 1);
        let st = scrambled_block(dims, 0xfeed);
        let entry = CostEntry {
            measured: Some(0.0125),
            prior: 2.5,
        };
        let bytes = encode_block(&st, 17, &entry);
        let (id, back, e) = decode_block(&bytes, dims, DEFAULT_FIELD_BYTE_BUDGET).unwrap();
        assert_eq!(id, 17);
        assert_eq!(e, entry);
        assert_eq!(back.origin, st.origin);
        for (a, b) in [
            (st.phi_src.raw(), back.phi_src.raw()),
            (st.phi_dst.raw(), back.phi_dst.raw()),
            (st.mu_src.raw(), back.mu_src.raw()),
            (st.mu_dst.raw(), back.mu_dst.raw()),
        ] {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn corruption_dims_mismatch_and_truncation_rejected() {
        let dims = GridDims::new(3, 3, 3, 1);
        let st = scrambled_block(dims, 1);
        let entry = CostEntry {
            measured: None,
            prior: 1.0,
        };
        let mut bytes = encode_block(&st, 0, &entry);
        assert!(decode_block(&bytes[..bytes.len() - 1], dims, u64::MAX).is_err());
        assert!(matches!(
            decode_block(&bytes, GridDims::new(4, 3, 3, 1), u64::MAX),
            Err(MigrateError::DimsMismatch { .. })
        ));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(decode_block(&bytes, dims, u64::MAX).is_err());
    }
}
