//! Grand-potential phase-field solver for ternary eutectic directional
//! solidification — the primary contribution of the SC'15 paper by Bauer,
//! Hötzer et al., reimplemented in Rust.
//!
//! The model couples N = 4 order parameters φ (three solids of the Ag-Al-Cu
//! eutectic plus the melt) to K − 1 = 2 chemical potentials µ through a
//! thermodynamically consistent grand-potential formulation with an
//! anti-trapping current, solved with finite differences and explicit Euler
//! time stepping on a block-structured grid (see `eutectica-blockgrid`) with
//! MPI-style parallelization (see `eutectica-comm`).
//!
//! # Crate layout
//!
//! * [`params`] — physical/numerical parameters ([`params::ModelParams`]).
//! * [`model`] — the discretized equations as scalar primitives (single
//!   source of truth for all kernel variants).
//! * [`simplex`] — Gibbs-simplex projection of the order parameters.
//! * [`temperature`] — frozen-temperature ansatz + per-slice precomputation.
//! * [`state`] — per-block field state (φ/µ, src/dst).
//! * [`kernels`] — the full optimization ladder of compute kernels:
//!   general-purpose reference, specialized scalar, explicitly vectorized
//!   SIMD (cellwise and four-cell), each with the paper's T(z), staggered
//!   buffer, and shortcut optimizations.
//! * [`init`] — Voronoi-tessellated solid nuclei and other initial setups.
//! * [`regions`] — domain-region classification and the interface / solid /
//!   liquid benchmark scenarios of Sec. 5.1.
//! * [`migrate`] — bit-exact wire format for in-flight block migration
//!   (dynamic load rebalancing).
//! * [`health`] — silent-corruption defense: periodic field-invariant
//!   scans (φ on the Gibbs simplex, bounded µ, everything finite) and the
//!   deterministic [`health::FieldFaultPlan`] numerical-fault injector.
//! * [`sweep_pool`] — intra-rank work-sharing: a persistent thread pool
//!   partitioning each block's interior into z-slabs (the OpenMP half of
//!   the paper's hybrid MPI × OpenMP parallelization).
//! * [`timeloop`] — Algorithms 1 & 2 (with/without communication hiding),
//!   ghost exchange through `eutectica-comm`, moving-window advance.
//! * [`solver`] — a high-level single-process façade for applications.
//!
//! # Quickstart
//!
//! ```
//! use eutectica_core::prelude::*;
//!
//! let params = ModelParams::ag_al_cu();
//! let mut sim = Simulation::new(params, [16, 16, 32]).expect("valid setup");
//! sim.init_directional(42);
//! sim.step_n(10);
//! let solid = sim.solid_fraction();
//! assert!(solid > 0.0);
//! ```

// Index-based loops deliberately mirror the paper's stencil formulations;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]

pub mod health;
pub mod init;
pub mod kernels;
pub mod metrics;
pub mod migrate;
pub mod model;
pub mod params;
pub mod regions;
pub mod simplex;
pub mod solver;
pub mod state;
pub mod sweep_pool;
pub mod temperature;
pub mod timeloop;

/// Number of order parameters (phases): 3 solids + liquid.
pub const N_PHASES: usize = 4;
/// Number of independent chemical potentials (K − 1 with K = 3 components).
pub const N_COMP: usize = 2;
/// Index of the liquid phase.
pub const LIQ: usize = 3;

/// Commonly used items.
pub mod prelude {
    pub use crate::kernels::{KernelConfig, MuVariant, OptLevel, PhiVariant};
    pub use crate::params::ModelParams;
    pub use crate::solver::Simulation;
    pub use crate::state::BlockState;
    pub use crate::{LIQ, N_COMP, N_PHASES};
}
