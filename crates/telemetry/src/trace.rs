//! Export sinks: Chrome trace-event JSON (one timeline lane per rank,
//! loadable in `chrome://tracing` or Perfetto) and per-step JSON-lines
//! records.

use std::io::{self, Write};
use std::path::Path;
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::JsonObject;
use crate::Histogram;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Trace lanes per rank: lane ids are `rank * LANE_STRIDE + thread_lane`,
/// so a rank and its sweep-pool workers group together and sort in order.
/// 256 intra-rank lanes is far beyond any plausible `--threads` value.
pub const LANE_STRIDE: u32 = 256;

/// Chrome-trace `tid` for a given rank and intra-rank thread lane
/// (lane 0 is the rank thread itself, 1.. are sweep-pool workers).
pub fn lane_tid(rank: usize, lane: u32) -> u32 {
    rank as u32 * LANE_STRIDE + lane
}

/// Process-wide trace epoch. First call pins it; all span timestamps are
/// expressed relative to this instant so rank threads share one timeline.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span, in Chrome trace-event terms.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Span name (event `name`).
    pub name: String,
    /// Category (event `cat`), e.g. `"compute"` or `"comm"`.
    pub cat: String,
    /// Start time in microseconds since [`epoch`].
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Lane id — see [`lane_tid`]: `rank * LANE_STRIDE + thread_lane`.
    pub tid: u32,
}

impl TraceEvent {
    /// Serialize as one complete (`"ph":"X"`) trace event object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str_field("name", &self.name)
            .str_field("cat", &self.cat)
            .str_field("ph", "X")
            .num_field("ts", self.ts_us)
            .num_field("dur", self.dur_us)
            .int_field("pid", 0)
            .int_field("tid", self.tid as u64)
            .finish()
    }
}

/// Write events from all ranks as a Chrome trace file
/// (`{"traceEvents":[…]}` object form). `events_per_rank[r]` holds rank
/// r's events; every distinct `tid` seen in the events gets a named lane
/// (`"rank R"` for the rank thread, `"rank R · worker L"` for sweep-pool
/// workers) sorted so a rank's workers sit directly under it.
pub fn write_chrome_trace(path: &Path, events_per_rank: &[Vec<TraceEvent>]) -> io::Result<()> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(b"{\"traceEvents\":[\n")?;
    let mut tids: Vec<u32> = events_per_rank
        .iter()
        .flatten()
        .map(|e| e.tid)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    // Ranks without events still get an (empty) named lane.
    for rank in 0..events_per_rank.len() {
        let tid = lane_tid(rank, 0);
        if !tids.contains(&tid) {
            tids.push(tid);
        }
    }
    tids.sort_unstable();
    let mut first = true;
    let mut emit = |w: &mut io::BufWriter<std::fs::File>, line: &str| -> io::Result<()> {
        if !first {
            w.write_all(b",\n")?;
        }
        first = false;
        w.write_all(line.as_bytes())
    };
    for &tid in &tids {
        let (rank, lane) = (tid / LANE_STRIDE, tid % LANE_STRIDE);
        let lane_name = if lane == 0 {
            format!("rank {rank}")
        } else {
            format!("rank {rank} · worker {lane}")
        };
        let name_meta = JsonObject::new()
            .str_field("name", "thread_name")
            .str_field("ph", "M")
            .int_field("pid", 0)
            .int_field("tid", tid as u64)
            .raw_field(
                "args",
                &JsonObject::new().str_field("name", &lane_name).finish(),
            )
            .finish();
        let sort_meta = JsonObject::new()
            .str_field("name", "thread_sort_index")
            .str_field("ph", "M")
            .int_field("pid", 0)
            .int_field("tid", tid as u64)
            .raw_field(
                "args",
                &JsonObject::new()
                    .int_field("sort_index", tid as u64)
                    .finish(),
            )
            .finish();
        emit(&mut w, &name_meta)?;
        emit(&mut w, &sort_meta)?;
    }
    for events in events_per_rank {
        for e in events {
            emit(&mut w, &e.to_json())?;
        }
    }
    w.write_all(b"\n]}\n")?;
    w.flush()
}

/// One per-step observability record, serialized as a JSONL line.
///
/// Schema (all fields always present):
/// `rank`, `step` — integers; `wall_ms`, `mlups`, `compute_ms`,
/// `phi_comm_ms`, `mu_comm_ms`, `bc_ms`, `recv_wait_ms` — floats;
/// `cells_updated`, `ghost_bytes_sent`, `ghost_bytes_received`,
/// `window_shifts` — integers; `recv_wait_hist_ns` — array of
/// `[bucket_lower_edge_ns, count]` pairs for non-empty log2 buckets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepRecord {
    /// Rank that produced the record.
    pub rank: usize,
    /// Zero-based step index.
    pub step: usize,
    /// Wall time of the whole step in milliseconds.
    pub wall_ms: f64,
    /// Million lattice-cell updates per second for this step.
    pub mlups: f64,
    /// Interior cells updated this step (per sweep pair).
    pub cells_updated: u64,
    /// Time in kernel sweeps this step (ms).
    pub compute_ms: f64,
    /// Exposed φ communication time this step (ms).
    pub phi_comm_ms: f64,
    /// Exposed µ communication time this step (ms).
    pub mu_comm_ms: f64,
    /// Boundary-condition application time this step (ms).
    pub bc_ms: f64,
    /// Ghost bytes sent this step.
    pub ghost_bytes_sent: u64,
    /// Ghost bytes received this step.
    pub ghost_bytes_received: u64,
    /// Time spent blocked in receives this step (ms).
    pub recv_wait_ms: f64,
    /// Per-step recv-wait latency histogram (nanoseconds).
    pub recv_wait_hist: Histogram,
    /// Moving-window shifts applied this step.
    pub window_shifts: u64,
}

impl StepRecord {
    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self
            .recv_wait_hist
            .nonzero_buckets()
            .iter()
            .map(|(edge, count)| format!("[{edge},{count}]"))
            .collect();
        JsonObject::new()
            .int_field("rank", self.rank as u64)
            .int_field("step", self.step as u64)
            .num_field("wall_ms", self.wall_ms)
            .num_field("mlups", self.mlups)
            .int_field("cells_updated", self.cells_updated)
            .num_field("compute_ms", self.compute_ms)
            .num_field("phi_comm_ms", self.phi_comm_ms)
            .num_field("mu_comm_ms", self.mu_comm_ms)
            .num_field("bc_ms", self.bc_ms)
            .int_field("ghost_bytes_sent", self.ghost_bytes_sent)
            .int_field("ghost_bytes_received", self.ghost_bytes_received)
            .num_field("recv_wait_ms", self.recv_wait_ms)
            .raw_field("recv_wait_hist_ns", &format!("[{}]", hist.join(",")))
            .int_field("window_shifts", self.window_shifts)
            .finish()
    }
}

/// Write step records (typically from several ranks) as JSON lines.
pub fn write_jsonl(path: &Path, records: &[StepRecord]) -> io::Result<()> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    for r in records {
        w.write_all(r.to_json().as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_file_is_wellformed() {
        let dir = std::env::temp_dir().join("eutectica_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let ev = |name: &str, cat: &str, ts: f64, tid: u32| TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us: ts,
            dur_us: 5.0,
            tid,
        };
        write_chrome_trace(
            &path,
            &[
                vec![
                    ev("phi_sweep", "compute", 0.0, lane_tid(0, 0)),
                    ev("phi_slab", "compute", 0.5, lane_tid(0, 2)),
                ],
                vec![ev("phi_comm", "comm", 1.0, lane_tid(1, 0))],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"rank 1\""));
        // Worker shards show up as their own named lanes under the rank.
        assert!(text.contains("\"rank 0 · worker 2\""));
        // Balanced braces/brackets — crude but effective well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                text.matches(open).count(),
                text.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn step_record_serializes_all_fields() {
        let mut rec = StepRecord {
            rank: 1,
            step: 7,
            wall_ms: 2.5,
            mlups: 12.0,
            cells_updated: 4096,
            ..Default::default()
        };
        rec.recv_wait_hist.record(0);
        rec.recv_wait_hist.record(900);
        let line = rec.to_json();
        assert!(line.contains("\"rank\":1"));
        assert!(line.contains("\"step\":7"));
        assert!(line.contains("\"mlups\":12"));
        assert!(line.contains("\"recv_wait_hist_ns\":[[0,1],[512,1]]"));
        assert!(line.contains("\"window_shifts\":0"));
    }
}
