//! Minimal hand-rolled JSON emission (the workspace has no serde_json);
//! enough for trace-event files and JSONL records.

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object builder.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, name: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\":");
    }

    /// Add a string field.
    pub fn str_field(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Add an integer field.
    pub fn int_field(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Add a float field (non-finite values are emitted as 0 — JSON has no
    /// NaN/Inf literals).
    pub fn num_field(mut self, name: &str, value: f64) -> Self {
        self.key(name);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push('0');
        }
        self
    }

    /// Add a field whose value is already-serialized JSON.
    pub fn raw_field(mut self, name: &str, raw: &str) -> Self {
        self.key(name);
        self.buf.push_str(raw);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_escaped_json() {
        let s = JsonObject::new()
            .str_field("name", "a\"b\\c\n")
            .int_field("n", 42)
            .num_field("x", 1.5)
            .num_field("bad", f64::NAN)
            .raw_field("arr", "[1,2]")
            .finish();
        assert_eq!(
            s,
            r#"{"name":"a\"b\\c\n","n":42,"x":1.5,"bad":0,"arr":[1,2]}"#
        );
    }
}
