//! Metrics registry value types: counters, gauges, and log2-bucket
//! histograms, all keyed by name in deterministic (BTreeMap) order.

use std::collections::BTreeMap;

/// Number of histogram buckets; bucket `i` covers `[2^(i-1), 2^i)` with
/// bucket 0 reserved for exact zeros. 2^39 ns ≈ 9 minutes, ample for any
/// latency this code measures.
pub const HIST_BUCKETS: usize = 40;

/// Fixed-size log2-bucket histogram of `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = (Self::bucket_of(value)).min(HIST_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Bucket index a value falls into (0 for 0, else `floor(log2(v)) + 1`).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive lower edge of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Add all of `other`'s observations into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Histogram of the observations in `self` but not in the earlier
    /// snapshot `prev` (for per-step deltas of a cumulative histogram).
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(prev.buckets[i]);
        }
        out.count = self.count.saturating_sub(prev.count);
        out.sum = self.sum.saturating_sub(prev.sum);
        out
    }

    /// Non-empty buckets as `(lower_edge, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
            .collect()
    }
}

/// Point-in-time copy of a rank's metrics registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters (e.g. bytes sent).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges (e.g. MLUP/s of the latest sweep).
    pub gauges: BTreeMap<String, f64>,
    /// Log2-bucket histograms (e.g. recv-wait nanoseconds).
    pub histograms: BTreeMap<String, Histogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_reserved() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(11), 1024);
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let mut a = Histogram::default();
        for v in [0u64, 1, 7, 4096] {
            a.record(v);
        }
        let before = a.clone();
        let mut b = Histogram::default();
        for v in [3u64, 1 << 20] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.delta_since(&before), b);
        assert_eq!(b.nonzero_buckets(), vec![(2, 1), (1 << 20, 1)]);
    }
}
