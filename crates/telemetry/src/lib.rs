//! Observability substrate for the eutectica solver stack.
//!
//! The design mirrors waLBerla's hierarchical timing pools (Bauer et al.,
//! SC'15): every rank builds a *timing tree* out of cheap RAII spans while
//! it runs, a *metrics registry* accumulates counters / gauges / log2-bucket
//! histograms next to it, and at the end of a run the per-rank trees are
//! *reduced* across ranks into a min/avg/max report. Three sinks turn the
//! collected data into artifacts:
//!
//! - a human-readable tree report ([`ReducedTree::report`]),
//! - JSON-lines per-step snapshots ([`StepRecord`]),
//! - Chrome trace-event JSON ([`write_chrome_trace`]) loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! The crate is dependency-free; cross-rank reduction is closure-based
//! ([`reduce_with`]) so the communication layer can depend on telemetry
//! (for histograms in its statistics) without a cycle.
//!
//! # Cost model
//!
//! A [`Telemetry`] handle is an `Rc` and clones for pennies. A disabled
//! handle ([`Telemetry::disabled`]) makes [`Telemetry::span`] and every
//! metric update a branch-and-return — no clock read, no allocation — so
//! instrumented code paths stay numerically and (near) temporally identical
//! to uninstrumented ones. Building with the `off` feature compiles all of
//! it out entirely.

mod json;
mod metrics;
mod reduce;
mod trace;

pub use json::JsonObject;
pub use metrics::{Histogram, MetricsSnapshot, HIST_BUCKETS};
pub use reduce::{reduce_snapshots, reduce_with, ReducedRow, ReducedTree};
pub use trace::{epoch, write_chrome_trace, write_jsonl, StepRecord, TraceEvent};

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// One node of the in-construction timing tree.
#[derive(Debug)]
struct Node {
    name: &'static str,
    cat: &'static str,
    children: Vec<usize>,
    total: Duration,
    count: u64,
}

/// Arena-backed timing tree plus the stack of currently open spans.
#[derive(Debug)]
struct TreeState {
    nodes: Vec<Node>,
    stack: Vec<usize>,
}

impl TreeState {
    fn new() -> Self {
        let root = Node {
            name: "",
            cat: "",
            children: Vec::new(),
            total: Duration::ZERO,
            count: 0,
        };
        Self {
            nodes: vec![root],
            stack: vec![0],
        }
    }

    /// Child of `parent` named `name`, created on first use.
    fn child(&mut self, parent: usize, name: &'static str, cat: &'static str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            cat,
            children: Vec::new(),
            total: Duration::ZERO,
            count: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }
}

struct Inner {
    enabled: bool,
    rank: usize,
    tree: RefCell<TreeState>,
    metrics: RefCell<MetricsSnapshot>,
    trace: RefCell<Option<Vec<TraceEvent>>>,
}

/// Handle to one rank's telemetry state (timing tree + metrics registry +
/// optional trace buffer). Clones share the same state; keep one per rank.
#[derive(Clone)]
pub struct Telemetry {
    inner: Rc<Inner>,
}

impl Telemetry {
    /// An enabled collector for the given rank. Also pins the process-wide
    /// trace epoch so span timestamps from all rank threads share a
    /// timeline.
    pub fn new(rank: usize) -> Self {
        let _ = epoch();
        Self::build(rank, true)
    }

    /// A collector whose spans and metric updates are no-ops. Use this as
    /// the default so instrumentation costs nothing unless asked for.
    pub fn disabled() -> Self {
        Self::build(0, false)
    }

    fn build(rank: usize, enabled: bool) -> Self {
        Self {
            inner: Rc::new(Inner {
                enabled,
                rank,
                tree: RefCell::new(TreeState::new()),
                metrics: RefCell::new(MetricsSnapshot::default()),
                trace: RefCell::new(None),
            }),
        }
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !cfg!(feature = "off") && self.inner.enabled
    }

    /// Rank this collector was created for.
    pub fn rank(&self) -> usize {
        self.inner.rank
    }

    /// Start buffering per-span trace events for Chrome trace export.
    pub fn enable_trace(&self) {
        if self.is_enabled() {
            *self.inner.trace.borrow_mut() = Some(Vec::new());
        }
    }

    /// Open a span nested under the innermost open span. Dropping the
    /// returned guard closes it and accrues its wall time into the tree.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_cat(name, "default")
    }

    /// Like [`Telemetry::span`] with an explicit trace category
    /// (e.g. `"compute"`, `"comm"`).
    #[inline]
    pub fn span_cat(&self, name: &'static str, cat: &'static str) -> Span {
        if !self.is_enabled() {
            return Span {
                tel: None,
                node: 0,
                start: None,
            };
        }
        let node = {
            let mut st = self.inner.tree.borrow_mut();
            let parent = *st.stack.last().expect("span stack never empty");
            let node = st.child(parent, name, cat);
            st.stack.push(node);
            node
        };
        Span {
            tel: Some(self.clone()),
            node,
            start: Some(Instant::now()),
        }
    }

    fn finish_span(&self, node: usize, start: Instant) {
        let elapsed = start.elapsed();
        let mut st = self.inner.tree.borrow_mut();
        debug_assert_eq!(st.stack.last(), Some(&node), "spans closed out of order");
        st.stack.pop();
        st.nodes[node].total += elapsed;
        st.nodes[node].count += 1;
        if let Some(buf) = self.inner.trace.borrow_mut().as_mut() {
            let ep = epoch();
            buf.push(TraceEvent {
                name: st.nodes[node].name.to_string(),
                cat: st.nodes[node].cat.to_string(),
                ts_us: start.saturating_duration_since(ep).as_secs_f64() * 1e6,
                dur_us: elapsed.as_secs_f64() * 1e6,
                tid: self.inner.rank as u32,
            });
        }
    }

    /// Add `delta` to the named counter.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if self.is_enabled() && delta > 0 {
            *self
                .inner
                .metrics
                .borrow_mut()
                .counters
                .entry(name.to_string())
                .or_insert(0) += delta;
        }
    }

    /// Set the named gauge to `value` (last write wins).
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if self.is_enabled() {
            self.inner
                .metrics
                .borrow_mut()
                .gauges
                .insert(name.to_string(), value);
        }
    }

    /// Record one observation into the named log2-bucket histogram.
    #[inline]
    pub fn hist_record(&self, name: &str, value: u64) {
        if self.is_enabled() {
            self.inner
                .metrics
                .borrow_mut()
                .histograms
                .entry(name.to_string())
                .or_default()
                .record(value);
        }
    }

    /// Merge a whole externally built histogram into the named one.
    pub fn hist_merge(&self, name: &str, hist: &Histogram) {
        if self.is_enabled() {
            self.inner
                .metrics
                .borrow_mut()
                .histograms
                .entry(name.to_string())
                .or_default()
                .merge(hist);
        }
    }

    /// Copy of the accumulated metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.borrow().clone()
    }

    /// Flatten the timing tree into rows (depth-first, insertion order).
    pub fn tree_snapshot(&self) -> TimingTreeSnapshot {
        let st = self.inner.tree.borrow();
        let mut rows = Vec::new();
        fn walk(
            st: &TreeState,
            node: usize,
            prefix: &str,
            depth: usize,
            rows: &mut Vec<TimingRow>,
        ) {
            for &c in &st.nodes[node].children {
                let n = &st.nodes[c];
                let path = if prefix.is_empty() {
                    n.name.to_string()
                } else {
                    format!("{prefix}/{}", n.name)
                };
                rows.push(TimingRow {
                    path: path.clone(),
                    depth,
                    cat: n.cat.to_string(),
                    total_secs: n.total.as_secs_f64(),
                    count: n.count,
                });
                walk(st, c, &path, depth + 1, rows);
            }
        }
        walk(&st, 0, "", 0, &mut rows);
        TimingTreeSnapshot { rows }
    }

    /// Total accrued time of the tree node at `path` ("a/b/c"), if present.
    pub fn node_secs(&self, path: &str) -> Option<f64> {
        self.tree_snapshot()
            .rows
            .iter()
            .find(|r| r.path == path)
            .map(|r| r.total_secs)
    }

    /// Take the buffered trace events (empties the buffer).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.inner
            .trace
            .borrow_mut()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("rank", &self.inner.rank)
            .finish()
    }
}

/// RAII guard returned by [`Telemetry::span`]; closes the span on drop.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
pub struct Span {
    tel: Option<Telemetry>,
    node: usize,
    start: Option<Instant>,
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let (Some(tel), Some(start)) = (self.tel.take(), self.start.take()) {
            tel.finish_span(self.node, start);
        }
    }
}

/// Open a span for the rest of the enclosing scope:
/// `span!(tel, "phi_sweep")` or `span!(tel, "pack", "comm")`.
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        let _span_guard = $tel.span($name);
    };
    ($tel:expr, $name:expr, $cat:expr) => {
        let _span_guard = $tel.span_cat($name, $cat);
    };
}

/// One flattened timing-tree node.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingRow {
    /// Slash-joined path from the root, e.g. `"step/phi_sweep"`.
    pub path: String,
    /// Nesting depth (root children are 0).
    pub depth: usize,
    /// Trace category of the node.
    pub cat: String,
    /// Total accrued wall time in seconds.
    pub total_secs: f64,
    /// Number of times the span was closed.
    pub count: u64,
}

/// Depth-first flattening of one rank's timing tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimingTreeSnapshot {
    /// Rows in depth-first order, parents before children.
    pub rows: Vec<TimingRow>,
}

impl TimingTreeSnapshot {
    /// Compact wire form for cross-rank gathers (exact f64 round-trip).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{}\x1f{}\x1f{}\x1f{:016x}\x1f{}\n",
                r.depth,
                r.path,
                r.cat,
                r.total_secs.to_bits(),
                r.count
            ));
        }
        out.into_bytes()
    }

    /// Inverse of [`TimingTreeSnapshot::serialize`].
    pub fn deserialize(bytes: &[u8]) -> Self {
        let text = String::from_utf8_lossy(bytes);
        let rows = text
            .lines()
            .filter_map(|line| {
                let mut it = line.split('\x1f');
                Some(TimingRow {
                    depth: it.next()?.parse().ok()?,
                    path: it.next()?.to_string(),
                    cat: it.next()?.to_string(),
                    total_secs: f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?),
                    count: it.next()?.parse().ok()?,
                })
            })
            .collect();
        Self { rows }
    }

    /// Single-rank human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::from("timing tree (single rank)\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:indent$}{:<w$} {:>8} calls  {:>12.6} s\n",
                "",
                r.path.rsplit('/').next().unwrap_or(&r.path),
                r.count,
                r.total_secs,
                indent = 2 * r.depth,
                w = 28usize.saturating_sub(2 * r.depth),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Asserts enabled-mode collection; meaningless when spans are compiled
    // out with the `off` feature.
    #[cfg(not(feature = "off"))]
    #[test]
    fn spans_nest_and_accumulate() {
        let tel = Telemetry::new(0);
        for _ in 0..3 {
            let _outer = tel.span("step");
            {
                span!(tel, "phi_sweep", "compute");
                std::hint::black_box(0u64);
            }
            span!(tel, "mu_sweep", "compute");
        }
        let snap = tel.tree_snapshot();
        let paths: Vec<&str> = snap.rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["step", "step/phi_sweep", "step/mu_sweep"]);
        assert!(snap.rows.iter().all(|r| r.count == 3));
        // Children are nested: parent total covers child totals.
        assert!(snap.rows[0].total_secs >= snap.rows[1].total_secs + snap.rows[2].total_secs);
    }

    #[test]
    fn snapshot_serialization_round_trips_exactly() {
        let tel = Telemetry::new(2);
        {
            let _a = tel.span("a");
            span!(tel, "b");
        }
        let snap = tel.tree_snapshot();
        assert_eq!(TimingTreeSnapshot::deserialize(&snap.serialize()), snap);
    }

    #[test]
    fn disabled_spans_are_cheap() {
        // The acceptance bar for the compile-out/disable path: a disabled
        // span must cost a branch, not a syscall. 1M spans in well under a
        // second leaves two orders of magnitude of slack even on a loaded
        // CI box (the real cost is single-digit ns per span).
        let tel = Telemetry::disabled();
        let n = 1_000_000u64;
        let start = Instant::now();
        for i in 0..n {
            let _g = tel.span("hot");
            tel.counter_add("c", std::hint::black_box(i) & 1);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(500),
            "1M disabled spans took {elapsed:?}"
        );
        assert!(tel.tree_snapshot().rows.is_empty());
        assert!(tel.metrics_snapshot().counters.is_empty());
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn metrics_registry_accumulates() {
        let tel = Telemetry::new(0);
        tel.counter_add("bytes", 10);
        tel.counter_add("bytes", 5);
        tel.gauge_set("mlups", 1.5);
        tel.gauge_set("mlups", 2.5);
        tel.hist_record("wait_ns", 0);
        tel.hist_record("wait_ns", 1);
        tel.hist_record("wait_ns", 1000);
        let m = tel.metrics_snapshot();
        assert_eq!(m.counters["bytes"], 15);
        assert_eq!(m.gauges["mlups"], 2.5);
        let h = &m.histograms["wait_ns"];
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
    }
}
