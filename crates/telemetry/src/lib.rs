//! Observability substrate for the eutectica solver stack.
//!
//! The design mirrors waLBerla's hierarchical timing pools (Bauer et al.,
//! SC'15): every rank builds a *timing tree* out of cheap RAII spans while
//! it runs, a *metrics registry* accumulates counters / gauges / log2-bucket
//! histograms next to it, and at the end of a run the per-rank trees are
//! *reduced* across ranks into a min/avg/max report. Three sinks turn the
//! collected data into artifacts:
//!
//! - a human-readable tree report ([`ReducedTree::report`]),
//! - JSON-lines per-step snapshots ([`StepRecord`]),
//! - Chrome trace-event JSON ([`write_chrome_trace`]) loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! The crate is dependency-free; cross-rank reduction is closure-based
//! ([`reduce_with`]) so the communication layer can depend on telemetry
//! (for histograms in its statistics) without a cycle.
//!
//! # Threading model
//!
//! A [`Telemetry`] handle is `Send + Sync` and may be used concurrently
//! from any number of threads (the hybrid sweep pool opens spans on worker
//! threads while the rank thread times the enclosing phase). Internally the
//! state is *sharded per thread*: the first span or metric update from a
//! thread lazily creates that thread's shard (its own timing tree, metrics
//! registry, and trace buffer, each behind an uncontended mutex), so hot
//! paths never contend across threads. Shards are merged on every snapshot
//! call: tree nodes with equal paths accumulate, counters sum, histograms
//! merge, and for duplicate gauges the lowest lane (the rank thread that
//! created the handle) wins. Each shard gets its own Chrome-trace lane
//! (`tid = rank * LANE_STRIDE + lane`) so worker activity is visible as
//! separate timeline rows under the rank.
//!
//! # Cost model
//!
//! A [`Telemetry`] handle is an `Arc` and clones for pennies. A disabled
//! handle ([`Telemetry::disabled`]) makes [`Telemetry::span`] and every
//! metric update a branch-and-return — no clock read, no allocation, no
//! thread-local access — so instrumented code paths stay numerically and
//! (near) temporally identical to uninstrumented ones. Building with the
//! `off` feature compiles all of it out entirely.

mod json;
mod metrics;
mod reduce;
mod trace;

pub use json::{escape, JsonObject};
pub use metrics::{Histogram, MetricsSnapshot, HIST_BUCKETS};
pub use reduce::{reduce_snapshots, reduce_with, ReducedRow, ReducedTree};
pub use trace::{
    epoch, lane_tid, write_chrome_trace, write_jsonl, StepRecord, TraceEvent, LANE_STRIDE,
};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

/// Lock that shrugs off poisoning: a panicking worker thread (caught and
/// re-raised by the sweep pool) must not wedge the whole telemetry handle.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One node of the in-construction timing tree.
#[derive(Debug)]
struct Node {
    name: &'static str,
    cat: &'static str,
    children: Vec<usize>,
    total: Duration,
    count: u64,
}

/// Arena-backed timing tree plus the stack of currently open spans.
#[derive(Debug)]
struct TreeState {
    nodes: Vec<Node>,
    stack: Vec<usize>,
}

impl TreeState {
    fn new() -> Self {
        let root = Node {
            name: "",
            cat: "",
            children: Vec::new(),
            total: Duration::ZERO,
            count: 0,
        };
        Self {
            nodes: vec![root],
            stack: vec![0],
        }
    }

    /// Child of `parent` named `name`, created on first use.
    fn child(&mut self, parent: usize, name: &'static str, cat: &'static str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            cat,
            children: Vec::new(),
            total: Duration::ZERO,
            count: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Accumulate every node of `src` into `self`, matching by path.
    fn merge_from(&mut self, src: &TreeState) {
        fn rec(dst: &mut TreeState, dst_node: usize, src: &TreeState, src_node: usize) {
            for &c in &src.nodes[src_node].children {
                let (name, cat, total, count) = {
                    let sn = &src.nodes[c];
                    (sn.name, sn.cat, sn.total, sn.count)
                };
                let d = dst.child(dst_node, name, cat);
                dst.nodes[d].total += total;
                dst.nodes[d].count += count;
                rec(dst, d, src, c);
            }
        }
        rec(self, 0, src, 0);
    }
}

/// One thread's slice of a [`Telemetry`] handle's state.
struct Shard {
    /// Per-handle lane number: 0 for the thread that built the handle,
    /// then in order of first use.
    lane: u32,
    /// Chrome-trace lane id (`rank * LANE_STRIDE + lane`).
    tid: u32,
    state: Mutex<ShardState>,
}

struct ShardState {
    tree: TreeState,
    metrics: MetricsSnapshot,
    trace: Vec<TraceEvent>,
}

impl ShardState {
    fn new() -> Self {
        Self {
            tree: TreeState::new(),
            metrics: MetricsSnapshot::default(),
            trace: Vec::new(),
        }
    }
}

struct Inner {
    enabled: bool,
    rank: usize,
    trace_on: AtomicBool,
    next_lane: AtomicU32,
    /// Membership epoch stamped onto samples (see [`Telemetry::set_epoch`]).
    membership_epoch: AtomicU64,
    shards: Mutex<Vec<Arc<Shard>>>,
}

thread_local! {
    /// Cache mapping `Inner` allocations to this thread's shard. Keyed by
    /// a `Weak` so a dead entry still pins its `Inner` allocation's address
    /// (no ABA false hit after a handle is dropped); dead entries are
    /// pruned whenever a new shard is created.
    static SHARD_CACHE: RefCell<Vec<(Weak<Inner>, Arc<Shard>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Handle to one rank's telemetry state (timing tree + metrics registry +
/// optional trace buffer). Clones share the same state; keep one per rank.
/// Safe to share with worker threads — see the module docs' threading model.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Telemetry {
    /// An enabled collector for the given rank. Also pins the process-wide
    /// trace epoch so span timestamps from all rank threads share a
    /// timeline.
    pub fn new(rank: usize) -> Self {
        let _ = epoch();
        Self::build(rank, true)
    }

    /// A collector whose spans and metric updates are no-ops. Use this as
    /// the default so instrumentation costs nothing unless asked for.
    pub fn disabled() -> Self {
        Self::build(0, false)
    }

    fn build(rank: usize, enabled: bool) -> Self {
        let tel = Self {
            inner: Arc::new(Inner {
                enabled,
                rank,
                trace_on: AtomicBool::new(false),
                next_lane: AtomicU32::new(0),
                membership_epoch: AtomicU64::new(0),
                shards: Mutex::new(Vec::new()),
            }),
        };
        if tel.is_enabled() {
            // Claim lane 0 for the building thread (the rank thread), so
            // its gauges win merges and its trace lane sorts first.
            let _ = tel.shard();
        }
        tel
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !cfg!(feature = "off") && self.inner.enabled
    }

    /// Rank this collector was created for.
    pub fn rank(&self) -> usize {
        self.inner.rank
    }

    /// The calling thread's shard, created on first use.
    fn shard(&self) -> Arc<Shard> {
        SHARD_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let key = Arc::as_ptr(&self.inner);
            if let Some((_, s)) = cache.iter().find(|(w, _)| std::ptr::eq(w.as_ptr(), key)) {
                return s.clone();
            }
            cache.retain(|(w, _)| w.strong_count() > 0);
            let lane = self.inner.next_lane.fetch_add(1, Ordering::Relaxed);
            let shard = Arc::new(Shard {
                lane,
                tid: lane_tid(self.inner.rank, lane),
                state: Mutex::new(ShardState::new()),
            });
            lock(&self.inner.shards).push(shard.clone());
            cache.push((Arc::downgrade(&self.inner), shard.clone()));
            shard
        })
    }

    /// All shards, lowest lane first (merge order must be deterministic).
    fn shards_by_lane(&self) -> Vec<Arc<Shard>> {
        let mut shards = lock(&self.inner.shards).clone();
        shards.sort_by_key(|s| s.lane);
        shards
    }

    /// Set the membership epoch stamped onto every subsequent
    /// [`Telemetry::sample`]. A shrink-recovery driver bumps this right
    /// after a membership round installs a new epoch, so external samplers
    /// can attribute counters recorded between a failed collective and the
    /// recovery barrier to the correct rank set.
    pub fn set_epoch(&self, epoch: u64) {
        self.inner.membership_epoch.store(epoch, Ordering::SeqCst);
    }

    /// The membership epoch currently stamped onto samples.
    pub fn membership_epoch(&self) -> u64 {
        self.inner.membership_epoch.load(Ordering::SeqCst)
    }

    /// Start buffering per-span trace events for Chrome trace export.
    pub fn enable_trace(&self) {
        if self.is_enabled() {
            self.inner.trace_on.store(true, Ordering::Relaxed);
        }
    }

    /// Open a span nested under the innermost span open *on this thread*.
    /// Dropping the returned guard closes it and accrues its wall time into
    /// the calling thread's shard of the timing tree.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_cat(name, "default")
    }

    /// Like [`Telemetry::span`] with an explicit trace category
    /// (e.g. `"compute"`, `"comm"`).
    #[inline]
    pub fn span_cat(&self, name: &'static str, cat: &'static str) -> Span {
        if !self.is_enabled() {
            return Span { live: None };
        }
        let shard = self.shard();
        let node = {
            let mut st = lock(&shard.state);
            let parent = *st.tree.stack.last().expect("span stack never empty");
            let node = st.tree.child(parent, name, cat);
            st.tree.stack.push(node);
            node
        };
        Span {
            live: Some(SpanLive {
                inner: self.inner.clone(),
                shard,
                node,
                start: Instant::now(),
            }),
        }
    }

    /// Add `delta` to the named counter.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if self.is_enabled() && delta > 0 {
            let shard = self.shard();
            *lock(&shard.state)
                .metrics
                .counters
                .entry(name.to_string())
                .or_insert(0) += delta;
        }
    }

    /// Add several counter deltas under one shard-lock acquisition, so a
    /// concurrent [`Telemetry::sample`] sees either none or all of the
    /// batch — use this for counters with cross-key invariants (e.g.
    /// "bytes sent" and "messages sent" updated together).
    pub fn counters_add(&self, deltas: &[(&str, u64)]) {
        if !self.is_enabled() {
            return;
        }
        let shard = self.shard();
        let mut st = lock(&shard.state);
        for (name, delta) in deltas {
            if *delta > 0 {
                *st.metrics.counters.entry(name.to_string()).or_insert(0) += delta;
            }
        }
    }

    /// Set the named gauge to `value` (last write on this thread wins; on
    /// snapshot merge, the lowest lane that set the gauge wins).
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if self.is_enabled() {
            let shard = self.shard();
            lock(&shard.state)
                .metrics
                .gauges
                .insert(name.to_string(), value);
        }
    }

    /// A prefixed view of this collector: every metric name recorded
    /// through the returned [`Lane`] is namespaced as `<prefix>/<name>`.
    /// Used for per-entity metric lanes (e.g. `campaign/job/7/steps`) so
    /// co-resident workloads on one rank never collide on metric names.
    pub fn lane(&self, prefix: &str) -> Lane {
        Lane {
            tel: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// Record one observation into the named log2-bucket histogram.
    #[inline]
    pub fn hist_record(&self, name: &str, value: u64) {
        if self.is_enabled() {
            let shard = self.shard();
            lock(&shard.state)
                .metrics
                .histograms
                .entry(name.to_string())
                .or_default()
                .record(value);
        }
    }

    /// Merge a whole externally built histogram into the named one.
    pub fn hist_merge(&self, name: &str, hist: &Histogram) {
        if self.is_enabled() {
            let shard = self.shard();
            lock(&shard.state)
                .metrics
                .histograms
                .entry(name.to_string())
                .or_default()
                .merge(hist);
        }
    }

    /// Copy of the accumulated metrics, merged across all thread shards:
    /// counters sum, histograms merge, duplicate gauges resolve to the
    /// lowest lane's value.
    ///
    /// Shards are visited one at a time, so writers that update *between*
    /// this call's per-shard locks can skew cross-shard invariants; an
    /// external sampler polling a live run should use
    /// [`Telemetry::sample`], which takes one consistent cut.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for shard in self.shards_by_lane() {
            merge_metrics_into(&mut out, &lock(&shard.state).metrics);
        }
        out
    }

    /// Flatten the timing tree into rows (depth-first, insertion order),
    /// merging all thread shards: nodes with equal paths accumulate, and
    /// sibling order follows the lowest lane that first recorded the path.
    pub fn tree_snapshot(&self) -> TimingTreeSnapshot {
        let mut merged = TreeState::new();
        for shard in self.shards_by_lane() {
            merged.merge_from(&lock(&shard.state).tree);
        }
        tree_rows(&merged)
    }

    /// One *consistent* cut of metrics and timing tree across every thread
    /// shard, for external samplers polling a live run (the observability
    /// plane's metrics frames).
    ///
    /// Unlike [`Telemetry::metrics_snapshot`] + [`Telemetry::tree_snapshot`]
    /// — which take per-shard locks one at a time, twice, and can tear
    /// cross-shard or tree-vs-metrics invariants when workers write
    /// mid-merge — this holds *all* shard locks simultaneously while
    /// merging. Locks are taken in lane order; writers only ever hold their
    /// own single shard lock, so no ordering deadlock is possible. Writers
    /// block for the duration of one merge (microseconds at live-export
    /// cadence).
    pub fn sample(&self) -> TelemetrySample {
        let shards = self.shards_by_lane();
        let guards: Vec<_> = shards.iter().map(|s| lock(&s.state)).collect();
        // Read the epoch while every shard lock is held: a recovery driver
        // bumps it before resuming metric writes, so a sample can never pair
        // post-recovery counters with the pre-recovery epoch.
        let epoch = self.membership_epoch();
        let mut metrics = MetricsSnapshot::default();
        let mut merged = TreeState::new();
        for st in &guards {
            merge_metrics_into(&mut metrics, &st.metrics);
            merged.merge_from(&st.tree);
        }
        TelemetrySample {
            epoch,
            metrics,
            tree: tree_rows(&merged),
        }
    }

    /// Total accrued time of the tree node at `path` ("a/b/c"), if present.
    pub fn node_secs(&self, path: &str) -> Option<f64> {
        self.tree_snapshot()
            .rows
            .iter()
            .find(|r| r.path == path)
            .map(|r| r.total_secs)
    }

    /// Take the buffered trace events from every thread shard (empties the
    /// buffers), lowest lane first.
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in self.shards_by_lane() {
            out.append(&mut lock(&shard.state).trace);
        }
        out
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("rank", &self.inner.rank)
            .finish()
    }
}

struct SpanLive {
    inner: Arc<Inner>,
    shard: Arc<Shard>,
    node: usize,
    start: Instant,
}

/// RAII guard returned by [`Telemetry::span`]; closes the span on drop.
/// Drop it on the thread that opened it — the span stack is per-thread.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
pub struct Span {
    live: Option<SpanLive>,
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed = live.start.elapsed();
        let mut st = lock(&live.shard.state);
        debug_assert_eq!(
            st.tree.stack.last(),
            Some(&live.node),
            "spans closed out of order"
        );
        st.tree.stack.pop();
        st.tree.nodes[live.node].total += elapsed;
        st.tree.nodes[live.node].count += 1;
        if live.inner.trace_on.load(Ordering::Relaxed) {
            let ep = epoch();
            let (name, cat) = {
                let n = &st.tree.nodes[live.node];
                (n.name.to_string(), n.cat.to_string())
            };
            st.trace.push(TraceEvent {
                name,
                cat,
                ts_us: live.start.saturating_duration_since(ep).as_secs_f64() * 1e6,
                dur_us: elapsed.as_secs_f64() * 1e6,
                tid: live.shard.tid,
            });
        }
    }
}

/// A name-prefixed view of a [`Telemetry`] collector (see
/// [`Telemetry::lane`]). Cheap to create per entity; shares the parent's
/// shards, so lane metrics appear in the parent's snapshots under their
/// prefixed names.
#[derive(Clone)]
pub struct Lane {
    tel: Telemetry,
    prefix: String,
}

impl Lane {
    /// The full metric name this lane records `name` under.
    pub fn scoped(&self, name: &str) -> String {
        format!("{}/{}", self.prefix, name)
    }

    /// [`Telemetry::counter_add`] under this lane's prefix.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.tel.counter_add(&self.scoped(name), delta);
    }

    /// [`Telemetry::gauge_set`] under this lane's prefix.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.tel.gauge_set(&self.scoped(name), value);
    }

    /// [`Telemetry::hist_record`] under this lane's prefix.
    pub fn hist_record(&self, name: &str, value: u64) {
        self.tel.hist_record(&self.scoped(name), value);
    }
}

/// Open a span for the rest of the enclosing scope:
/// `span!(tel, "phi_sweep")` or `span!(tel, "pack", "comm")`.
#[macro_export]
macro_rules! span {
    ($tel:expr, $name:expr) => {
        let _span_guard = $tel.span($name);
    };
    ($tel:expr, $name:expr, $cat:expr) => {
        let _span_guard = $tel.span_cat($name, $cat);
    };
}

/// One consistent cut of a [`Telemetry`] handle's state — see
/// [`Telemetry::sample`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySample {
    /// Membership epoch in effect when the sample was cut (0 until a
    /// shrink recovery installs a later one via [`Telemetry::set_epoch`]).
    pub epoch: u64,
    /// Merged counters / gauges / histograms.
    pub metrics: MetricsSnapshot,
    /// Merged timing tree.
    pub tree: TimingTreeSnapshot,
}

/// Merge one shard's metrics into an accumulating snapshot: counters sum,
/// histograms merge, first (lowest-lane) gauge wins.
fn merge_metrics_into(out: &mut MetricsSnapshot, src: &MetricsSnapshot) {
    for (k, v) in &src.counters {
        *out.counters.entry(k.clone()).or_insert(0) += v;
    }
    for (k, v) in &src.gauges {
        out.gauges.entry(k.clone()).or_insert(*v);
    }
    for (k, h) in &src.histograms {
        out.histograms.entry(k.clone()).or_default().merge(h);
    }
}

/// Flatten a merged tree into depth-first rows.
fn tree_rows(merged: &TreeState) -> TimingTreeSnapshot {
    fn walk(st: &TreeState, node: usize, prefix: &str, depth: usize, rows: &mut Vec<TimingRow>) {
        for &c in &st.nodes[node].children {
            let n = &st.nodes[c];
            let path = if prefix.is_empty() {
                n.name.to_string()
            } else {
                format!("{prefix}/{}", n.name)
            };
            rows.push(TimingRow {
                path: path.clone(),
                depth,
                cat: n.cat.to_string(),
                total_secs: n.total.as_secs_f64(),
                count: n.count,
            });
            walk(st, c, &path, depth + 1, rows);
        }
    }
    let mut rows = Vec::new();
    walk(merged, 0, "", 0, &mut rows);
    TimingTreeSnapshot { rows }
}

/// One flattened timing-tree node.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingRow {
    /// Slash-joined path from the root, e.g. `"step/phi_sweep"`.
    pub path: String,
    /// Nesting depth (root children are 0).
    pub depth: usize,
    /// Trace category of the node.
    pub cat: String,
    /// Total accrued wall time in seconds.
    pub total_secs: f64,
    /// Number of times the span was closed.
    pub count: u64,
}

/// Depth-first flattening of one rank's timing tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimingTreeSnapshot {
    /// Rows in depth-first order, parents before children.
    pub rows: Vec<TimingRow>,
}

impl TimingTreeSnapshot {
    /// Compact wire form for cross-rank gathers (exact f64 round-trip).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{}\x1f{}\x1f{}\x1f{:016x}\x1f{}\n",
                r.depth,
                r.path,
                r.cat,
                r.total_secs.to_bits(),
                r.count
            ));
        }
        out.into_bytes()
    }

    /// Inverse of [`TimingTreeSnapshot::serialize`].
    pub fn deserialize(bytes: &[u8]) -> Self {
        let text = String::from_utf8_lossy(bytes);
        let rows = text
            .lines()
            .filter_map(|line| {
                let mut it = line.split('\x1f');
                Some(TimingRow {
                    depth: it.next()?.parse().ok()?,
                    path: it.next()?.to_string(),
                    cat: it.next()?.to_string(),
                    total_secs: f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?),
                    count: it.next()?.parse().ok()?,
                })
            })
            .collect();
        Self { rows }
    }

    /// Single-rank human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::from("timing tree (single rank)\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:indent$}{:<w$} {:>8} calls  {:>12.6} s\n",
                "",
                r.path.rsplit('/').next().unwrap_or(&r.path),
                r.count,
                r.total_secs,
                indent = 2 * r.depth,
                w = 28usize.saturating_sub(2 * r.depth),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "off"))]
    #[test]
    fn lanes_prefix_metric_names() {
        let tel = Telemetry::new(0);
        let lane = tel.lane("campaign/job/3");
        lane.counter_add("steps", 5);
        lane.counter_add("steps", 2);
        lane.gauge_set("progress", 0.5);
        let m = tel.metrics_snapshot();
        assert_eq!(m.counters.get("campaign/job/3/steps"), Some(&7));
        assert_eq!(m.gauges.get("campaign/job/3/progress"), Some(&0.5));
        assert_eq!(lane.scoped("rollbacks"), "campaign/job/3/rollbacks");
    }

    // Asserts enabled-mode collection; meaningless when spans are compiled
    // out with the `off` feature.
    #[cfg(not(feature = "off"))]
    #[test]
    fn spans_nest_and_accumulate() {
        let tel = Telemetry::new(0);
        for _ in 0..3 {
            let _outer = tel.span("step");
            {
                span!(tel, "phi_sweep", "compute");
                std::hint::black_box(0u64);
            }
            span!(tel, "mu_sweep", "compute");
        }
        let snap = tel.tree_snapshot();
        let paths: Vec<&str> = snap.rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["step", "step/phi_sweep", "step/mu_sweep"]);
        assert!(snap.rows.iter().all(|r| r.count == 3));
        // Children are nested: parent total covers child totals.
        assert!(snap.rows[0].total_secs >= snap.rows[1].total_secs + snap.rows[2].total_secs);
    }

    #[test]
    fn snapshot_serialization_round_trips_exactly() {
        let tel = Telemetry::new(2);
        {
            let _a = tel.span("a");
            span!(tel, "b");
        }
        let snap = tel.tree_snapshot();
        assert_eq!(TimingTreeSnapshot::deserialize(&snap.serialize()), snap);
    }

    #[test]
    fn disabled_spans_are_cheap() {
        // The acceptance bar for the compile-out/disable path: a disabled
        // span must cost a branch, not a syscall. 1M spans in well under a
        // second leaves two orders of magnitude of slack even on a loaded
        // CI box (the real cost is single-digit ns per span).
        let tel = Telemetry::disabled();
        let n = 1_000_000u64;
        let start = Instant::now();
        for i in 0..n {
            let _g = tel.span("hot");
            tel.counter_add("c", std::hint::black_box(i) & 1);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(500),
            "1M disabled spans took {elapsed:?}"
        );
        assert!(tel.tree_snapshot().rows.is_empty());
        assert!(tel.metrics_snapshot().counters.is_empty());
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn metrics_registry_accumulates() {
        let tel = Telemetry::new(0);
        tel.counter_add("bytes", 10);
        tel.counter_add("bytes", 5);
        tel.gauge_set("mlups", 1.5);
        tel.gauge_set("mlups", 2.5);
        tel.hist_record("wait_ns", 0);
        tel.hist_record("wait_ns", 1);
        tel.hist_record("wait_ns", 1000);
        let m = tel.metrics_snapshot();
        assert_eq!(m.counters["bytes"], 15);
        assert_eq!(m.gauges["mlups"], 2.5);
        let h = &m.histograms["wait_ns"];
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn spans_and_metrics_from_worker_threads_merge() {
        let tel = Telemetry::new(3);
        tel.enable_trace();
        tel.counter_add("cells", 10);
        {
            let _outer = tel.span("step");
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let t = tel.clone();
                        let _g = t.span_cat("phi_slab", "compute");
                        t.counter_add("cells", 7);
                        t.hist_record("slab_ns", 42);
                    });
                }
            });
        }
        // Counters sum across threads; worker tree nodes appear as their
        // own root-level paths with accumulated counts.
        let m = tel.metrics_snapshot();
        assert_eq!(m.counters["cells"], 24);
        assert_eq!(m.histograms["slab_ns"].count(), 2);
        let snap = tel.tree_snapshot();
        let slab = snap.rows.iter().find(|r| r.path == "phi_slab").unwrap();
        assert_eq!(slab.count, 2);
        assert!(snap.rows.iter().any(|r| r.path == "step"));
        // Each worker got its own trace lane; the rank thread is lane 0.
        let trace = tel.take_trace();
        let mut tids: Vec<u32> = trace.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert!(tids.contains(&lane_tid(3, 0)), "rank-thread lane missing");
        assert_eq!(
            tids.iter().filter(|&&t| t != lane_tid(3, 0)).count(),
            2,
            "expected one extra lane per worker thread: {tids:?}"
        );
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn gauge_merge_prefers_the_building_thread() {
        let tel = Telemetry::new(0);
        tel.gauge_set("mlups", 1.0);
        std::thread::scope(|s| {
            s.spawn(|| tel.gauge_set("mlups", 99.0));
        });
        assert_eq!(tel.metrics_snapshot().gauges["mlups"], 1.0);
    }

    #[test]
    fn telemetry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn sample_matches_individual_snapshots_when_quiescent() {
        let tel = Telemetry::new(0);
        tel.counter_add("cells", 7);
        tel.gauge_set("mlups", 3.5);
        {
            let _s = tel.span("step");
        }
        let s = tel.sample();
        assert_eq!(s.metrics, tel.metrics_snapshot());
        assert_eq!(s.tree, tel.tree_snapshot());
        assert_eq!(s.metrics.counters["cells"], 7);
        assert_eq!(s.tree.rows[0].path, "step");
    }

    /// Two writer threads bump counters in *different shards* in strict
    /// alternation (ping then pong), so at every instant
    /// `ping - pong ∈ {0, 1}`. A sampler using the all-locks-at-once cut
    /// must never observe anything else; the one-shard-at-a-time
    /// `metrics_snapshot` can (that is the torn read this guards against).
    #[cfg(not(feature = "off"))]
    #[test]
    fn sample_sees_a_consistent_cross_shard_cut() {
        use std::sync::atomic::AtomicU64;

        let tel = Telemetry::new(0);
        let turn = AtomicU64::new(0);
        let rounds: u64 = 500;
        fn wait(turn: &AtomicU64, want: u64) {
            while turn.load(Ordering::Acquire) != want {
                std::thread::yield_now();
            }
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..rounds {
                    wait(&turn, 2 * i);
                    tel.counter_add("ping", 1);
                    turn.store(2 * i + 1, Ordering::Release);
                }
            });
            s.spawn(|| {
                for i in 0..rounds {
                    wait(&turn, 2 * i + 1);
                    tel.counter_add("pong", 1);
                    turn.store(2 * i + 2, Ordering::Release);
                }
            });
            let mut observed = 0u64;
            while turn.load(Ordering::Acquire) < 2 * rounds {
                let m = tel.sample().metrics;
                let ping = m.counters.get("ping").copied().unwrap_or(0);
                let pong = m.counters.get("pong").copied().unwrap_or(0);
                assert!(
                    ping == pong || ping == pong + 1,
                    "torn cross-shard read: ping {ping} pong {pong}"
                );
                observed += 1;
            }
            assert!(observed > 0);
        });
        let m = tel.sample().metrics;
        assert_eq!(m.counters["ping"], rounds);
        assert_eq!(m.counters["pong"], rounds);
    }

    /// A ping/pong across a simulated shrink recovery: the writer bumps the
    /// membership epoch *before* recording any post-recovery counter, so a
    /// sample whose counters include post-recovery pongs must carry the new
    /// epoch — counters can never be attributed to the pre-recovery epoch.
    #[cfg(not(feature = "off"))]
    #[test]
    fn samples_tag_counters_with_the_membership_epoch_across_recovery() {
        use std::sync::atomic::AtomicU64;

        let tel = Telemetry::new(0);
        assert_eq!(tel.sample().epoch, 0, "samples start at epoch 0");
        let turn = AtomicU64::new(0);
        let rounds: u64 = 200;
        fn wait(turn: &AtomicU64, want: u64) {
            while turn.load(Ordering::Acquire) != want {
                std::thread::yield_now();
            }
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..rounds {
                    wait(&turn, 2 * i);
                    tel.counter_add("ping", 1);
                    turn.store(2 * i + 1, Ordering::Release);
                }
            });
            s.spawn(|| {
                for i in 0..rounds {
                    wait(&turn, 2 * i + 1);
                    // Simulated recovery boundary: install the epoch first,
                    // then record the first post-recovery counter.
                    tel.set_epoch(i + 1);
                    tel.counter_add("pong", 1);
                    turn.store(2 * i + 2, Ordering::Release);
                }
            });
            while turn.load(Ordering::Acquire) < 2 * rounds {
                let s = tel.sample();
                let pong = s.metrics.counters.get("pong").copied().unwrap_or(0);
                assert!(
                    s.epoch >= pong,
                    "sample holds {pong} post-recovery pongs but is tagged epoch {}",
                    s.epoch
                );
            }
        });
        let s = tel.sample();
        assert_eq!(s.epoch, rounds);
        assert_eq!(s.metrics.counters["pong"], rounds);
    }

    /// `counters_add` batches updates under one lock: a sampler never sees
    /// half the batch, even within a single shard.
    #[cfg(not(feature = "off"))]
    #[test]
    fn batched_counters_are_atomic_under_sampling() {
        let tel = Telemetry::new(0);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..2_000 {
                    tel.counters_add(&[("msgs", 1), ("bytes", 1)]);
                }
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                let m = tel.sample().metrics;
                let a = m.counters.get("msgs").copied().unwrap_or(0);
                let b = m.counters.get("bytes").copied().unwrap_or(0);
                assert_eq!(a, b, "sampler saw half a counters_add batch");
            }
        });
        assert_eq!(tel.sample().metrics.counters["msgs"], 2_000);
    }
}
