//! Cross-rank reduction of timing trees into a min/avg/max report,
//! mirroring waLBerla's reduced timing pools. Reduction itself is a pure
//! function over gathered snapshots; the gather is injected as a closure so
//! this crate needs no dependency on the communication layer.

use crate::{TimingRow, TimingTreeSnapshot};

/// One node of the rank-reduced tree.
#[derive(Clone, Debug, PartialEq)]
pub struct ReducedRow {
    /// Slash-joined path from the root.
    pub path: String,
    /// Nesting depth.
    pub depth: usize,
    /// Number of ranks that reported this node.
    pub ranks: usize,
    /// Largest per-rank call count.
    pub count: u64,
    /// Minimum total seconds across reporting ranks.
    pub min_secs: f64,
    /// Mean total seconds across reporting ranks.
    pub avg_secs: f64,
    /// Maximum total seconds across reporting ranks.
    pub max_secs: f64,
}

/// Timing tree reduced across ranks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReducedTree {
    /// Number of ranks that contributed.
    pub n_ranks: usize,
    /// Rows in rank-0 depth-first order; nodes unknown to rank 0 are
    /// appended in sorted path order so the result is deterministic.
    pub rows: Vec<ReducedRow>,
}

/// Reduce already-gathered snapshots (deterministic in the rank order of
/// `snaps`; row order never depends on timing values).
pub fn reduce_snapshots(snaps: &[TimingTreeSnapshot]) -> ReducedTree {
    // Row order: rank 0's depth-first order first, then any paths only
    // other ranks saw, sorted.
    let mut order: Vec<&TimingRow> = Vec::new();
    let mut known: Vec<&str> = Vec::new();
    if let Some(first) = snaps.first() {
        for r in &first.rows {
            order.push(r);
            known.push(&r.path);
        }
    }
    let mut extra: Vec<&TimingRow> = snaps
        .iter()
        .skip(1)
        .flat_map(|s| s.rows.iter())
        .filter(|r| !known.contains(&r.path.as_str()))
        .collect();
    extra.sort_by(|a, b| a.path.cmp(&b.path));
    extra.dedup_by(|a, b| a.path == b.path);
    order.extend(extra);

    let rows = order
        .iter()
        .map(|proto| {
            let mut ranks = 0usize;
            let mut count = 0u64;
            let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
            for s in snaps {
                if let Some(r) = s.rows.iter().find(|r| r.path == proto.path) {
                    ranks += 1;
                    count = count.max(r.count);
                    min = min.min(r.total_secs);
                    max = max.max(r.total_secs);
                    sum += r.total_secs;
                }
            }
            ReducedRow {
                path: proto.path.clone(),
                depth: proto.depth,
                ranks,
                count,
                min_secs: min,
                avg_secs: sum / ranks.max(1) as f64,
                max_secs: max,
            }
        })
        .collect();
    ReducedTree {
        n_ranks: snaps.len(),
        rows,
    }
}

/// Gather-and-reduce: serialize this rank's snapshot, hand it to `gather`
/// (which returns `Some(all ranks' payloads)` on the root and `None`
/// elsewhere), and reduce on the root.
///
/// `gather` is typically `|b| rank.gather(0, …)` from the communication
/// layer; see `Rank::reduce_timing` there for the one-call wrapper.
pub fn reduce_with<F>(snap: &TimingTreeSnapshot, gather: F) -> Option<ReducedTree>
where
    F: FnOnce(Vec<u8>) -> Option<Vec<Vec<u8>>>,
{
    let gathered = gather(snap.serialize())?;
    let snaps: Vec<TimingTreeSnapshot> = gathered
        .iter()
        .map(|b| TimingTreeSnapshot::deserialize(b))
        .collect();
    Some(reduce_snapshots(&snaps))
}

impl ReducedTree {
    /// Human-readable table: one line per node, indented by depth, with
    /// call count and min/avg/max seconds across ranks.
    pub fn report(&self) -> String {
        let mut out = format!(
            "timing tree reduced over {} rank{} (seconds, min/avg/max across ranks)\n",
            self.n_ranks,
            if self.n_ranks == 1 { "" } else { "s" }
        );
        out.push_str(&format!(
            "{:<34} {:>8}  {:>12} {:>12} {:>12}\n",
            "node", "calls", "min", "avg", "max"
        ));
        for r in &self.rows {
            let leaf = r.path.rsplit('/').next().unwrap_or(&r.path);
            out.push_str(&format!(
                "{:indent$}{:<w$} {:>8}  {:>12.6} {:>12.6} {:>12.6}\n",
                "",
                leaf,
                r.count,
                r.min_secs,
                r.avg_secs,
                r.max_secs,
                indent = 2 * r.depth,
                w = 34usize.saturating_sub(2 * r.depth),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(path: &str, depth: usize, secs: f64, count: u64) -> TimingRow {
        TimingRow {
            path: path.to_string(),
            depth,
            cat: "default".to_string(),
            total_secs: secs,
            count,
        }
    }

    #[test]
    fn reduce_computes_min_avg_max_in_rank0_order() {
        let r0 = TimingTreeSnapshot {
            rows: vec![row("step", 0, 2.0, 4), row("step/phi", 1, 1.0, 4)],
        };
        let r1 = TimingTreeSnapshot {
            rows: vec![
                row("step", 0, 4.0, 4),
                row("step/phi", 1, 3.0, 4),
                row("step/extra", 1, 0.5, 1),
            ],
        };
        let red = reduce_snapshots(&[r0, r1]);
        assert_eq!(red.n_ranks, 2);
        let paths: Vec<&str> = red.rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["step", "step/phi", "step/extra"]);
        assert_eq!(red.rows[0].min_secs, 2.0);
        assert_eq!(red.rows[0].avg_secs, 3.0);
        assert_eq!(red.rows[0].max_secs, 4.0);
        assert_eq!(red.rows[2].ranks, 1);
        assert_eq!(red.rows[2].avg_secs, 0.5);
        // Report mentions every node and the rank count.
        let rep = red.report();
        assert!(rep.contains("2 ranks"));
        assert!(rep.contains("extra"));
    }

    #[test]
    fn reduce_with_passes_serialized_snapshot_through_gather() {
        let snap = TimingTreeSnapshot {
            rows: vec![row("a", 0, 1.25, 2)],
        };
        // Non-root: gather yields None.
        assert!(reduce_with(&snap, |_| None).is_none());
        // Root: identity gather of two copies.
        let red = reduce_with(&snap, |b| Some(vec![b.clone(), b])).unwrap();
        assert_eq!(red.rows.len(), 1);
        assert_eq!(red.rows[0].min_secs, 1.25);
        assert_eq!(red.rows[0].max_secs, 1.25);
    }
}
