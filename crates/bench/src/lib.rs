//! Shared measurement utilities for the figure-generation binaries.
//!
//! Every binary in `src/bin/` regenerates one figure (or the in-text
//! analysis) of the paper's evaluation section; see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded paper-vs-measured
//! results. Output goes to stdout as an aligned table and to
//! `results/<name>.csv` for plotting.

use std::io::Write;
use std::time::Instant;

use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::{mu_sweep, phi_sweep, KernelConfig, MuPart};
use eutectica_core::params::ModelParams;
use eutectica_core::regions::{build_scenario, Scenario};
use eutectica_core::state::BlockState;
use eutectica_core::sweep_pool::SweepPool;

/// Median-of-repetitions timing of `f`, in seconds per call.
pub fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps > 0);
    f(); // warmup
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// MLUP/s of the φ-kernel on a scenario block.
pub fn phi_mlups(
    params: &ModelParams,
    scenario: Scenario,
    dims: GridDims,
    cfg: KernelConfig,
    reps: usize,
) -> f64 {
    let mut state = build_scenario(scenario, dims);
    let secs = time_median(reps, || phi_sweep(params, &mut state, 0.0, cfg));
    dims.interior_volume() as f64 / secs / 1e6
}

/// MLUP/s of the µ-kernel on a scenario block.
pub fn mu_mlups(
    params: &ModelParams,
    scenario: Scenario,
    dims: GridDims,
    cfg: KernelConfig,
    reps: usize,
) -> f64 {
    let mut state = build_scenario(scenario, dims);
    // Realistic φ_dst (one φ step) so source terms are exercised.
    phi_sweep(params, &mut state, 0.0, cfg);
    let secs = time_median(reps, || {
        mu_sweep(params, &mut state, 0.0, cfg, MuPart::Full)
    });
    dims.interior_volume() as f64 / secs / 1e6
}

/// MLUP/s of the µ-kernel with `threads` intra-rank sweep threads
/// (z-slab work sharing; bit-identical to the serial kernel).
pub fn mu_mlups_threaded(
    params: &ModelParams,
    scenario: Scenario,
    dims: GridDims,
    cfg: KernelConfig,
    threads: usize,
    reps: usize,
) -> f64 {
    let pool = SweepPool::new(threads);
    let tel = eutectica_telemetry::Telemetry::disabled();
    let mut state = build_scenario(scenario, dims);
    phi_sweep(params, &mut state, 0.0, cfg);
    let secs = time_median(reps, || {
        pool.mu_sweep(params, &mut state, 0.0, cfg, MuPart::Full, &tel)
    });
    dims.interior_volume() as f64 / secs / 1e6
}

/// Full-step (φ-sweep + µ-sweep) MLUP/s with `threads` intra-rank sweep
/// threads.
pub fn step_mlups_threaded(
    params: &ModelParams,
    scenario: Scenario,
    dims: GridDims,
    cfg: KernelConfig,
    threads: usize,
    reps: usize,
) -> f64 {
    let pool = SweepPool::new(threads);
    let tel = eutectica_telemetry::Telemetry::disabled();
    let mut state = build_scenario(scenario, dims);
    let secs = time_median(reps, || {
        pool.phi_sweep(params, &mut state, 0.0, cfg, &tel);
        pool.mu_sweep(params, &mut state, 0.0, cfg, MuPart::Full, &tel);
    });
    dims.interior_volume() as f64 / secs / 1e6
}

/// A results table that prints aligned text and writes CSV.
pub struct ResultTable {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// New table with column headers.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Print to stdout and write `results/<name>.csv`.
    pub fn finish(&self) {
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap()
            })
            .collect();
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for r in &self.rows {
            println!("{}", line(r));
        }
        std::fs::create_dir_all("results").ok();
        if let Ok(mut f) = std::fs::File::create(format!("results/{}.csv", self.name)) {
            writeln!(f, "{}", self.header.join(",")).ok();
            for r in &self.rows {
                writeln!(f, "{}", r.join(",")).ok();
            }
            eprintln!("[written results/{}.csv]", self.name);
        }
    }
}

/// Build a scenario state with an evolved φ_dst, for direct kernel calls.
pub fn prepared_state(params: &ModelParams, scenario: Scenario, dims: GridDims) -> BlockState {
    let mut s = build_scenario(scenario, dims);
    phi_sweep(params, &mut s, 0.0, KernelConfig::default());
    s
}

/// Round to 2 decimals for display.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Round to 3 decimals for display.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Parse a `--trace-out <dir>` flag from the process arguments.
pub fn trace_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return Some(args.next().expect("--trace-out needs a path").into());
        }
        if let Some(p) = a.strip_prefix("--trace-out=") {
            return Some(p.into());
        }
    }
    None
}

/// Parse a `--threads <n>` flag from the process arguments (default 1):
/// intra-rank sweep threads, composing with the rank count into the hybrid
/// ranks × threads layout.
pub fn threads_arg() -> usize {
    let mut args = std::env::args().skip(1);
    let parse = |v: String| -> usize {
        let n = v.parse().expect("--threads must be a positive integer");
        assert!(n >= 1, "--threads must be a positive integer");
        n
    };
    while let Some(a) = args.next() {
        if a == "--threads" {
            return parse(args.next().expect("--threads needs a count"));
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return parse(v.to_string());
        }
    }
    1
}

/// Parse a `--health-every <n>` flag from the process arguments: scan
/// cadence of the in-situ field-health monitor (`0` disables scans even if
/// a monitor is attached; absent flag = no monitor, zero overhead).
pub fn health_every_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    let parse = |v: String| -> usize {
        v.parse()
            .expect("--health-every must be a non-negative step count")
    };
    while let Some(a) = args.next() {
        if a == "--health-every" {
            return Some(parse(
                args.next().expect("--health-every needs a step count"),
            ));
        }
        if let Some(v) = a.strip_prefix("--health-every=") {
            return Some(parse(v.to_string()));
        }
    }
    None
}

/// Parse a `--rebalance-every <n>` flag from the process arguments: cadence
/// of the dynamic load rebalancer's collective imbalance check (absent flag
/// = static placement, zero overhead).
pub fn rebalance_every_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    let parse = |v: String| -> usize {
        let n = v
            .parse()
            .expect("--rebalance-every must be a positive step count");
        assert!(n >= 1, "--rebalance-every must be a positive step count");
        n
    };
    while let Some(a) = args.next() {
        if a == "--rebalance-every" {
            return Some(parse(
                args.next().expect("--rebalance-every needs a step count"),
            ));
        }
        if let Some(v) = a.strip_prefix("--rebalance-every=") {
            return Some(parse(v.to_string()));
        }
    }
    None
}

/// Parse an `--imbalance-threshold <x>` flag from the process arguments:
/// max/avg per-rank load ratio above which a periodic check actually
/// migrates blocks (default 1.1 when `--rebalance-every` is given).
pub fn imbalance_threshold_arg() -> Option<f64> {
    let mut args = std::env::args().skip(1);
    let parse = |v: String| -> f64 {
        let x: f64 = v
            .parse()
            .expect("--imbalance-threshold must be a ratio >= 1.0");
        assert!(x >= 1.0, "--imbalance-threshold must be a ratio >= 1.0");
        x
    };
    while let Some(a) = args.next() {
        if a == "--imbalance-threshold" {
            return Some(parse(
                args.next().expect("--imbalance-threshold needs a ratio"),
            ));
        }
        if let Some(v) = a.strip_prefix("--imbalance-threshold=") {
            return Some(parse(v.to_string()));
        }
    }
    None
}

/// Build a [`RebalancePolicy`](eutectica_blockgrid::rebalance::RebalancePolicy)
/// from the `--rebalance-every` / `--imbalance-threshold` flags (`None`
/// when `--rebalance-every` is absent).
pub fn rebalance_policy_from_args() -> Option<eutectica_blockgrid::rebalance::RebalancePolicy> {
    rebalance_every_arg().map(|every| {
        eutectica_blockgrid::rebalance::RebalancePolicy::new(
            every,
            imbalance_threshold_arg().unwrap_or(1.1),
        )
    })
}

/// Parse a `--bench-out <path>` flag: record a perf trajectory
/// (`BENCH_<name>.json`) of this benchmark run to `path`.
pub fn bench_out_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--bench-out" {
            return Some(args.next().expect("--bench-out needs a path").into());
        }
        if let Some(p) = a.strip_prefix("--bench-out=") {
            return Some(p.into());
        }
    }
    None
}

/// Parse a `--quick` flag: shrink benchmark workloads for CI smoke runs.
pub fn quick_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--quick")
}

/// Parse a `--backend <name>` flag: a kernel-backend registry name
/// (`family[+tz][+buf][+sc]`, see `eutectica_core::kernels::backend`).
pub fn backend_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--backend" {
            return Some(args.next().expect("--backend needs a registry name"));
        }
        if let Some(v) = a.strip_prefix("--backend=") {
            return Some(v.to_string());
        }
    }
    None
}

/// Resolve a registry backend name to its kernel configuration, exiting
/// with the typed registry error on failure — `simd-avx2` on a host
/// without AVX2+FMA is a hard error here, never a silent fallback.
pub fn resolve_backend_or_exit(name: &str) -> KernelConfig {
    match eutectica_core::kernels::backend::resolve(name) {
        Ok(b) => b.config(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Parse an `--autotune` flag: per-block kernel-variant autotuning.
pub fn autotune_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--autotune")
}

/// Parse an `--observe-every <n>` flag: cadence of the in-situ physics
/// observables (absent = observability plane off, zero overhead).
pub fn observe_every_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    let parse = |v: String| -> usize {
        v.parse()
            .expect("--observe-every must be a non-negative step count")
    };
    while let Some(a) = args.next() {
        if a == "--observe-every" {
            return Some(parse(
                args.next().expect("--observe-every needs a step count"),
            ));
        }
        if let Some(v) = a.strip_prefix("--observe-every=") {
            return Some(parse(v.to_string()));
        }
    }
    None
}

/// Parse a `--metrics-out <path>` flag: write observable / slice / metrics
/// frames as NDJSON to `path` (rank 0).
pub fn metrics_out_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            return Some(args.next().expect("--metrics-out needs a path"));
        }
        if let Some(p) = a.strip_prefix("--metrics-out=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Parse a `--serve <addr>` flag: bind the live NDJSON subscription
/// endpoint on `addr` (e.g. `127.0.0.1:7119`; port 0 = OS-assigned).
pub fn serve_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--serve" {
            return Some(args.next().expect("--serve needs host:port"));
        }
        if let Some(p) = a.strip_prefix("--serve=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Run a distributed simulation with the in-situ observability plane
/// attached: cadenced physics observables, optional NDJSON metrics file,
/// and optional live subscription endpoint on rank 0. Returns rank 0's
/// observable records.
#[allow(clippy::too_many_arguments)] // mirrors the figure binaries' flag list
pub fn run_observed(
    n_ranks: usize,
    threads: usize,
    domain: [usize; 3],
    blocks: [usize; 3],
    steps: usize,
    overlap: eutectica_core::timeloop::OverlapOptions,
    observe_every: usize,
    metrics_out: Option<String>,
    serve: Option<String>,
) -> Vec<eutectica_obsv::ObservableRecord> {
    use eutectica_core::timeloop::DistributedSim;
    use eutectica_obsv::{FrameBus, InSituObserver, LiveServer, ObservablesConfig};
    use eutectica_telemetry::Telemetry;

    let params = ModelParams::ag_al_cu();
    let decomp = eutectica_blockgrid::decomp::Decomposition::new(
        eutectica_blockgrid::decomp::DomainSpec::directional(domain, blocks),
    );
    let out = eutectica_comm::Universe::run(n_ranks, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            params.clone(),
            decomp.clone(),
            KernelConfig::default(),
            overlap,
        );
        sim.set_threads(threads);
        let tel = Telemetry::new(rank.rank());
        sim.set_telemetry(tel.clone());
        sim.init_blocks(|b| eutectica_core::init::init_planar_front(b, 0, 6));

        let mut observer = InSituObserver::new(ObservablesConfig::with_every(observe_every));
        let mut server = None;
        if rank.rank() == 0 {
            if let Some(path) = &metrics_out {
                observer = observer
                    .with_output_path(path)
                    .expect("create --metrics-out file");
            }
            if let Some(addr) = &serve {
                let bus = std::sync::Arc::new(FrameBus::new(64));
                let srv = LiveServer::bind(addr, bus.clone()).expect("bind --serve address");
                println!("live endpoint listening on {}", srv.local_addr());
                observer = observer.with_bus(bus);
                server = Some(srv);
            }
        }
        sim.step_n_with(steps, |sim| {
            observer.observe_distributed(sim);
        });
        if let Some(mut srv) = server {
            let stats = srv.bus().stats();
            println!(
                "live endpoint: {} connection(s), {} frame(s) published, \
                 {} delivered, {} dropped (bounded-lag)",
                srv.connections(),
                stats.published,
                stats.sent,
                stats.dropped
            );
            srv.shutdown();
        }
        observer.records().to_vec()
    });
    let records = out.into_iter().next().unwrap_or_default();
    if let Some(last) = records.last() {
        println!(
            "observables ({} record(s), every {} steps): front {:.2} (rms {:.2}), \
             velocity {:.4} cells/t, solid {:.3}, lamellae {:?}, undercooling {:.4}",
            records.len(),
            observe_every,
            last.front_mean,
            last.front_rms,
            last.front_velocity,
            last.solid_fraction,
            last.lamella_count,
            last.undercooling
        );
    }
    records
}

/// Record the fig7-workload perf trajectory: per-kernel MLUP/s on the
/// paper's block sizes, hybrid step rate, ghost-exchange bandwidth, and
/// health/rebalance overheads — the repo's honesty file about speed
/// (commit as `BENCH_baseline.json`; compare with `bench_compare`).
pub fn record_fig7_trajectory(name: &str, quick: bool) -> eutectica_obsv::Trajectory {
    use eutectica_blockgrid::rebalance::RebalancePolicy;
    use eutectica_core::health::{HealthConfig, HealthMonitor};
    use eutectica_core::kernels::OptLevel;
    use eutectica_core::timeloop::{DistributedSim, OverlapOptions};
    use eutectica_telemetry::Telemetry;

    let params = ModelParams::ag_al_cu();
    let cfg = OptLevel::SimdTzBuf.config(); // the fig7 rung (no shortcuts)
    let (n, reps, steps) = if quick { (20, 2, 8) } else { (40, 5, 16) };
    let dims = GridDims::cube(n);
    let mut traj = eutectica_obsv::Trajectory::new(name);

    traj.push(
        "phi_mlups_simd_tz_buf",
        phi_mlups(&params, Scenario::Interface, dims, cfg, reps),
        "MLUP/s",
        true,
    );
    traj.push(
        "mu_mlups_simd_tz_buf",
        mu_mlups(&params, Scenario::Interface, dims, cfg, reps),
        "MLUP/s",
        true,
    );
    traj.push(
        "step_mlups_threaded2",
        step_mlups_threaded(
            &params,
            Scenario::Interface,
            GridDims::cube(20),
            cfg,
            2,
            reps,
        ),
        "MLUP/s",
        true,
    );

    // Distributed leg: 2 ranks with health scans and a rebalance policy
    // attached, so the overheads are measured in their production setting.
    let domain = [16, 16, 32];
    let blocks = [1, 1, 4];
    let decomp = eutectica_blockgrid::decomp::Decomposition::new(
        eutectica_blockgrid::decomp::DomainSpec::directional(domain, blocks),
    );
    let dist_params = params.clone();
    let (out, summary) = eutectica_comm::Universe::run_with_stats(2, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            dist_params.clone(),
            decomp.clone(),
            cfg,
            OverlapOptions::default(),
        );
        let tel = Telemetry::new(rank.rank());
        sim.set_telemetry(tel.clone());
        sim.set_health_monitor(Some(HealthMonitor::new(
            HealthConfig::for_params(&dist_params).with_every(4),
        )));
        sim.set_rebalance_policy(Some(RebalancePolicy::new(8, 1.05)));
        sim.init_blocks(|b| eutectica_core::init::init_planar_front(b, 0, 6));
        let t = Instant::now();
        sim.step_n(steps);
        let wall = t.elapsed().as_secs_f64();
        let m = tel.sample().metrics;
        (
            wall,
            m.gauges.get("health/scan_frac").copied().unwrap_or(0.0),
            tel.node_secs("step/rebalance").unwrap_or(0.0),
            tel.node_secs("step").unwrap_or(0.0),
        )
    });
    let wall = out.iter().map(|o| o.0).fold(0.0, f64::max).max(1e-9);
    let updates = (domain[0] * domain[1] * domain[2] * steps) as f64;
    traj.push("step_mlups_2ranks", updates / wall / 1e6, "MLUP/s", true);
    traj.push(
        "ghost_exchange_mb_s",
        summary.total.bytes_sent as f64 / wall / 1e6,
        "MB/s",
        true,
    );
    let health_pct = out.iter().map(|o| o.1).fold(0.0, f64::max) * 100.0;
    traj.push("health_scan_overhead_pct", health_pct, "%", false);
    let (rb_secs, step_secs) = out.iter().fold((0.0, 0.0), |(a, b), o| (a + o.2, b + o.3));
    traj.push(
        "rebalance_overhead_pct",
        if step_secs > 0.0 {
            100.0 * rb_secs / step_secs
        } else {
            0.0
        },
        "%",
        false,
    );
    // Shrink-recovery leg: kill a rank mid-run, shrink-continue on the
    // survivors, and charge the membership-round + re-homing + restore
    // wall-clock against the whole run.
    let chaos = shrink_demo(1, 6, true, eutectica_pfio::resilient::ShrinkSource::Disk, 1);
    traj.push(
        "recovery_overhead_pct",
        100.0 * chaos.outcome.shrink_cost.recovery_secs / chaos.total_secs.max(1e-9),
        "%",
        false,
    );
    traj
}

/// Result of an autotuned step benchmark: the per-block chosen-variant
/// census plus the measured step rate of the tuned run against the best
/// hardcoded ladder rung on the identical workload.
pub struct AutotuneReport {
    /// Step MLUP/s of the autotuned run (measured after every block
    /// pinned its winner).
    pub tuned_mlups: f64,
    /// Step MLUP/s with the best hardcoded rung pinned globally.
    pub pinned_mlups: f64,
    /// Label of that hardcoded rung.
    pub pinned_label: &'static str,
    /// `variant name → blocks pinned to it`.
    pub summary: Vec<(String, usize)>,
    /// Per-block view: `(block id, variant, pinned?)`.
    pub per_block: Vec<(usize, String, bool)>,
    /// Steps the warmup took until every block pinned.
    pub tune_steps: usize,
    /// Pin events observed.
    pub pins: u64,
}

impl AutotuneReport {
    /// Print the rank-0 chosen-variant summary (the lines the CI autotune
    /// smoke job asserts on).
    pub fn print(&self) {
        println!(
            "autotune chosen variants ({} pins in {} steps):",
            self.pins, self.tune_steps
        );
        for (name, count) in &self.summary {
            println!("  {count:>3} block(s) -> {name}");
        }
        for (id, name, pinned) in &self.per_block {
            println!(
                "  block {id}: {name}{}",
                if *pinned { "" } else { " (still warming up)" }
            );
        }
        println!(
            "autotuned step rate: {:.2} MLUP/s vs {:.2} MLUP/s pinned '{}'",
            self.tuned_mlups, self.pinned_mlups, self.pinned_label
        );
    }
}

/// Run the autotuned step benchmark: a single-rank distributed simulation
/// over a planar-front column (front + liquid blocks, so different regions
/// can pin different variants), tuned with the bit-exact candidate policy,
/// then timed and compared against the best hardcoded rung on the same
/// workload.
pub fn autotune_step_report(quick: bool, threads: usize) -> AutotuneReport {
    use eutectica_core::kernels::backend::AutotunePolicy;
    use eutectica_core::kernels::OptLevel;
    use eutectica_core::timeloop::{DistributedSim, OverlapOptions};

    let domain = if quick { [16, 16, 32] } else { [24, 24, 48] };
    let blocks = [1, 1, 4];
    let measure_steps = if quick { 6 } else { 12 };
    let best = OptLevel::SimdTzBufShortcuts;
    let updates = (domain[0] * domain[1] * domain[2] * measure_steps) as f64;
    let make_decomp = || {
        eutectica_blockgrid::decomp::Decomposition::new(
            eutectica_blockgrid::decomp::DomainSpec::directional(domain, blocks),
        )
    };

    let params = ModelParams::ag_al_cu();
    let decomp = make_decomp();
    let (mut tuned, _) = eutectica_comm::Universe::run_with_stats(1, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            params.clone(),
            decomp.clone(),
            best.config(),
            OverlapOptions::default(),
        );
        sim.set_threads(threads);
        sim.init_blocks(|b| eutectica_core::init::init_planar_front(b, 0, 6));
        sim.set_autotune_policy(Some(AutotunePolicy::bit_exact()));
        let mut tune_steps = 0usize;
        while !sim.autotuner().unwrap().all_pinned() && tune_steps < 512 {
            sim.step();
            tune_steps += 1;
        }
        let t = Instant::now();
        sim.step_n(measure_steps);
        let wall = t.elapsed().as_secs_f64().max(1e-9);
        let tuner = sim.autotuner().unwrap();
        (
            wall,
            tuner.pinned_summary().into_iter().collect::<Vec<_>>(),
            tuner.per_block(),
            tune_steps,
            tuner.stats().pins,
        )
    });
    let (tuned_wall, summary, per_block, tune_steps, pins) = tuned.remove(0);

    let params = ModelParams::ag_al_cu();
    let decomp = make_decomp();
    let (pinned, _) = eutectica_comm::Universe::run_with_stats(1, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            params.clone(),
            decomp.clone(),
            best.config(),
            OverlapOptions::default(),
        );
        sim.set_threads(threads);
        sim.init_blocks(|b| eutectica_core::init::init_planar_front(b, 0, 6));
        sim.step_n(2); // same warm caches as the tuned leg's measured phase
        let t = Instant::now();
        sim.step_n(measure_steps);
        t.elapsed().as_secs_f64().max(1e-9)
    });

    AutotuneReport {
        tuned_mlups: updates / tuned_wall / 1e6,
        pinned_mlups: updates / pinned[0] / 1e6,
        pinned_label: best.label(),
        summary,
        per_block,
        tune_steps,
        pins,
    }
}

/// Run a fully instrumented distributed simulation and write observability
/// artifacts into `out_dir`:
///
/// * `trace.json` — Chrome trace-event timeline, one lane per rank plus
///   one per intra-rank sweep worker,
/// * `steps.jsonl` — one [`eutectica_telemetry::StepRecord`] per rank per
///   step,
///
/// and print the rank-reduced timing tree plus the Universe communication
/// summary to stdout. `threads` intra-rank sweep threads run per rank
/// (hybrid ranks × threads; 1 = serial sweeps).
#[allow(clippy::too_many_arguments)] // mirrors the figure binaries' flag list
pub fn run_traced(
    out_dir: &std::path::Path,
    n_ranks: usize,
    threads: usize,
    domain: [usize; 3],
    blocks: [usize; 3],
    steps: usize,
    overlap: eutectica_core::timeloop::OverlapOptions,
    health_every: Option<usize>,
    rebalance: Option<eutectica_blockgrid::rebalance::RebalancePolicy>,
) -> std::io::Result<()> {
    use eutectica_core::health::{HealthConfig, HealthMonitor};
    use eutectica_core::timeloop::DistributedSim;
    use eutectica_telemetry::Telemetry;

    std::fs::create_dir_all(out_dir)?;
    let params = ModelParams::ag_al_cu();
    let decomp = eutectica_blockgrid::decomp::Decomposition::new(
        eutectica_blockgrid::decomp::DomainSpec::directional(domain, blocks),
    );
    let (out, summary) = eutectica_comm::Universe::run_with_stats(n_ranks, move |rank| {
        let mut sim = DistributedSim::new(
            &rank,
            params.clone(),
            decomp.clone(),
            KernelConfig::default(),
            overlap,
        );
        sim.set_threads(threads);
        let tel = Telemetry::new(rank.rank());
        tel.enable_trace();
        sim.set_telemetry(tel.clone());
        sim.record_steps(true);
        if let Some(every) = health_every {
            sim.set_health_monitor(Some(HealthMonitor::new(
                HealthConfig::for_params(&params).with_every(every),
            )));
        }
        sim.init_blocks(|b| eutectica_core::init::init_planar_front(b, 0, 6));
        sim.set_rebalance_policy(rebalance.clone());
        sim.step_n(steps);
        let reduced = rank.reduce_timing(&tel.tree_snapshot());
        let metrics = tel.metrics_snapshot();
        let rb_stats = sim.rebalance_stats().cloned();
        (
            tel.take_trace(),
            sim.take_step_records(),
            reduced,
            metrics,
            rb_stats,
        )
    });

    let mut events = Vec::new();
    let mut records = Vec::new();
    let mut reduced = None;
    let mut rank0_metrics = None;
    let mut rank0_rb = None;
    for (ev, recs, red, metrics, rb) in out {
        events.push(ev);
        records.extend(recs);
        if reduced.is_none() {
            rank0_metrics = Some(metrics);
            rank0_rb = rb;
        }
        reduced = reduced.or(red);
    }
    let trace_path = out_dir.join("trace.json");
    let jsonl_path = out_dir.join("steps.jsonl");
    eutectica_telemetry::write_chrome_trace(&trace_path, &events)?;
    eutectica_telemetry::write_jsonl(&jsonl_path, &records)?;
    println!("{}", reduced.expect("rank 0 reduces").report());
    println!("communication summary:\n{}", summary.report());
    println!(
        "trace artifacts: {} (chrome://tracing), {} (JSONL)",
        trace_path.display(),
        jsonl_path.display()
    );
    if health_every.is_some() {
        if let Some(m) = rank0_metrics {
            let scans = m.counters.get("health/scans").copied().unwrap_or(0);
            let violations = m.counters.get("health/violations").copied().unwrap_or(0);
            let wall_ms = m.counters.get("health/scan_wall_ns").copied().unwrap_or(0) as f64 / 1e6;
            let frac = m.gauges.get("health/scan_frac").copied().unwrap_or(0.0);
            println!(
                "field health (rank 0): {scans} scan(s), {violations} violation(s), \
                 {wall_ms:.3} ms scanning, last scan {:.2} % of its step",
                frac * 100.0
            );
        }
    }
    if let Some(rb) = rank0_rb {
        print_rebalance_summary(&rb);
    }
    Ok(())
}

/// Print the rank-0 dynamic-load-rebalancing summary: measured imbalance at
/// the first check (static placement) vs. the last check, plus migration
/// volume. Ranks agree on the imbalance numbers — they come from the
/// collective decision broadcast.
pub fn print_rebalance_summary(rb: &eutectica_core::timeloop::RebalanceStats) {
    println!(
        "load rebalancing: {} check(s), {} rebalance(s); imbalance (max/avg) \
         {} at first check -> {:.3} before / {:.3} after last check; \
         rank 0 sent {} block(s) ({} B), received {}",
        rb.checks,
        rb.rebalances,
        rb.first_imbalance_before
            .map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}")),
        rb.last_imbalance_before,
        rb.last_imbalance_after,
        rb.blocks_sent,
        rb.bytes_sent,
        rb.blocks_received,
    );
}

/// Fig. 9 companion demo: a front-crossing scenario where the static
/// contiguous placement is badly imbalanced (a planar solidification front
/// low in a tall domain leaves most z-blocks in cheap bulk regions) and the
/// dynamic rebalancer repacks it. Runs the same scenario twice — static and
/// with the given policy — and prints the measured imbalance of each, so
/// the improvement is measured, not modeled. Returns
/// `(static max/avg, rebalanced max/avg)`.
pub fn rebalance_demo(every: usize, threshold: f64, threads: usize, steps: usize) -> (f64, f64) {
    use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
    use eutectica_blockgrid::rebalance::{BalanceStrategy, RebalancePolicy};
    use eutectica_core::kernels::OptLevel;
    use eutectica_core::timeloop::{run_distributed_rebalanced, OverlapOptions};

    // Block ids are x-fastest, so the contiguous static placement hands
    // rank 0 the entire bottom z-layer — which is exactly where the
    // solidification front sits. The three other ranks hold pure liquid.
    let domain = [32, 32, 16];
    let blocks = [2, 2, 4];
    let n_ranks = 4;
    let params = ModelParams::ag_al_cu();
    // Rung-5 kernels: region shortcuts make bulk blocks much cheaper than
    // front blocks — exactly the cost contrast of the paper's Sec. 5.1.2
    // region argument, and the worst case for a static layout.
    let cfg = OptLevel::SimdTzBufShortcuts.config();
    let run = |policy: RebalancePolicy| {
        run_distributed_rebalanced(
            params.clone(),
            Decomposition::new(DomainSpec::directional(domain, blocks)),
            n_ranks,
            threads,
            steps,
            cfg,
            OverlapOptions::default(),
            policy,
            |b| eutectica_core::init::init_planar_front(b, 0, 2),
        )
    };
    // Mean of the back half of the per-check measured imbalances: the
    // steady-state value, insensitive to single-check timing noise.
    let settled = |hist: &[f64]| -> f64 {
        let tail = &hist[hist.len() / 2..];
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    // Static run: threshold = infinity means the checks only *measure* the
    // imbalance of the untouched contiguous placement, never migrate.
    let static_out = run(RebalancePolicy::new(every, f64::INFINITY));
    let static_imb = settled(&static_out[0].1.imbalance_history);
    let mut policy = RebalancePolicy::new(every, threshold).with_strategy(BalanceStrategy::Lpt);
    // Short demo: weight the newest measurement heavily so the model tracks
    // the moving front within a couple of checks, and cancel cosmetic moves
    // aggressively so measurement noise does not cause placement churn.
    policy.alpha = 0.7;
    policy.slack = 0.15;
    let dynamic_out = run(policy);
    let rb = &dynamic_out[0].1;
    let dynamic_imb = settled(&rb.imbalance_history);
    println!(
        "rebalance demo ({domain:?} cells, {blocks:?} blocks, {n_ranks} ranks, \
         {steps} steps, check every {every}, steady-state mean over the last \
         {} check(s)):",
        rb.imbalance_history.len() - rb.imbalance_history.len() / 2,
    );
    println!("  static placement  : measured imbalance {static_imb:.3} (max/avg)");
    println!(
        "  dynamic (thr {threshold:.2}): measured imbalance {dynamic_imb:.3} after {} \
         rebalance(s), {} block migration(s) from rank 0",
        rb.rebalances, rb.blocks_sent,
    );
    (static_imb, dynamic_imb)
}

/// Parse a `--kill-rank <r>` flag: rank to kill in the chaos leg of a
/// figure binary (absent = no chaos leg).
pub fn kill_rank_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    let parse = |v: String| -> usize { v.parse().expect("--kill-rank must be a rank id") };
    while let Some(a) = args.next() {
        if a == "--kill-rank" {
            return Some(parse(args.next().expect("--kill-rank needs a rank id")));
        }
        if let Some(v) = a.strip_prefix("--kill-rank=") {
            return Some(parse(v.to_string()));
        }
    }
    None
}

/// Parse a `--kill-step <s>` flag: step at which the chaos leg kills the
/// rank named by `--kill-rank` (default 6).
pub fn kill_step_arg() -> Option<u64> {
    let mut args = std::env::args().skip(1);
    let parse = |v: String| -> u64 { v.parse().expect("--kill-step must be a step index") };
    while let Some(a) = args.next() {
        if a == "--kill-step" {
            return Some(parse(args.next().expect("--kill-step needs a step index")));
        }
        if let Some(v) = a.strip_prefix("--kill-step=") {
            return Some(parse(v.to_string()));
        }
    }
    None
}

/// Parse a `--survive` flag: shrink-continue on the survivors instead of
/// tearing down and restarting after the injected kill.
pub fn survive_arg() -> bool {
    std::env::args().skip(1).any(|a| a == "--survive")
}

/// Parse a `--shrink-source disk|buddy` flag: where a shrink recovery
/// sources the dead rank's state from (default: disk checkpoint set).
pub fn shrink_source_arg() -> eutectica_pfio::resilient::ShrinkSource {
    use eutectica_pfio::resilient::ShrinkSource;
    let mut args = std::env::args().skip(1);
    let parse = |v: String| -> ShrinkSource {
        match v.as_str() {
            "disk" => ShrinkSource::Disk,
            "buddy" => ShrinkSource::Buddy,
            other => panic!("--shrink-source must be disk or buddy, got {other}"),
        }
    };
    while let Some(a) = args.next() {
        if a == "--shrink-source" {
            return parse(args.next().expect("--shrink-source needs disk|buddy"));
        }
        if let Some(v) = a.strip_prefix("--shrink-source=") {
            return parse(v.to_string());
        }
    }
    eutectica_pfio::resilient::ShrinkSource::Disk
}

/// What [`shrink_demo`] measured, for callers that fold the numbers into a
/// perf trajectory.
pub struct ShrinkDemoReport {
    /// Result of the resilient run.
    pub outcome: eutectica_pfio::resilient::ResilientOutcome,
    /// Total wall-clock of the run, including the recovery.
    pub total_secs: f64,
}

/// Chaos leg shared by the figure binaries: run a small 3-rank resilient
/// simulation, kill `kill_rank` at `kill_step`, and either shrink-continue
/// on the survivors (`survive`, sourcing lost state per `source`) or tear
/// down and restart classically. Prints a rank-0 summary line — blocks
/// re-homed, bytes moved, wall-clock recovery cost — and returns the
/// measurements.
pub fn shrink_demo(
    kill_rank: usize,
    kill_step: u64,
    survive: bool,
    source: eutectica_pfio::resilient::ShrinkSource,
    threads: usize,
) -> ShrinkDemoReport {
    use eutectica_core::timeloop::OverlapOptions;
    use eutectica_pfio::resilient::{run_resilient, Cadence, ResilientOpts, ShrinkPolicy};

    let n_ranks = 3usize;
    assert!(
        kill_rank < n_ranks,
        "--kill-rank must name one of the demo's {n_ranks} ranks"
    );
    let steps = 16usize;
    let spec = eutectica_blockgrid::decomp::DomainSpec::directional([16, 16, 12], [2, 2, 1]);
    let root = std::env::temp_dir().join(format!("eut_shrink_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut opts = ResilientOpts::new(root.clone());
    opts.cadence = Cadence::EverySteps(4);
    opts.ranks = vec![n_ranks];
    opts.threads = threads;
    opts.fault_plans = vec![eutectica_comm::FaultPlan::new(42).kill(kill_rank, kill_step)];
    if survive {
        opts.max_attempts = 1; // the kill must be absorbed in-flight
        opts.shrink = Some(ShrinkPolicy::new(source));
    } else {
        opts.max_attempts = 2; // classic path: tear down, restore, re-run
    }
    let t0 = Instant::now();
    let outcome = run_resilient(
        ModelParams::ag_al_cu(),
        spec,
        eutectica_core::kernels::KernelConfig::default(),
        OverlapOptions::default(),
        steps,
        opts,
        |b| eutectica_core::init::init_planar_front(b, 0, 6),
    )
    .expect("chaos demo must recover from the injected kill");
    let total_secs = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&root);
    if survive {
        let c = outcome.shrink_cost;
        println!(
            "chaos: killed rank {kill_rank} at step {kill_step} ({source:?} restore); \
             survivors {:?} re-homed {} block(s), moved {} replica byte(s), \
             recovery {:.2} ms ({:.1}% of the {:.1} ms run)",
            outcome.survivors,
            c.blocks_rehomed,
            c.bytes_moved,
            c.recovery_secs * 1e3,
            100.0 * c.recovery_secs / total_secs.max(1e-9),
            total_secs * 1e3,
        );
    } else {
        println!(
            "chaos: killed rank {kill_rank} at step {kill_step}; classic restart \
             recovered in {} attempt(s), {:.1} ms total",
            outcome.attempts,
            total_secs * 1e3,
        );
    }
    ShrinkDemoReport {
        outcome,
        total_secs,
    }
}
