//! The in-text single-core performance analysis of Sec. 5.1.1:
//! STREAM bandwidth, FLOPs and bytes per cell update, the roofline bound
//! (the paper's "80 GiB/s : 680 B/LUP = 126.3 MLUP/s"), the measured
//! MLUP/s and fraction of peak, and the IACA-style in-core ceiling.

use eutectica_bench::{f2, mu_mlups, phi_mlups, ResultTable};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::OptLevel;
use eutectica_core::metrics::{
    mu_bytes_per_cell, mu_flops_per_cell, phi_bytes_per_cell, phi_flops_per_cell,
};
use eutectica_core::params::ModelParams;
use eutectica_core::regions::Scenario;
use eutectica_perfmodel::incore::{analyze as incore, CoreModel};
use eutectica_perfmodel::roofline::{
    analyze, fraction_of_peak, measure_peak_flops, measure_stream_bandwidth, MachineRates,
};

fn main() {
    let params = ModelParams::ag_al_cu();
    println!("Sec. 5.1.1 in-text analysis — roofline and in-core bounds");
    println!();

    // Machine probes.
    let bw = measure_stream_bandwidth();
    let peak = measure_peak_flops();
    println!(
        "measured STREAM bandwidth : {:8.2} GiB/s   (paper: ~80 GiB/s/node)",
        bw / (1u64 << 30) as f64
    );
    println!(
        "measured peak FLOP rate   : {:8.2} GFLOP/s (paper: 21.6 GFLOP/s/core)",
        peak / 1e9
    );
    println!();
    let rates = MachineRates {
        bandwidth: bw,
        peak_flops: peak,
    };

    // Exact per-cell operation counts from the instrumented reference kernel
    // (temperature-dependent coefficients amortized per slice, as in the
    // optimized kernels the paper counts).
    let mu_flops = mu_flops_per_cell(&params);
    let phi_flops = phi_flops_per_cell(&params);
    let mu_unamortized = eutectica_core::metrics::mu_flops_per_cell_unamortized(&params);
    println!(
        "T(z) amortization removes {} FLOP/cell from the mu-kernel ({} -> {})",
        mu_unamortized.total() - mu_flops.total(),
        mu_unamortized.total(),
        mu_flops.total()
    );
    println!(
        "mu-kernel : {} FLOP/cell (adds {}, muls {}, divs {}, sqrts {}; add/mul balance {:.2}); paper: 1384 FLOP/cell",
        mu_flops.total(), mu_flops.adds, mu_flops.muls, mu_flops.divs, mu_flops.sqrts,
        mu_flops.add_mul_balance()
    );
    println!(
        "phi-kernel: {} FLOP/cell (adds {}, muls {}, divs {}, sqrts {})",
        phi_flops.total(),
        phi_flops.adds,
        phi_flops.muls,
        phi_flops.divs,
        phi_flops.sqrts
    );
    println!(
        "memory traffic model (50% cache reuse): mu {} B/cell (paper: <=680), phi {} B/cell",
        mu_bytes_per_cell(),
        phi_bytes_per_cell()
    );
    println!();

    // Measured kernel rates without shortcuts (uniform work, as the paper
    // chooses for this analysis) on a 40^3 block.
    let cfg = OptLevel::SimdTzBuf.config();
    let dims = GridDims::cube(40);
    let mu_meas = mu_mlups(&params, Scenario::Interface, dims, cfg, 5);
    let phi_meas = phi_mlups(&params, Scenario::Interface, dims, cfg, 5);

    let mut table = ResultTable::new(
        "roofline_analysis",
        &[
            "kernel",
            "AI [F/B]",
            "bw bound [MLUP/s]",
            "compute bound [MLUP/s]",
            "measured [MLUP/s]",
            "% of peak",
            "in-core ceiling [% peak]",
            "bound",
        ],
    );
    for (name, flops, bytes, meas) in [
        ("mu", mu_flops, mu_bytes_per_cell(), mu_meas),
        ("phi", phi_flops, phi_bytes_per_cell(), phi_meas),
    ] {
        let r = analyze(rates, flops, bytes);
        let ic = incore(CoreModel::default(), flops);
        table.row(&[
            name.to_string(),
            f2(r.intensity),
            f2(r.bandwidth_mlups),
            f2(r.compute_mlups),
            f2(meas),
            format!("{:.1}", 100.0 * fraction_of_peak(rates, flops, meas)),
            format!("{:.1}", 100.0 * ic.max_fraction_of_peak),
            if r.compute_bound { "compute" } else { "memory" }.to_string(),
        ]);
    }
    table.finish();
    println!();
    // The paper-era in-core ceiling (Sandy Bridge, no FMA, slow divider):
    // IACA's "at most 43 % of peak" statement.
    let snb = incore(CoreModel::sandy_bridge(), mu_flops);
    println!(
        "in-core ceiling with the paper's Sandy Bridge port model: {:.0}% of peak (IACA: 43%)",
        100.0 * snb.max_fraction_of_peak
    );
    println!();
    println!("Paper conclusions to compare: both kernels compute-bound (measured far");
    println!("below the bandwidth bound); mu-kernel at 27% of peak, phi at 21%; the");
    println!("in-core ceiling (IACA: 43%) explains the gap via add/mul imbalance and");
    println!("division/sqrt latencies.");
}
