//! Fig. 7: "Intranode Scaling of µ-kernel without shortcut optimization on
//! one SuperMUC node", block sizes 40³ and 20³, 1–16 cores.
//!
//! The µ-kernel rate is *measured* on this machine for both block sizes
//! (rung "with staggered buffer", i.e. everything except shortcuts, as in
//! the paper); the multi-core curve comes from the calibrated node model
//! (linear compute scaling capped by the shared memory interface — see
//! DESIGN.md substitution 1; this container has one physical core).

use eutectica_bench::{f2, mu_mlups, mu_mlups_threaded, ResultTable};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::OptLevel;
use eutectica_core::metrics::mu_bytes_per_cell;
use eutectica_core::params::ModelParams;
use eutectica_core::regions::Scenario;
use eutectica_perfmodel::machines::{intranode_scaling, supermuc};

fn main() {
    let params = ModelParams::ag_al_cu();
    let mut cfg = OptLevel::SimdTzBuf.config(); // no shortcuts, as in the paper
    if let Some(name) = eutectica_bench::backend_arg() {
        // Pin the ISA of the paper rung's SIMD kernels (`simd-avx2` errors
        // on an incapable host instead of silently measuring scalar code).
        cfg.isa = eutectica_bench::resolve_backend_or_exit(&name).isa;
    }
    let threads = eutectica_bench::threads_arg();
    let autotune = eutectica_bench::autotune_arg();
    println!(
        "Fig. 7 — intranode scaling of the mu-kernel (no shortcuts), SIMD backend: {}",
        cfg.isa.resolved_name()
    );
    println!();

    // Per-block autotuning: tune, report the chosen variants, and measure
    // the tuned step rate against the best hardcoded rung (also recorded
    // into the --bench-out trajectory below as `step_mlups_autotuned`).
    let report = autotune.then(|| {
        let r = eutectica_bench::autotune_step_report(eutectica_bench::quick_arg(), threads);
        r.print();
        println!();
        r
    });

    if let Some(path) = eutectica_bench::bench_out_arg() {
        let quick = eutectica_bench::quick_arg();
        println!(
            "recording perf trajectory ({}) ...",
            if quick { "quick" } else { "full" }
        );
        let mut traj = eutectica_bench::record_fig7_trajectory("fig7_intranode", quick);
        if let Some(r) = &report {
            traj.push("step_mlups_autotuned", r.tuned_mlups, "MLUP/s", true);
        }
        let path = path.to_string_lossy();
        traj.write(&path).expect("write --bench-out trajectory");
        println!("wrote {path} ({} entries)", traj.entries.len());
        println!();
    }

    if let Some(every) = eutectica_bench::observe_every_arg() {
        println!("observed 2-rank run (20^3 blocks, {threads} sweep thread(s)):");
        eutectica_bench::run_observed(
            2,
            threads,
            [40, 20, 20],
            [2, 1, 1],
            60,
            eutectica_core::timeloop::OverlapOptions::default(),
            every,
            eutectica_bench::metrics_out_arg(),
            eutectica_bench::serve_arg(),
        );
        println!();
    }

    if let Some(dir) = eutectica_bench::trace_out_arg() {
        println!("instrumented 2-rank run (20^3 blocks, 4 steps, {threads} sweep thread(s)):");
        eutectica_bench::run_traced(
            &dir,
            2,
            threads,
            [40, 20, 20],
            [2, 1, 1],
            4,
            eutectica_core::timeloop::OverlapOptions::default(),
            eutectica_bench::health_every_arg(),
            eutectica_bench::rebalance_policy_from_args(),
        )
        .expect("write trace artifacts");
        println!();
    }

    // Measured intra-rank thread scaling (z-slab work sharing) up to the
    // requested --threads count. On a single-core container the threaded
    // rows show pool overhead, not speedup; on a multi-core host this is
    // the measured analogue of the node model below.
    if threads > 1 {
        let mut table = ResultTable::new(
            "fig7_intranode_measured",
            &["threads", "40^3 MLUP/s", "20^3 MLUP/s"],
        );
        let mut t = 1usize;
        loop {
            let m40 =
                mu_mlups_threaded(&params, Scenario::Interface, GridDims::cube(40), cfg, t, 5);
            let m20 =
                mu_mlups_threaded(&params, Scenario::Interface, GridDims::cube(20), cfg, t, 9);
            table.row(&[t.to_string(), f2(m40), f2(m20)]);
            if t >= threads {
                break;
            }
            t = (t * 2).min(threads);
        }
        println!("measured intra-rank sweep-thread scaling:");
        table.finish();
        println!();
    }

    // Measured single-core rates.
    let m40 = mu_mlups(&params, Scenario::Interface, GridDims::cube(40), cfg, 5);
    let m20 = mu_mlups(&params, Scenario::Interface, GridDims::cube(20), cfg, 9);
    println!(
        "measured single-core: 40^3 block {} MLUP/s, 20^3 block {} MLUP/s",
        f2(m40),
        f2(m20)
    );
    println!();

    // Node model: 40^3 streams from memory (the paper's cache model:
    // ~680 B/cell); a 20^3 working set fits the LLC, leaving only the
    // compulsory µ write traffic.
    let machine = supermuc();
    let cores: Vec<usize> = (1..=16).collect();
    let streaming = intranode_scaling(&machine, m40, mu_bytes_per_cell() as f64, &cores);
    let cached = intranode_scaling(&machine, m20, (mu_bytes_per_cell() / 10) as f64, &cores);

    let mut table = ResultTable::new("fig7_intranode", &["cores", "40^3 MLUP/s", "20^3 MLUP/s"]);
    for i in 0..cores.len() {
        table.row(&[cores[i].to_string(), f2(streaming[i].1), f2(cached[i].1)]);
    }
    table.finish();
    println!();

    // Historical calibration: with the paper's own 4.2 MLUP/s per-core rate
    // (a 2012 core is ~5x slower on this kernel than the calibration host),
    // the node is compute-bound and both curves scale near-linearly — the
    // published Fig. 7 shape.
    let hist40 = intranode_scaling(&machine, 4.2, mu_bytes_per_cell() as f64, &cores);
    let hist20 = intranode_scaling(&machine, 4.2, (mu_bytes_per_cell() / 10) as f64, &cores);
    let mut table = ResultTable::new(
        "fig7_intranode_historical",
        &["cores", "40^3 MLUP/s (4.2/core)", "20^3 MLUP/s (4.2/core)"],
    );
    for i in 0..cores.len() {
        table.row(&[cores[i].to_string(), f2(hist40[i].1), f2(hist20[i].1)]);
    }
    println!("same model calibrated with the paper's 4.2 MLUP/s per core:");
    table.finish();
    println!();
    println!("Paper shape: near-linear scaling with only slight block-size differences");
    println!("(the 2012 kernel is compute-bound). With today's ~5x faster core the");
    println!("large streaming block saturates the socket bandwidth instead — the");
    println!("roofline has moved, see EXPERIMENTS.md.");
}
