//! Fig. 11: "Exempted lamellae from the simulation ... The evolution of the
//! microstructure, especially the splitting of lamellae and merging, is
//! visible."
//!
//! Runs a directional-solidification simulation, tracks the connected
//! lamellae of each solid phase over time (split/merge/birth/death census),
//! and exports the largest Al₂Cu and Ag₂Al lamellae as STL meshes — the
//! exempted-lamella visualization of the paper.

use eutectica_analysis::lamellae::{track, Snapshot};
use eutectica_bench::ResultTable;
use eutectica_core::params::ModelParams;
use eutectica_core::prelude::*;
use eutectica_mesh::extract::extract_isosurface;
use eutectica_thermo::Phase;

fn main() {
    let mut params = ModelParams::ag_al_cu();
    params.t0 = 0.93;
    params.grad_g = 0.002;
    params.vel_v = 0.05;
    let mut sim = Simulation::new(params, [32, 32, 48]).expect("valid params");
    // Denser nucleation than the default so each phase starts as several
    // distinct lamellae whose splits/merges can be tracked.
    let seeds = eutectica_core::init::VoronoiSeeds::generate(
        [32, 32],
        18,
        sim.params.sys.eutectic_fractions(),
        7,
    );
    eutectica_core::init::init_directional_block(&mut sim.state, &seeds, 10);
    sim.enable_moving_window(0.55);

    let interval = 250usize;
    let rounds = 8usize;
    println!(
        "Fig. 11 — lamella tracking over {} steps (snapshot every {interval})",
        interval * rounds
    );
    println!();

    let mut table = ResultTable::new(
        "fig11_lamellae",
        &[
            "steps", "phase", "lamellae", "splits", "merges", "born", "died",
        ],
    );
    let mut prev: Vec<Snapshot> = (0..3).map(|p| Snapshot::of_block(&sim.state, p)).collect();
    for round in 1..=rounds {
        sim.step_n(interval);
        for (p, prev_snap) in prev.iter_mut().enumerate() {
            let snap = Snapshot::of_block(&sim.state, p);
            let e = track(prev_snap, &snap);
            table.row(&[
                (round * interval).to_string(),
                Phase::ALL[p].name().to_string(),
                snap.lamella_count().to_string(),
                e.splits.to_string(),
                e.merges.to_string(),
                e.born.to_string(),
                e.died.to_string(),
            ]);
            *prev_snap = snap;
        }
    }
    table.finish();
    println!();
    println!(
        "final solid fraction {:.3}, window shifts {}, front at z = {:.0}",
        sim.solid_fraction(),
        sim.window_shifts(),
        sim.front_position()
    );

    // Export the per-phase interface meshes (Fig. 11's exempted lamellae).
    std::fs::create_dir_all("results").ok();
    for phase in [Phase::Ag2Al, Phase::Al2Cu] {
        let comp = sim.state.phi_src.comp(phase as usize);
        let mesh = extract_isosurface(
            comp,
            sim.state.dims,
            [0.0, 0.0, sim.state.origin[2] as f64],
            0.5,
        );
        let path = format!("results/fig11_{}.stl", phase.name());
        if let Ok(mut f) = std::fs::File::create(&path) {
            mesh.write_stl(&mut f).ok();
            println!("wrote {path}: {} triangles", mesh.num_triangles());
        }
    }
}
