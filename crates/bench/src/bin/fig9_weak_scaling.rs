//! Fig. 9: weak scaling — MLUP/s per core on SuperMUC (three scenarios,
//! 2⁰–2¹⁵ cores), Hornet (interface, 2⁵–2¹³) and JUQUEEN (interface,
//! 2⁹–2¹⁸).
//!
//! Per-core application rates (full time step: φ-sweep + µ-sweep) are
//! *measured* per scenario on this machine; the rank-count axis uses the
//! calibrated machine models (DESIGN.md substitution 1).

use eutectica_bench::{f3, step_mlups_threaded, ResultTable};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::regions::Scenario;
use eutectica_perfmodel::machines::{hornet, juqueen, supermuc, weak_scaling};

fn powers(lo: u32, hi: u32) -> Vec<usize> {
    (lo..=hi).map(|k| 1usize << k).collect()
}

fn main() {
    let params = ModelParams::ag_al_cu();
    let block = [60usize, 60, 60];
    let dims = GridDims::cube(60);
    let threads = eutectica_bench::threads_arg();
    println!("Fig. 9 — weak scaling, MLUP/s per core (block 60^3 per rank)");
    println!();

    if let Some(dir) = eutectica_bench::trace_out_arg() {
        println!(
            "instrumented 4-rank run (weak-scaling layout 2x2x1, 4 steps, {threads} sweep thread(s)):"
        );
        eutectica_bench::run_traced(
            &dir,
            4,
            threads,
            [32, 32, 16],
            [2, 2, 1],
            4,
            eutectica_core::timeloop::OverlapOptions {
                hide_mu: true,
                hide_phi: false,
            },
            eutectica_bench::health_every_arg(),
            eutectica_bench::rebalance_policy_from_args(),
        )
        .expect("write trace artifacts");
        println!();
    }

    // --kill-rank R --kill-step S [--survive] [--shrink-source disk|buddy]:
    // chaos leg — kill a rank mid-run and either shrink-continue on the
    // survivors or tear down and restart, with a rank-0 summary line.
    if let Some(kr) = eutectica_bench::kill_rank_arg() {
        let ks = eutectica_bench::kill_step_arg().unwrap_or(6);
        eutectica_bench::shrink_demo(
            kr,
            ks,
            eutectica_bench::survive_arg(),
            eutectica_bench::shrink_source_arg(),
            threads,
        );
        println!();
    }

    // --rebalance-every <k>: run the front-crossing load-imbalance demo and
    // report the measured static vs. dynamically rebalanced max/avg ratio.
    if let Some(every) = eutectica_bench::rebalance_every_arg() {
        let threshold = eutectica_bench::imbalance_threshold_arg().unwrap_or(1.1);
        eutectica_bench::rebalance_demo(every, threshold, threads, 24);
        println!();
    }

    let cfg = KernelConfig::default();
    let rates: Vec<(Scenario, f64)> = [Scenario::Interface, Scenario::Liquid, Scenario::Solid]
        .iter()
        .map(|&sc| (sc, step_mlups_threaded(&params, sc, dims, cfg, threads, 5)))
        .collect();
    for (sc, r) in &rates {
        println!(
            "measured per-rank step rate ({}, {} sweep thread(s)): {:.2} MLUP/s",
            sc.name(),
            threads,
            r
        );
    }
    println!();

    // SuperMUC: all three scenarios, 2^0..2^15.
    let m = supermuc();
    let cores = powers(0, 15);
    let mut table = ResultTable::new("fig9_supermuc", &["cores", "interface", "liquid", "solid"]);
    let curves: Vec<Vec<f64>> = rates
        .iter()
        .map(|&(_, r)| {
            weak_scaling(&m, block, r, true, &cores)
                .iter()
                .map(|p| p.mlups_per_core)
                .collect()
        })
        .collect();
    for (i, &p) in cores.iter().enumerate() {
        table.row(&[
            p.to_string(),
            f3(curves[0][i]),
            f3(curves[1][i]),
            f3(curves[2][i]),
        ]);
    }
    println!("SuperMUC (pruned fat tree):");
    table.finish();
    println!();

    // Hornet and JUQUEEN: interface scenario only (as in the paper).
    for (m, lo, hi) in [(hornet(), 5, 13), (juqueen(), 9, 18)] {
        let cores = powers(lo, hi);
        let pts = weak_scaling(&m, block, rates[0].1, true, &cores);
        let mut table = ResultTable::new(
            &format!("fig9_{}", m.name.to_lowercase()),
            &["cores", "MLUP/s per core", "comm fraction"],
        );
        for p in &pts {
            table.row(&[
                p.cores.to_string(),
                f3(p.mlups_per_core),
                f3(p.comm_fraction),
            ]);
        }
        println!("{} ({:?}):", m.name, m.topology);
        table.finish();
        println!();
    }
    println!("Paper shape: near-flat curves per machine; interface slowest of the");
    println!("scenarios on SuperMUC; JUQUEEN per-core rates an order of magnitude");
    println!("below the x86 machines but scaling to 262,144 cores.");
}
