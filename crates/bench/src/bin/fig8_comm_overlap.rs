//! Fig. 8: "Time spent in communication, SuperMUC, blocksize 60³" — the
//! exposed per-timestep communication time of the φ- and µ-fields for all
//! four overlap combinations, over 2⁵–2¹² cores.
//!
//! Two ingredients, following the paper's own decomposition: the pack/unpack
//! work "which cannot be overlapped" is *measured* on this machine; the wire
//! time uses the SuperMUC interconnect model and is hidden (fully for µ,
//! x-phase only for φ) when overlap is enabled. A live 2-rank run of every
//! overlap combination exercises the real Algorithm-2 code path first.

use eutectica_bench::{f3, time_median, ResultTable};
use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_blockgrid::field::SoaField;
use eutectica_blockgrid::{ghost, Face, GridDims};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::timeloop::{run_distributed_threaded, OverlapOptions};
use eutectica_perfmodel::machines::supermuc;
use eutectica_perfmodel::network::message_time;

fn pack_unpack_time<const NC: usize>(dims: GridDims) -> f64 {
    let field = SoaField::<NC>::new(dims, [0.5; NC]);
    let mut target = field.clone();
    let mut buf = Vec::new();
    time_median(9, || {
        for face in Face::ALL {
            ghost::pack(&field, face, &mut buf);
            ghost::unpack(&mut target, face.opposite(), &buf);
        }
    })
}

fn main() {
    let n = 60usize;
    let dims = GridDims::cube(n);
    let threads = eutectica_bench::threads_arg();
    println!("Fig. 8 — time in communication per timestep, blocksize 60^3");
    println!();

    // --trace-out <dir>: run an instrumented 2-rank simulation and emit the
    // Chrome trace / JSONL / reduced-timing-tree artifacts.
    if let Some(dir) = eutectica_bench::trace_out_arg() {
        println!(
            "instrumented 2-rank run (mu-overlap, 32x16x16, 6 steps, {threads} sweep thread(s)):"
        );
        eutectica_bench::run_traced(
            &dir,
            2,
            threads,
            [32, 16, 16],
            [2, 1, 1],
            6,
            OverlapOptions {
                hide_mu: true,
                hide_phi: false,
            },
            eutectica_bench::health_every_arg(),
            eutectica_bench::rebalance_policy_from_args(),
        )
        .expect("write trace artifacts");
        println!();
    }

    // --kill-rank R --kill-step S [--survive] [--shrink-source disk|buddy]:
    // chaos leg — kill a rank mid-run and either shrink-continue on the
    // survivors or tear down and restart, with a rank-0 summary line.
    if let Some(kr) = eutectica_bench::kill_rank_arg() {
        let ks = eutectica_bench::kill_step_arg().unwrap_or(6);
        eutectica_bench::shrink_demo(
            kr,
            ks,
            eutectica_bench::survive_arg(),
            eutectica_bench::shrink_source_arg(),
            threads,
        );
        println!();
    }

    // --- Live end-to-end check of the four overlap combinations (2 ranks).
    println!("live 2-rank run (16^3 blocks, 4 steps each, {threads} sweep thread(s)):");
    let params = ModelParams::ag_al_cu();
    for ov in OverlapOptions::ALL {
        let out = run_distributed_threaded(
            params.clone(),
            Decomposition::new(DomainSpec::directional([32, 16, 16], [2, 1, 1])),
            2,
            threads,
            4,
            KernelConfig::default(),
            ov,
            |b| eutectica_core::init::init_planar_front(b, 0, 6),
        );
        let t = &out[0].1;
        println!(
            "  hide_mu={:5} hide_phi={:5}:  phi_comm {:7.3} ms/step, mu_comm {:7.3} ms/step",
            ov.hide_mu,
            ov.hide_phi,
            t.phi_comm.as_secs_f64() * 1e3 / t.steps as f64,
            t.mu_comm.as_secs_f64() * 1e3 / t.steps as f64,
        );
    }
    println!();

    // --- Measured non-overlappable pack/unpack costs.
    let t_pu_phi = pack_unpack_time::<4>(dims);
    let t_pu_mu = pack_unpack_time::<2>(dims);
    println!(
        "measured pack+unpack per step: phi {:.3} ms, mu {:.3} ms",
        t_pu_phi * 1e3,
        t_pu_mu * 1e3
    );
    println!();

    // --- Wire model (SuperMUC): per-face message volumes of a 60^3 block.
    let machine = supermuc();
    let face_area = n * n;
    let phi_bytes = face_area * 4 * 8;
    let mu_bytes = face_area * 2 * 8;

    let mut table = ResultTable::new(
        "fig8_comm_overlap",
        &[
            "cores",
            "mu overlap [ms]",
            "mu no overlap [ms]",
            "phi overlap [ms]",
            "phi no overlap [ms]",
        ],
    );
    for k in 5..=12 {
        let p = 1usize << k;
        let wire = |bytes: usize| message_time(machine.link, machine.topology, bytes, p);
        // Six face messages per field per step.
        let mu_wire = 6.0 * wire(mu_bytes);
        let phi_wire = 6.0 * wire(phi_bytes);
        // φ overlap hides only the x-phase (2 of 6 messages): the sequenced
        // y/z phases must wait for x (Sec. 3.3 discussion).
        let phi_wire_overlap = 4.0 * wire(phi_bytes);
        table.row(&[
            p.to_string(),
            f3((t_pu_mu) * 1e3),
            f3((t_pu_mu + mu_wire) * 1e3),
            f3((t_pu_phi + phi_wire_overlap) * 1e3),
            f3((t_pu_phi + phi_wire) * 1e3),
        ]);
    }
    table.finish();
    println!();
    println!("Paper shape: phi times above mu times (twice the data); overlap lowers");
    println!("both; remaining time is pack/unpack. The best *overall* config is");
    println!("mu-overlap only, because hiding phi requires the split mu-kernel whose");
    println!("per-slice temperature terms are computed twice (measured in fig6/ablations).");
}
