//! Fig. 6: the cumulative optimization ladder for the φ-kernel (left) and
//! µ-kernel (right), run in interface/liquid/solid blocks of 60³ cells:
//! general-purpose code → basic implementation → +SIMD → +T(z) → +staggered
//! buffer → +shortcuts.

//!
//! `--backend <name>` pins the ISA instantiation of the explicitly
//! vectorized rungs (`simd`, `simd-avx2`, `simd-portable`); `--autotune`
//! appends the per-block autotuner's chosen-variant summary and its step
//! rate against the best hardcoded rung.

use eutectica_bench::{
    autotune_arg, autotune_step_report, backend_arg, f2, mu_mlups, phi_mlups,
    resolve_backend_or_exit, threads_arg, ResultTable,
};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::OptLevel;
use eutectica_core::params::ModelParams;
use eutectica_core::regions::Scenario;

fn main() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(60);
    let isa = resolve_backend_or_exit(&backend_arg().unwrap_or_else(|| "simd".into())).isa;
    println!(
        "Fig. 6 — optimization ladder, block 60^3, SIMD backend: {}",
        isa.resolved_name()
    );
    println!();

    for (kernel, f) in [("phi", true), ("mu", false)] {
        let mut table = ResultTable::new(
            &format!("fig6_opt_ladder_{kernel}"),
            &["rung", "interface", "liquid", "solid"],
        );
        for rung in OptLevel::LADDER {
            let mut cfg = rung.config();
            cfg.isa = isa;
            let reps = if rung == OptLevel::Reference { 2 } else { 5 };
            let mut row = vec![rung.label().to_string()];
            for sc in [Scenario::Interface, Scenario::Liquid, Scenario::Solid] {
                let v = if f {
                    phi_mlups(&params, sc, dims, cfg, reps)
                } else {
                    mu_mlups(&params, sc, dims, cfg, reps)
                };
                row.push(f2(v));
            }
            table.row(&row);
        }
        println!("MLUP/s for {kernel}-kernel only:");
        table.finish();
        println!();
    }
    println!("Expected shape (paper): every rung improves; staggered buffer ~2x on mu;");
    println!("shortcuts fastest in liquid (phi) and solid (mu).");

    if autotune_arg() {
        println!();
        autotune_step_report(true, threads_arg()).print();
    }
}
