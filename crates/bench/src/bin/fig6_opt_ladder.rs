//! Fig. 6: the cumulative optimization ladder for the φ-kernel (left) and
//! µ-kernel (right), run in interface/liquid/solid blocks of 60³ cells:
//! general-purpose code → basic implementation → +SIMD → +T(z) → +staggered
//! buffer → +shortcuts.

use eutectica_bench::{f2, mu_mlups, phi_mlups, ResultTable};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::OptLevel;
use eutectica_core::params::ModelParams;
use eutectica_core::regions::Scenario;

fn main() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(60);
    println!(
        "Fig. 6 — optimization ladder, block 60^3, SIMD backend: {}",
        eutectica_simd::BACKEND
    );
    println!();

    for (kernel, f) in [("phi", true), ("mu", false)] {
        let mut table = ResultTable::new(
            &format!("fig6_opt_ladder_{kernel}"),
            &["rung", "interface", "liquid", "solid"],
        );
        for rung in OptLevel::LADDER {
            let cfg = rung.config();
            let reps = if rung == OptLevel::Reference { 2 } else { 5 };
            let mut row = vec![rung.label().to_string()];
            for sc in [Scenario::Interface, Scenario::Liquid, Scenario::Solid] {
                let v = if f {
                    phi_mlups(&params, sc, dims, cfg, reps)
                } else {
                    mu_mlups(&params, sc, dims, cfg, reps)
                };
                row.push(f2(v));
            }
            table.row(&row);
        }
        println!("MLUP/s for {kernel}-kernel only:");
        table.finish();
        println!();
    }
    println!("Expected shape (paper): every rung improves; staggered buffer ~2x on mu;");
    println!("shortcuts fastest in liquid (phi) and solid (mu).");
}
