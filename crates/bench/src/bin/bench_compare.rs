//! Diff two perf trajectories (`BENCH_<name>.json`) and flag regressions.
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [--noise-band 0.10] [--report-only]
//! ```
//!
//! Prints a per-key report (REGRESSION / improved / ok / missing / new) and
//! exits nonzero when any key moved against its `higher_is_better`
//! direction by more than the noise band — unless `--report-only` is
//! given, in which case the exit code is always zero (CI smoke mode,
//! where the runner machine is too noisy to gate on).

use eutectica_obsv::{compare, Trajectory};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut noise_band = 0.10;
    let mut report_only = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--noise-band" {
            noise_band = it
                .next()
                .expect("--noise-band needs a fraction")
                .parse()
                .expect("--noise-band must be a fraction, e.g. 0.10");
        } else if let Some(v) = a.strip_prefix("--noise-band=") {
            noise_band = v.parse().expect("--noise-band must be a fraction");
        } else if a == "--report-only" {
            report_only = true;
        } else if a.starts_with("--") {
            eprintln!("unknown flag: {a}");
            std::process::exit(2);
        } else {
            files.push(a);
        }
    }
    if files.len() != 2 {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [--noise-band 0.10] [--report-only]");
        std::process::exit(2);
    }

    let base = Trajectory::read(&files[0]).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {}: {e}", files[0]);
        std::process::exit(2);
    });
    let cur = Trajectory::read(&files[1]).unwrap_or_else(|e| {
        eprintln!("cannot read current {}: {e}", files[1]);
        std::process::exit(2);
    });

    let cmp = compare(&base, &cur, noise_band);
    println!(
        "comparing '{}' (baseline) vs '{}' (current), noise band {:.0}%",
        base.name,
        cur.name,
        noise_band * 100.0
    );
    print!("{}", cmp.report());

    if cmp.has_regressions() {
        if report_only {
            println!("(report-only: not failing on regressions)");
        } else {
            std::process::exit(1);
        }
    }
}
