//! `campaign_sweep`: run a co-scheduled parameter-sweep fleet — the
//! production workflow behind the paper's process-parameter studies
//! (velocity/gradient variation, Sec. 6) — on one thread-rank universe,
//! with per-job checkpoint isolation and a rank-0 fleet summary.
//!
//! Flags:
//! - `--ranks <n>` ranks in the universe (default 2)
//! - `--threads <n>` sweep threads per rank (default 1)
//! - `--points <n>` minimum campaign size (default 32; rounded up to a
//!   full seed row of the 2×2×2 v/G/composition grid)
//! - `--steps <n>` step budget per job (default 12)
//! - `--slice <n>` round-robin slice in steps (default 4)
//! - `--ndjson-out <path>` write the collector's `{"type":"job"}` frames
//! - `--decode <path>` decode an NDJSON file written by `--ndjson-out`
//!   and exit (CI smoke: asserts every frame parses)
//! - `--kill-rank <r> --kill-step <round>` chaos leg: kill a rank at the
//!   given campaign round and shrink-continue on the survivors
//! - `--bench-out <path>` record a perf trajectory with the
//!   `campaign_points_per_hour` metric

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eutectica_campaign::{run_campaign, CampaignOpts, CampaignSpec};
use eutectica_comm::{FaultPlan, Universe, UniverseCfg};
use eutectica_core::params::ModelParams;
use eutectica_obsv::{FrameBus, JobRecord, Trajectory};
use eutectica_pfio::resilient::{ShrinkPolicy, ShrinkSource};

fn value_of(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} needs a value")),
            );
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn usize_of(flag: &str, default: usize) -> usize {
    value_of(flag).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{flag} must be a non-negative integer"))
    })
}

fn decode_ndjson(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let mut frames = 0usize;
    let mut done = 0usize;
    let mut jobs = std::collections::BTreeSet::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let rec = JobRecord::from_json(line)
            .unwrap_or_else(|e| panic!("undecodable job frame: {e}\n  {line}"));
        frames += 1;
        jobs.insert(rec.job);
        if rec.status == "done" {
            done += 1;
        }
    }
    assert!(frames > 0, "{path} holds no job frames");
    println!(
        "decoded {frames} job frames covering {} jobs ({done} done)",
        jobs.len()
    );
    std::process::exit(0);
}

fn main() {
    if let Some(path) = value_of("--decode") {
        decode_ndjson(&path);
    }

    let ranks = usize_of("--ranks", 2);
    let threads = eutectica_bench::threads_arg();
    let min_points = usize_of("--points", 32);
    let steps = usize_of("--steps", 12);
    let slice = usize_of("--slice", 4).max(1);

    // 2 velocities × 2 gradients × 2 compositions = 8 points per seed row;
    // add seed rows until the requested size is covered.
    let seed_rows = min_points.div_ceil(8).max(1);
    let mut spec = CampaignSpec::around(
        ModelParams::ag_al_cu(),
        [8, 8, 12],
        steps,
        (1..=seed_rows as u64).collect(),
    );
    spec.velocities = vec![0.015, 0.02];
    spec.gradients = vec![0.001, 0.002];
    spec.compositions = vec![[1.0 / 3.0; 3], [0.4, 0.3, 0.3]];
    let points = spec.points();

    let ckpt_root: PathBuf =
        std::env::temp_dir().join(format!("eutectica_campaign_sweep_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let bus = Arc::new(FrameBus::new(4096));
    let sub = bus.subscribe();
    let opts = CampaignOpts {
        threads,
        slice_steps: slice,
        ckpt_root: Some(ckpt_root.clone()),
        ckpt_every: 4,
        keep_sets: 2,
        shrink: Some(ShrinkPolicy::new(ShrinkSource::Disk)),
        bus: Some(Arc::clone(&bus)),
        ..CampaignOpts::default()
    };

    println!(
        "campaign_sweep: {points} points on {ranks} rank(s) x {threads} thread(s), \
         {steps} steps/job, slice {slice}"
    );
    let kill = eutectica_bench::kill_rank_arg()
        .map(|r| (r, eutectica_bench::kill_step_arg().unwrap_or(2)));

    let wall = Instant::now();
    let spec_run = spec.clone();
    let opts_run = opts.clone();
    let (reports, dead) = match kill {
        Some((kr, ks)) => {
            println!("chaos leg: killing rank {kr} at campaign round {ks}");
            let out = Universe::run_surviving(
                ranks,
                UniverseCfg::with_timeout(Duration::from_secs(600))
                    .with_faults(FaultPlan::new(29).kill(kr, ks)),
                move |rank| run_campaign(&rank, &spec_run, &opts_run).unwrap(),
            );
            (
                out.results.into_iter().flatten().collect::<Vec<_>>(),
                out.dead,
            )
        }
        None => (
            Universe::run(ranks, move |rank| {
                run_campaign(&rank, &spec_run, &opts_run).unwrap()
            }),
            Vec::new(),
        ),
    };
    let wall_s = wall.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let fleet = reports
        .iter()
        .find_map(|r| r.fleet.clone())
        .expect("no surviving collector produced a fleet summary");
    let shrinks = reports.iter().map(|r| r.shrinks).max().unwrap_or(0);
    let rounds = reports.iter().map(|r| r.rounds).max().unwrap_or(0);

    println!();
    println!(
        "{:>4}  {:<24} {:>4} {:>6} {:>9} {:>7}  checksum",
        "job", "label", "rank", "steps", "rollbacks", "status"
    );
    for rec in &fleet.jobs {
        println!(
            "{:>4}  {:<24} {:>4} {:>6} {:>9} {:>7}  {:016x}",
            rec.job, rec.label, rec.rank, rec.step, rec.rollbacks, rec.status, rec.checksum
        );
    }
    let done = fleet.jobs.iter().filter(|r| r.status == "done").count();
    let failed = fleet.jobs.iter().filter(|r| r.status == "failed").count();
    let pph = done as f64 / (wall_s / 3600.0).max(1e-12);
    println!();
    if !dead.is_empty() {
        let dead_ranks: Vec<usize> = dead.iter().map(|(r, _)| *r).collect();
        println!(
            "absorbed {} rank death(s) {dead_ranks:?} via shrink-and-continue ({shrinks} shrink(s))",
            dead.len()
        );
    }
    println!(
        "fleet: {done}/{points} done, {failed} failed, {rounds} rounds, \
         {wall_s:.2}s wall, {pph:.0} points/h"
    );
    assert_eq!(done + failed, points, "fleet lost jobs");

    if let Some(path) = value_of("--ndjson-out") {
        let mut lines = String::new();
        let mut n = 0usize;
        while let Some(frame) = sub.try_recv() {
            lines.push_str(&frame);
            lines.push('\n');
            n += 1;
        }
        std::fs::write(&path, lines).unwrap_or_else(|e| panic!("{path}: {e}"));
        println!("wrote {n} job frames to {path}");
    }

    if let Some(path) = eutectica_bench::bench_out_arg() {
        let mut traj = Trajectory::new("campaign_sweep");
        traj.push("campaign_points_per_hour", pph, "points/h", true);
        traj.push("campaign_fleet_points", points as f64, "points", true);
        traj.push("campaign_wall_s", wall_s, "s", false);
        traj.write(path.to_str().expect("utf-8 path"))
            .expect("write trajectory");
        println!("trajectory written to {}", path.display());
    }
}
