//! Fig. 5: "Comparison of different vectorization strategies on one
//! SuperMUC core, block size chosen as 60³" — φ-kernel MLUP/s for the
//! cellwise, cellwise-with-shortcuts and four-cell strategies in the
//! interface, liquid and solid scenarios.
//!
//! `--backend <name>` pins the ISA instantiation the strategies run on
//! (e.g. `simd-portable` to quantify the benefit of explicit AVX2
//! vectorization, or `simd-avx2` to *require* it — a typed error on hosts
//! without AVX2+FMA instead of a silent scalar fallback).

use eutectica_bench::{backend_arg, f2, phi_mlups, resolve_backend_or_exit, ResultTable};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::{backend, KernelConfig, MuVariant, PhiVariant};
use eutectica_core::params::ModelParams;
use eutectica_core::regions::Scenario;

fn main() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(60);
    let reps = 5;
    let isa = resolve_backend_or_exit(&backend_arg().unwrap_or_else(|| "simd".into())).isa;
    println!(
        "Fig. 5 — phi-kernel vectorization strategies, block 60^3, SIMD backend: {}",
        isa.resolved_name()
    );
    if isa.resolved_name() != backend::active_simd_backend() {
        println!(
            "(host's best backend is {}; pinned by --backend)",
            backend::active_simd_backend()
        );
    }
    println!();

    let variants: [(&str, PhiVariant, bool); 3] = [
        ("cellwise", PhiVariant::SimdCellwise, false),
        ("cellwise+shortcuts", PhiVariant::SimdCellwise, true),
        ("four cells", PhiVariant::SimdFourCell, false),
    ];
    let mut table = ResultTable::new(
        "fig5_vectorization",
        &["scenario", "cellwise", "cellwise+shortcuts", "four cells"],
    );
    for sc in [Scenario::Interface, Scenario::Liquid, Scenario::Solid] {
        let mut row = vec![sc.name().to_string()];
        for (_, variant, shortcuts) in variants {
            let cfg = KernelConfig {
                phi: variant,
                mu: MuVariant::SimdFourCell,
                isa,
                tz_precompute: true,
                staggered_buffer: variant == PhiVariant::SimdCellwise,
                shortcuts,
            };
            row.push(f2(phi_mlups(&params, sc, dims, cfg, reps)));
        }
        table.row(&row);
    }
    table.finish();
    println!();
    println!("MLUP/s for the phi-kernel only (higher is better).");
    println!("Paper shape: shortcuts help most in liquid; the cellwise/four-cell");
    println!("ordering is compiler- and microarchitecture-dependent (see EXPERIMENTS.md).");
}
