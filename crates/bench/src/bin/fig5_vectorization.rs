//! Fig. 5: "Comparison of different vectorization strategies on one
//! SuperMUC core, block size chosen as 60³" — φ-kernel MLUP/s for the
//! cellwise, cellwise-with-shortcuts and four-cell strategies in the
//! interface, liquid and solid scenarios.

use eutectica_bench::{f2, phi_mlups, ResultTable};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::{KernelConfig, MuVariant, PhiVariant};
use eutectica_core::params::ModelParams;
use eutectica_core::regions::Scenario;

fn main() {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(60);
    let reps = 5;
    println!(
        "Fig. 5 — phi-kernel vectorization strategies, block 60^3, SIMD backend: {}",
        eutectica_simd::BACKEND
    );
    println!();

    let variants: [(&str, PhiVariant, bool); 3] = [
        ("cellwise", PhiVariant::SimdCellwise, false),
        ("cellwise+shortcuts", PhiVariant::SimdCellwise, true),
        ("four cells", PhiVariant::SimdFourCell, false),
    ];
    let mut table = ResultTable::new(
        "fig5_vectorization",
        &["scenario", "cellwise", "cellwise+shortcuts", "four cells"],
    );
    for sc in [Scenario::Interface, Scenario::Liquid, Scenario::Solid] {
        let mut row = vec![sc.name().to_string()];
        for (_, variant, shortcuts) in variants {
            let cfg = KernelConfig {
                phi: variant,
                mu: MuVariant::SimdFourCell,
                tz_precompute: true,
                staggered_buffer: variant == PhiVariant::SimdCellwise,
                shortcuts,
            };
            row.push(f2(phi_mlups(&params, sc, dims, cfg, reps)));
        }
        table.row(&row);
    }
    table.finish();
    println!();
    println!("MLUP/s for the phi-kernel only (higher is better).");
    println!("Paper shape: shortcuts help most in liquid; the cellwise/four-cell");
    println!("ordering is compiler- and microarchitecture-dependent (see EXPERIMENTS.md).");
}
