//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! T(z) precompute, staggered buffer, shortcuts, the split µ-kernel
//! overhead (the reason φ-overlap loses), anti-trapping cost, and the fast
//! inverse square root.

use criterion::{criterion_group, criterion_main, Criterion};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::{mu_sweep, phi_sweep, KernelConfig, MuPart, OptLevel};
use eutectica_core::params::ModelParams;
use eutectica_core::regions::{build_scenario, Scenario};
use eutectica_simd::F64x4;

fn flag_ablations(c: &mut Criterion) {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(32);
    let base = OptLevel::SimdTzBufShortcuts.config();
    let cases = [
        ("full", base),
        (
            "no_tz",
            KernelConfig {
                tz_precompute: false,
                ..base
            },
        ),
        (
            "no_staggered_buffer",
            KernelConfig {
                staggered_buffer: false,
                ..base
            },
        ),
        (
            "no_shortcuts",
            KernelConfig {
                shortcuts: false,
                ..base
            },
        ),
    ];
    for (kernel, is_phi) in [("phi", true), ("mu", false)] {
        let mut group = c.benchmark_group(format!("ablation_{kernel}"));
        group.throughput(criterion::Throughput::Elements(
            dims.interior_volume() as u64
        ));
        for (name, cfg) in cases {
            let mut state = build_scenario(Scenario::Interface, dims);
            phi_sweep(&params, &mut state, 0.0, base);
            group.bench_function(name, |b| {
                b.iter(|| {
                    if is_phi {
                        phi_sweep(&params, &mut state, 0.0, cfg);
                    } else {
                        mu_sweep(&params, &mut state, 0.0, cfg, MuPart::Full);
                    }
                });
            });
        }
        group.finish();
    }
}

/// The φ-overlap overhead: the split µ-sweep computes the per-slice
/// temperature terms twice (Sec. 3.3 — "this overhead is much bigger than
/// the benefit of communication hiding").
fn split_mu_overhead(c: &mut Criterion) {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(32);
    let cfg = OptLevel::SimdTzBufShortcuts.config();
    let mut group = c.benchmark_group("mu_split");
    group.throughput(criterion::Throughput::Elements(
        dims.interior_volume() as u64
    ));
    let mut state = build_scenario(Scenario::Interface, dims);
    phi_sweep(&params, &mut state, 0.0, cfg);
    group.bench_function("unsplit", |b| {
        b.iter(|| mu_sweep(&params, &mut state, 0.0, cfg, MuPart::Full));
    });
    group.bench_function("split_local_plus_neighbor", |b| {
        b.iter(|| {
            mu_sweep(&params, &mut state, 0.0, cfg, MuPart::LocalOnly);
            mu_sweep(&params, &mut state, 0.0, cfg, MuPart::NeighborOnly);
        });
    });
    group.finish();
}

/// Anti-trapping current cost (the model ablation of refs. [29] vs [30]).
fn anti_trapping_cost(c: &mut Criterion) {
    let mut params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(32);
    let cfg = OptLevel::SimdTzBuf.config();
    let mut group = c.benchmark_group("anti_trapping");
    group.throughput(criterion::Throughput::Elements(
        dims.interior_volume() as u64
    ));
    let mut state = build_scenario(Scenario::Interface, dims);
    phi_sweep(&params, &mut state, 0.0, cfg);
    group.bench_function("with_atc", |b| {
        b.iter(|| mu_sweep(&params, &mut state, 0.0, cfg, MuPart::Full));
    });
    params.enable_atc = false;
    group.bench_function("without_atc", |b| {
        b.iter(|| mu_sweep(&params, &mut state, 0.0, cfg, MuPart::Full));
    });
    group.finish();
}

/// The φ-field layout experiment of Sec. 5.1.1: SoA (production, chosen for
/// the µ-kernel's 38 cell loads) vs AoS (one contiguous vector load per
/// cell for the cellwise φ-kernel). The paper measured "no notable
/// differences" thanks to the kernel's high arithmetic intensity.
fn phi_layout(c: &mut Criterion) {
    use eutectica_core::kernels::simd_phi::{phi_sweep_cellwise, phi_sweep_cellwise_aos};
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(32);
    let mut group = c.benchmark_group("phi_layout");
    group.throughput(criterion::Throughput::Elements(
        dims.interior_volume() as u64
    ));
    let base = build_scenario(Scenario::Interface, dims);
    let mut soa_state = base.clone();
    group.bench_function("soa_cellwise", |b| {
        b.iter(|| phi_sweep_cellwise(&params, &mut soa_state, 0.0, true, true, false));
    });
    let aos = base.phi_src.to_aos();
    let mut out = base.phi_dst.clone();
    group.bench_function("aos_cellwise", |b| {
        b.iter(|| phi_sweep_cellwise_aos(&params, &aos, &base.mu_src, &mut out, 0, 0.0));
    });
    group.finish();
}

/// Fast inverse square root (Lomont [20]) vs exact.
fn rsqrt_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsqrt");
    let xs: Vec<F64x4> = (0..1024)
        .map(|i| F64x4::splat(0.001 + i as f64 * 0.37))
        .collect();
    group.bench_function("exact", |b| {
        b.iter(|| {
            let mut acc = F64x4::zero();
            for x in &xs {
                acc += x.rsqrt();
            }
            acc
        });
    });
    for iters in [2u32, 4] {
        group.bench_function(format!("lomont_{iters}_newton"), |b| {
            b.iter(|| {
                let mut acc = F64x4::zero();
                for x in &xs {
                    acc += x.rsqrt_fast(iters);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(4));
    targets = flag_ablations, split_mu_overhead, anti_trapping_cost, phi_layout, rsqrt_variants
}
criterion_main!(ablations);
