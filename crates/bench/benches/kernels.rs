//! Criterion micro-benchmarks of every kernel variant (statistical
//! companion to the fig5/fig6 binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use eutectica_blockgrid::GridDims;
use eutectica_core::kernels::{
    mu_sweep, phi_sweep, KernelConfig, MuPart, MuVariant, OptLevel, PhiVariant, SimdIsa,
};
use eutectica_core::params::ModelParams;
use eutectica_core::regions::{build_scenario, Scenario};

fn bench_phi_variants(c: &mut Criterion) {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(32);
    let mut group = c.benchmark_group("phi_kernel");
    group.throughput(criterion::Throughput::Elements(
        dims.interior_volume() as u64
    ));
    for (name, variant) in [
        ("reference", PhiVariant::Reference),
        ("scalar", PhiVariant::Scalar),
        ("simd_cellwise", PhiVariant::SimdCellwise),
        ("simd_fourcell", PhiVariant::SimdFourCell),
    ] {
        let cfg = KernelConfig {
            phi: variant,
            mu: MuVariant::Scalar,
            isa: SimdIsa::Auto,
            tz_precompute: true,
            staggered_buffer: variant != PhiVariant::SimdFourCell
                && variant != PhiVariant::Reference,
            shortcuts: false,
        };
        let mut state = build_scenario(Scenario::Interface, dims);
        group.bench_function(name, |b| {
            b.iter(|| phi_sweep(&params, &mut state, 0.0, cfg));
        });
    }
    group.finish();
}

fn bench_mu_variants(c: &mut Criterion) {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(32);
    let mut group = c.benchmark_group("mu_kernel");
    group.throughput(criterion::Throughput::Elements(
        dims.interior_volume() as u64
    ));
    for (name, variant) in [
        ("reference", MuVariant::Reference),
        ("scalar", MuVariant::Scalar),
        ("simd_fourcell", MuVariant::SimdFourCell),
    ] {
        let cfg = KernelConfig {
            phi: PhiVariant::Scalar,
            mu: variant,
            isa: SimdIsa::Auto,
            tz_precompute: true,
            staggered_buffer: variant != MuVariant::Reference,
            shortcuts: false,
        };
        let mut state = build_scenario(Scenario::Interface, dims);
        phi_sweep(&params, &mut state, 0.0, KernelConfig::default());
        group.bench_function(name, |b| {
            b.iter(|| mu_sweep(&params, &mut state, 0.0, cfg, MuPart::Full));
        });
    }
    group.finish();
}

fn bench_full_step_per_scenario(c: &mut Criterion) {
    let params = ModelParams::ag_al_cu();
    let dims = GridDims::cube(32);
    let cfg = OptLevel::SimdTzBufShortcuts.config();
    let mut group = c.benchmark_group("full_step");
    group.throughput(criterion::Throughput::Elements(
        dims.interior_volume() as u64
    ));
    for sc in Scenario::ALL {
        let mut state = build_scenario(sc, dims);
        group.bench_function(sc.name(), |b| {
            b.iter(|| {
                phi_sweep(&params, &mut state, 0.0, cfg);
                mu_sweep(&params, &mut state, 0.0, cfg, MuPart::Full);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_phi_variants, bench_mu_variants, bench_full_step_per_scenario
}
criterion_main!(kernels);
