//! α-β network models for the three machines' interconnects.
//!
//! The weak-scaling behaviour of a halo-exchange code is governed by (i) the
//! number of populated neighbor faces per rank (which grows from 0 at one
//! rank to 6 once the decomposition is 3-D), (ii) the per-message α + B/β
//! cost, and (iii) topology-dependent derating when messages leave the
//! local island/group. Nearest-neighbor halos map well onto all three
//! topologies, so the derating is mild — which is exactly why the paper's
//! Fig. 9 curves are almost flat.

/// Point-to-point link parameters.
#[derive(Copy, Clone, Debug)]
pub struct LinkParams {
    /// Per-message latency α (seconds).
    pub latency: f64,
    /// Link bandwidth β (bytes/second).
    pub bandwidth: f64,
}

/// Interconnect topology archetypes of the three machines.
#[derive(Copy, Clone, Debug)]
pub enum Topology {
    /// SuperMUC: non-blocking tree inside an island, pruned (e.g. 4:1)
    /// between islands.
    PrunedFatTree {
        /// Ranks per island.
        island_ranks: usize,
        /// Pruning factor between islands (4.0 = 4:1).
        pruning: f64,
    },
    /// Cray Aries dragonfly (Hornet).
    Dragonfly {
        /// Ranks per group.
        group_ranks: usize,
    },
    /// Blue Gene/Q 5-D torus (JUQUEEN): nearest-neighbor halos embed
    /// perfectly.
    Torus5D,
}

impl Topology {
    /// Fraction of a rank's halo traffic that crosses the expensive
    /// topology level at `ranks` total ranks (0 inside one island/group).
    fn remote_fraction(&self, ranks: usize) -> f64 {
        match self {
            Topology::PrunedFatTree { island_ranks, .. } => {
                if ranks <= *island_ranks {
                    0.0
                } else {
                    // Islands tile the rank grid; the fraction of block
                    // faces on island boundaries scales with the inverse
                    // island edge length.
                    let island_edge = (*island_ranks as f64).cbrt();
                    (1.0 / island_edge).min(1.0)
                }
            }
            Topology::Dragonfly { group_ranks } => {
                if ranks <= *group_ranks {
                    0.0
                } else {
                    let group_edge = (*group_ranks as f64).cbrt();
                    (0.5 / group_edge).min(1.0) // adaptive routing halves it
                }
            }
            Topology::Torus5D => 0.0,
        }
    }

    /// Effective bandwidth derate ∈ (0, 1] for halo traffic at `ranks`.
    pub fn bandwidth_derate(&self, ranks: usize) -> f64 {
        let remote = self.remote_fraction(ranks);
        match self {
            Topology::PrunedFatTree { pruning, .. } => 1.0 / (1.0 + remote * (pruning - 1.0)),
            Topology::Dragonfly { .. } => 1.0 / (1.0 + remote),
            Topology::Torus5D => 1.0,
        }
    }

    /// Latency multiplier (average extra hops) at `ranks`.
    pub fn latency_factor(&self, ranks: usize) -> f64 {
        match self {
            Topology::PrunedFatTree { island_ranks, .. } => {
                if ranks <= *island_ranks {
                    1.0
                } else {
                    1.5
                }
            }
            Topology::Dragonfly { .. } => 1.2,
            // Neighbor ranks are neighbor nodes on the torus.
            Topology::Torus5D => 1.0,
        }
    }
}

/// Time to exchange one message of `bytes` at `ranks` total ranks.
pub fn message_time(link: LinkParams, topo: Topology, bytes: usize, ranks: usize) -> f64 {
    link.latency * topo.latency_factor(ranks)
        + bytes as f64 / (link.bandwidth * topo.bandwidth_derate(ranks))
}

/// Split `p` into three factors as equal as possible (the rank grid used
/// for the weak-scaling decomposition), sorted ascending.
pub fn balanced_factors(p: usize) -> [usize; 3] {
    assert!(p > 0);
    let mut best = [1, 1, p];
    let mut best_score = usize::MAX;
    let mut a = 1;
    while a * a * a <= p {
        if p % a == 0 {
            let q = p / a;
            let mut b = a;
            while b * b <= q {
                if q % b == 0 {
                    let c = q / b;
                    let score = c - a; // spread
                    if score < best_score {
                        best_score = score;
                        best = [a, b, c];
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Number of populated neighbor faces of an interior rank for a
/// `[px, py, pz]` rank grid with periodic x/y and open z (Fig. 2 setup).
/// This is what grows the exposed communication between 1 rank and the
/// asymptotic 6-face regime.
pub fn populated_faces(grid: [usize; 3]) -> usize {
    let mut faces = 0;
    // Periodic axes have neighbors as soon as there is more than one rank
    // along the axis — or even with one rank (self-neighbor, local copy,
    // which we count as free).
    for (axis, &n) in grid.iter().enumerate() {
        if n > 1 {
            faces += 2;
        } else if axis < 2 {
            // periodic self-exchange: local, no wire cost
        }
    }
    faces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_factors_are_exact_and_balanced() {
        for p in [1usize, 2, 4, 8, 64, 512, 4096, 32768, 262144] {
            let f = balanced_factors(p);
            assert_eq!(f[0] * f[1] * f[2], p, "{p}");
            assert!(f[2] / f[0] <= 4, "{p}: {f:?} too skewed");
        }
        assert_eq!(balanced_factors(64), [4, 4, 4]);
    }

    #[test]
    fn torus_never_derates_neighbor_traffic() {
        let t = Topology::Torus5D;
        for p in [2usize, 1 << 10, 1 << 18] {
            assert_eq!(t.bandwidth_derate(p), 1.0);
            assert_eq!(t.latency_factor(p), 1.0);
        }
    }

    #[test]
    fn pruned_tree_derates_only_above_island() {
        let t = Topology::PrunedFatTree {
            island_ranks: 8192,
            pruning: 4.0,
        };
        assert_eq!(t.bandwidth_derate(4096), 1.0);
        let d = t.bandwidth_derate(1 << 15);
        assert!(d < 1.0 && d > 0.5, "derate {d}");
        // Message time grows accordingly.
        let link = LinkParams {
            latency: 2e-6,
            bandwidth: 5e9,
        };
        let small = message_time(link, t, 1 << 20, 4096);
        let large = message_time(link, t, 1 << 20, 1 << 15);
        assert!(large > small);
    }

    #[test]
    fn face_population_saturates_at_six() {
        assert_eq!(populated_faces([1, 1, 1]), 0);
        assert_eq!(populated_faces([2, 1, 1]), 2);
        assert_eq!(populated_faces([2, 2, 1]), 4);
        assert_eq!(populated_faces([2, 2, 2]), 6);
        assert_eq!(populated_faces([8, 8, 4]), 6);
    }
}
