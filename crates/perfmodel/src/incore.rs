//! Analytic in-core throughput bound — the IACA substitute.
//!
//! The paper runs the Intel Architecture Code Analyzer on the compiled
//! kernels and finds that "even though the code is fully vectorized, it can
//! attain at most 43 % peak under ideal front-end, out-of-order engine, and
//! memory hierarchy conditions. This is caused predominantly by imbalance in
//! the number of additions and multiplication as well as latencies for
//! division operations." IACA is proprietary and discontinued; this module
//! reproduces the same style of bound analytically from the exact
//! instruction mix measured with [`eutectica_core::metrics::Counting`]
//! (DESIGN.md substitution 2).
//!
//! Port model (per cycle, 4-wide vectors):
//! * two arithmetic ports, each able to start one add, one multiply, or one
//!   FMA per cycle;
//! * adds and multiplies fuse pairwise into FMAs up to the `fma_fraction`
//!   (explicitly vectorized kernels use `mul_add`, so most pairs fuse);
//! * one divide/sqrt unit with a reciprocal throughput of
//!   `div_recip_throughput` cycles per 4-wide operation.

use eutectica_core::metrics::FlopCount;

/// Throughput parameters of the modeled core.
#[derive(Copy, Clone, Debug)]
pub struct CoreModel {
    /// Arithmetic ports issuing add/mul/FMA.
    pub arith_ports: f64,
    /// Vector lanes (doubles).
    pub lanes: f64,
    /// Fraction of add/mul pairs that fuse into FMAs.
    pub fma_fraction: f64,
    /// Cycles between successive 4-wide divides (unpipelined divider).
    pub div_recip_throughput: f64,
    /// Cycles between successive 4-wide square roots.
    pub sqrt_recip_throughput: f64,
}

impl Default for CoreModel {
    /// Modern AVX2 core (2 FMA ports; pipelined divider: vdivpd ≈ 6 c,
    /// vsqrtpd ≈ 10 c reciprocal throughput at 256-bit).
    fn default() -> Self {
        Self {
            arith_ports: 2.0,
            lanes: 4.0,
            fma_fraction: 0.8,
            div_recip_throughput: 6.0,
            sqrt_recip_throughput: 10.0,
        }
    }
}

impl CoreModel {
    /// The paper's Sandy Bridge-class SuperMUC core: one add + one mul port
    /// (no FMA), slow unpipelined 256-bit divider. This is the
    /// configuration under which IACA reported the 43 % ceiling.
    pub fn sandy_bridge() -> Self {
        Self {
            arith_ports: 2.0,
            lanes: 4.0,
            fma_fraction: 0.0, // SNB has no FMA
            div_recip_throughput: 28.0,
            sqrt_recip_throughput: 43.0,
        }
    }
}

/// In-core bound for one cell update.
#[derive(Copy, Clone, Debug)]
pub struct InCoreReport {
    /// Minimum cycles per cell from the arithmetic ports.
    pub arith_cycles: f64,
    /// Minimum cycles per cell from the divide/sqrt unit.
    pub div_cycles: f64,
    /// Binding cycle count.
    pub cycles_per_cell: f64,
    /// Maximum achievable fraction of peak FLOP rate (the IACA-style "max
    /// x % of peak" statement).
    pub max_fraction_of_peak: f64,
}

/// Compute the bound for a measured FLOP mix.
pub fn analyze(model: CoreModel, flops: FlopCount) -> InCoreReport {
    let adds = flops.adds as f64;
    let muls = flops.muls as f64;
    // Fuse min(adds, muls) · fma_fraction pairs into FMAs.
    let fused = adds.min(muls) * model.fma_fraction;
    let ops = (adds - fused) + (muls - fused) + fused; // issued vector ops × lanes
    let arith_cycles = ops / model.lanes / model.arith_ports;
    let div_cycles = (flops.divs as f64 * model.div_recip_throughput
        + flops.sqrts as f64 * model.sqrt_recip_throughput)
        / model.lanes;
    let cycles = arith_cycles.max(div_cycles);
    // Peak = arith_ports × lanes × 2 FLOP (FMA) per cycle.
    let peak_flops_per_cycle = model.arith_ports * model.lanes * 2.0;
    let achieved = flops.total() as f64 / cycles;
    InCoreReport {
        arith_cycles,
        div_cycles,
        cycles_per_cell: cycles,
        max_fraction_of_peak: (achieved / peak_flops_per_cycle).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_fma_mix_approaches_peak() {
        let r = analyze(
            CoreModel {
                fma_fraction: 1.0,
                ..CoreModel::default()
            },
            FlopCount {
                adds: 500,
                muls: 500,
                divs: 0,
                sqrts: 0,
            },
        );
        assert!(r.max_fraction_of_peak > 0.99, "{r:?}");
    }

    #[test]
    fn imbalance_and_divisions_cap_the_peak() {
        // Add-heavy mix with divisions: the paper's "at most 43 % of peak"
        // situation.
        let r = analyze(
            CoreModel::default(),
            FlopCount {
                adds: 800,
                muls: 400,
                divs: 24,
                sqrts: 6,
            },
        );
        assert!(
            r.max_fraction_of_peak < 0.75 && r.max_fraction_of_peak > 0.2,
            "{r:?}"
        );
        // Removing the divider pressure never increases the cycle count.
        let r2 = analyze(
            CoreModel::default(),
            FlopCount {
                adds: 800,
                muls: 400,
                divs: 0,
                sqrts: 0,
            },
        );
        assert!(r2.cycles_per_cell <= r.cycles_per_cell);
        // Under the paper's Sandy Bridge port model the same mix is capped
        // much harder (no FMA, slow divider) — the IACA-style statement.
        let snb = analyze(
            CoreModel::sandy_bridge(),
            FlopCount {
                adds: 800,
                muls: 400,
                divs: 24,
                sqrts: 6,
            },
        );
        assert!(snb.max_fraction_of_peak < r.max_fraction_of_peak);
    }

    #[test]
    fn divider_bound_kicks_in_for_division_heavy_code() {
        let r = analyze(
            CoreModel::default(),
            FlopCount {
                adds: 10,
                muls: 10,
                divs: 100,
                sqrts: 0,
            },
        );
        assert!(r.div_cycles > r.arith_cycles);
        assert!(r.max_fraction_of_peak < 0.06);
    }

    #[test]
    fn real_kernel_mix_is_capped_below_peak() {
        // The actual µ-kernel mix of this reproduction.
        let p = eutectica_core::params::ModelParams::ag_al_cu();
        let mix = eutectica_core::metrics::mu_flops_per_cell(&p);
        let r = analyze(CoreModel::default(), mix);
        assert!(
            r.max_fraction_of_peak < 0.9,
            "kernel should not reach peak: {r:?}"
        );
        assert!(r.max_fraction_of_peak > 0.05, "{r:?}");
    }
}
