//! Machine profiles of the paper's three systems and the scaling
//! predictors behind Figs. 7–9.
//!
//! This container exposes a single physical core, so the multi-node curves
//! are produced by a calibrated model (DESIGN.md substitution 1): measured
//! single-core kernel rates and exact ghost-message sizes are combined with
//! per-machine interconnect parameters and the halo-exchange pattern of the
//! time loop. Shape — near-flat weak scaling with a drop as the rank grid
//! becomes 3-D, ordering between scenarios, saturation behaviour on a node
//! — comes from the model structure, not from fitted curves.

use crate::network::{balanced_factors, message_time, populated_faces, LinkParams, Topology};

/// One of the paper's machines (Sec. 4).
#[derive(Copy, Clone, Debug)]
pub struct MachineProfile {
    /// Display name.
    pub name: &'static str,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Memory bandwidth per node (bytes/s).
    pub node_bandwidth: f64,
    /// Interconnect topology.
    pub topology: Topology,
    /// Link parameters.
    pub link: LinkParams,
    /// Single-core speed relative to the calibration machine (scales the
    /// measured MLUP/s; 1.0 = same speed).
    pub core_speed: f64,
    /// Largest core count of the paper's scaling plot.
    pub max_cores: usize,
}

/// SuperMUC (LRZ): 2 × 8-core SNB nodes, 512-node islands, 4:1 pruned tree.
pub fn supermuc() -> MachineProfile {
    MachineProfile {
        name: "SuperMUC",
        cores_per_node: 16,
        node_bandwidth: 80.0 * (1u64 << 30) as f64, // the paper's STREAM number
        topology: Topology::PrunedFatTree {
            island_ranks: 512 * 16,
            pruning: 4.0,
        },
        link: LinkParams {
            latency: 2.0e-6,
            bandwidth: 5.0e9, // FDR10 IB per node
        },
        core_speed: 1.0,
        max_cores: 1 << 15,
    }
}

/// Hornet (HLRS): 2 × 12-core Haswell nodes, Cray Aries dragonfly.
pub fn hornet() -> MachineProfile {
    MachineProfile {
        name: "Hornet",
        cores_per_node: 24,
        node_bandwidth: 110.0 * (1u64 << 30) as f64,
        topology: Topology::Dragonfly {
            group_ranks: 384 * 24,
        },
        link: LinkParams {
            latency: 1.5e-6,
            bandwidth: 10.0e9,
        },
        core_speed: 1.15, // Haswell AVX2 vs the SNB baseline
        max_cores: 1 << 13,
    }
}

/// JUQUEEN (JSC): 16-core PowerPC A2 nodes (4-way SMT), 5-D torus.
pub fn juqueen() -> MachineProfile {
    MachineProfile {
        name: "JUQUEEN",
        cores_per_node: 16,
        node_bandwidth: 28.0 * (1u64 << 30) as f64,
        topology: Topology::Torus5D,
        link: LinkParams {
            latency: 0.7e-6, // "latencies in the range of a few hundred ns"
            bandwidth: 2.0e9,
        },
        // In-order A2 cores at 1.6 GHz: roughly a tenth of a SNB core on
        // this kernel (the paper's right panel peaks near 0.2 MLUP/s/core
        // vs 3.5 on SuperMUC).
        core_speed: 0.07,
        max_cores: 1 << 18,
    }
}

/// All three machines in the paper's plotting order.
pub fn all_machines() -> [MachineProfile; 3] {
    [supermuc(), hornet(), juqueen()]
}

/// Ghost-message volumes per step for a block of `b` cells per rank:
/// the φ field sends 4 components, µ sends 2; both exchange one ghost layer
/// per face per step (Algorithm 1).
pub fn halo_bytes_per_face(block: [usize; 3]) -> [usize; 3] {
    let f = 8; // f64 on the wire
    let comps = 4 + 2;
    [
        block[1] * block[2] * comps * f,
        block[0] * block[2] * comps * f,
        block[0] * block[1] * comps * f,
    ]
}

/// One point of a weak-scaling curve.
#[derive(Copy, Clone, Debug)]
pub struct ScalingPoint {
    /// Total cores (= ranks; the paper places one rank per core).
    pub cores: usize,
    /// Modeled MLUP/s per core.
    pub mlups_per_core: f64,
    /// Exposed communication fraction of the step time.
    pub comm_fraction: f64,
}

/// Weak-scaling prediction: every rank owns one `block`; the per-step time
/// is the measured compute time (from `measured_mlups` on the calibration
/// machine, scaled by `core_speed`) plus the exposed halo time. With
/// `hide_mu` (the paper's best overlap config), the µ share of the message
/// volume is hidden behind compute.
pub fn weak_scaling(
    profile: &MachineProfile,
    block: [usize; 3],
    measured_mlups: f64,
    hide_mu: bool,
    cores: &[usize],
) -> Vec<ScalingPoint> {
    let cells: usize = block.iter().product();
    let compute_time = cells as f64 / (measured_mlups * profile.core_speed * 1e6);
    let face_bytes = halo_bytes_per_face(block);
    cores
        .iter()
        .map(|&p| {
            let grid = balanced_factors(p);
            let faces = populated_faces(grid);
            // Distribute populated faces over the axes in grid order
            // (larger axes first have neighbors).
            let mut comm = 0.0;
            let mut remaining = faces;
            // Sort axes by rank-grid extent descending: those split first.
            let mut order: Vec<usize> = (0..3).collect();
            order.sort_by_key(|&a| std::cmp::Reverse(grid[a]));
            for &axis in &order {
                if remaining == 0 {
                    break;
                }
                if grid[axis] > 1 {
                    let per_msg = message_time(profile.link, profile.topology, face_bytes[axis], p);
                    comm += 2.0 * per_msg;
                    remaining -= 2;
                }
            }
            // µ messages are 1/3 of the volume (2 of 6 components); hiding
            // them removes that share of the wire time but not the α costs.
            let exposed = if hide_mu { comm * (2.0 / 3.0) } else { comm };
            let step = compute_time + exposed;
            ScalingPoint {
                cores: p,
                mlups_per_core: cells as f64 / step / 1e6,
                comm_fraction: exposed / step,
            }
        })
        .collect()
}

/// Intranode scaling (Fig. 7): cores on one node share the memory
/// interface. Throughput = min(linear compute scaling, bandwidth ceiling).
/// `bytes_per_cell` depends on the block size: blocks whose working set
/// fits in the last-level cache stream far fewer bytes.
pub fn intranode_scaling(
    profile: &MachineProfile,
    measured_mlups: f64,
    bytes_per_cell: f64,
    cores: &[usize],
) -> Vec<(usize, f64)> {
    let sockets = 2.0;
    cores
        .iter()
        .map(|&p| {
            let compute = p as f64 * measured_mlups * profile.core_speed;
            let sockets_used = if p as f64 <= profile.cores_per_node as f64 / sockets {
                1.0
            } else {
                sockets
            };
            let bw_cap = sockets_used * (profile.node_bandwidth / sockets) / bytes_per_cell / 1e6;
            (p, compute.min(bw_cap))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn powers(max: usize) -> Vec<usize> {
        (0..)
            .map(|k| 1usize << k)
            .take_while(|&p| p <= max)
            .collect()
    }

    #[test]
    fn weak_scaling_is_near_flat_after_3d_regime() {
        for m in all_machines() {
            let pts = weak_scaling(&m, [60, 60, 60], 25.0, true, &powers(m.max_cores));
            let single = pts[0].mlups_per_core;
            let last = pts.last().unwrap().mlups_per_core;
            // Parallel efficiency at full machine ≥ 70 % (the paper's curves
            // are near-flat).
            assert!(
                last / single > 0.7,
                "{}: efficiency {:.2}",
                m.name,
                last / single
            );
            // Per-core rate never increases with rank count.
            for w in pts.windows(2) {
                assert!(
                    w[1].mlups_per_core <= w[0].mlups_per_core + 1e-9,
                    "{}",
                    m.name
                );
            }
        }
    }

    #[test]
    fn machine_ordering_matches_paper() {
        // Per-core: Hornet ≥ SuperMUC ≫ JUQUEEN (Fig. 9 y-axis scales).
        let cores = [4096usize];
        let s = weak_scaling(&supermuc(), [60; 3], 25.0, true, &cores)[0].mlups_per_core;
        let h = weak_scaling(&hornet(), [60; 3], 25.0, true, &cores)[0].mlups_per_core;
        let j = weak_scaling(&juqueen(), [60; 3], 25.0, true, &cores)[0].mlups_per_core;
        assert!(h > s, "Hornet {h} vs SuperMUC {s}");
        assert!(s > 5.0 * j, "SuperMUC {s} vs JUQUEEN {j}");
    }

    #[test]
    fn overlap_helps() {
        let m = supermuc();
        let cores = [32768usize];
        let with = weak_scaling(&m, [40; 3], 25.0, true, &cores)[0];
        let without = weak_scaling(&m, [40; 3], 25.0, false, &cores)[0];
        assert!(with.mlups_per_core > without.mlups_per_core);
        assert!(with.comm_fraction < without.comm_fraction);
    }

    #[test]
    fn intranode_scaling_saturates_for_streaming_blocks() {
        let m = supermuc();
        let cores: Vec<usize> = (1..=16).collect();
        // 40³ blocks stream from memory (680 B/cell, the paper's estimate).
        let big = intranode_scaling(&m, 4.2, 680.0, &cores);
        // 20³ blocks fit in cache: only compulsory traffic (~1/10).
        let small = intranode_scaling(&m, 4.2, 68.0, &cores);
        // Single core identical; at 16 cores the cached case is at least as
        // fast (the paper measures only slight differences because the
        // kernel is compute-bound — our numbers reproduce the ceiling).
        assert_eq!(big[0].1, small[0].1);
        assert!(small[15].1 >= big[15].1);
        // Monotone non-decreasing in cores.
        for w in big.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }

    #[test]
    fn halo_bytes_match_field_layout() {
        let b = halo_bytes_per_face([60, 60, 60]);
        assert_eq!(b, [60 * 60 * 6 * 8; 3]);
        let b = halo_bytes_per_face([10, 20, 30]);
        assert_eq!(b[0], 20 * 30 * 48);
        assert_eq!(b[2], 10 * 20 * 48);
    }
}
