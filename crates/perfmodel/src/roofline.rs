//! Roofline analysis (Williams et al. [34]): attainable MLUP/s =
//! min(peak_flops / flops_per_cell, bandwidth / bytes_per_cell).
//!
//! The paper: "We measure the maximum attainable bandwidth using STREAM on
//! one node, resulting in a bandwidth of approximately 80 GiB/s. ... Under
//! this assumption, half of the required values are held in L2 cache and at
//! most 680 Bytes have to be loaded from main memory to update one cell.
//! For one cell update, 1384 floating point operations are required ...
//! 80 GiB/s : 680 B/LUP = 126.3 MLUP/s."

use eutectica_core::metrics::FlopCount;
use eutectica_simd::F64x4;
use std::time::Instant;

/// Measured machine characteristics.
#[derive(Copy, Clone, Debug)]
pub struct MachineRates {
    /// Sustainable memory bandwidth (bytes/s), STREAM-triad style.
    pub bandwidth: f64,
    /// Peak double-precision FLOP rate (FLOP/s) from an FMA micro-kernel.
    pub peak_flops: f64,
}

/// STREAM-triad bandwidth probe: `a[i] = b[i] + s * c[i]` over arrays well
/// beyond LLC capacity. Returns bytes/s (3 arrays × 8 B plus write-allocate
/// ≈ 32 B per iteration, the STREAM convention counts 24).
pub fn measure_stream_bandwidth() -> f64 {
    let n = 8 << 20; // 3 × 64 MiB
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    let s = 3.0;
    // Warmup + best of 3.
    let mut best = f64::INFINITY;
    for _ in 0..4 {
        let t = Instant::now();
        for ((ai, bi), ci) in a.iter_mut().zip(&b).zip(&c) {
            *ai = *bi + s * *ci;
        }
        std::hint::black_box(&a);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (n * 24) as f64 / best
}

/// Peak-FLOP probe: eight independent FMA chains on 4-wide vectors.
/// Returns FLOP/s (each FMA counts as 2 FLOPs × 4 lanes).
pub fn measure_peak_flops() -> f64 {
    let iters: u64 = 4_000_000;
    let mut acc = [F64x4::splat(0.0); 8];
    let x = F64x4::splat(1.000000001);
    let y = F64x4::splat(1e-9);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            for a in acc.iter_mut() {
                *a = x.mul_add(*a, y);
            }
        }
        std::hint::black_box(&acc);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (iters * 8 * 2 * 4) as f64 / best
}

/// Result of the roofline analysis for one kernel.
#[derive(Copy, Clone, Debug)]
pub struct RooflineReport {
    /// FLOPs per cell update.
    pub flops_per_cell: u64,
    /// Bytes per cell update (under the paper's 50 %-cache-reuse model).
    pub bytes_per_cell: usize,
    /// Arithmetic intensity (FLOP/byte).
    pub intensity: f64,
    /// Bandwidth-limited ceiling in MLUP/s.
    pub bandwidth_mlups: f64,
    /// Compute-limited ceiling in MLUP/s.
    pub compute_mlups: f64,
    /// Overall roofline ceiling.
    pub roofline_mlups: f64,
    /// True if the kernel is compute-bound (the paper's conclusion for both
    /// kernels).
    pub compute_bound: bool,
}

/// Combine machine rates with kernel counts.
pub fn analyze(rates: MachineRates, flops: FlopCount, bytes_per_cell: usize) -> RooflineReport {
    let f = flops.total();
    let intensity = f as f64 / bytes_per_cell as f64;
    let bandwidth_mlups = rates.bandwidth / bytes_per_cell as f64 / 1e6;
    let compute_mlups = rates.peak_flops / f as f64 / 1e6;
    RooflineReport {
        flops_per_cell: f,
        bytes_per_cell,
        intensity,
        bandwidth_mlups,
        compute_mlups,
        roofline_mlups: bandwidth_mlups.min(compute_mlups),
        compute_bound: compute_mlups < bandwidth_mlups,
    }
}

/// Fraction of peak achieved by a measured MLUP/s figure.
pub fn fraction_of_peak(rates: MachineRates, flops: FlopCount, measured_mlups: f64) -> f64 {
    measured_mlups * 1e6 * flops.total() as f64 / rates.peak_flops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_math() {
        let rates = MachineRates {
            bandwidth: 80.0 * (1u64 << 30) as f64, // the paper's 80 GiB/s
            peak_flops: 21.6e9,                    // one SuperMUC core × ...
        };
        // The paper's numbers: 1384 FLOP, 680 B.
        let flops = FlopCount {
            adds: 700,
            muls: 660,
            divs: 20,
            sqrts: 4,
        };
        let r = analyze(rates, flops, 680);
        assert_eq!(r.flops_per_cell, 1384);
        assert!(
            (r.bandwidth_mlups - 126.3).abs() < 0.5,
            "{}",
            r.bandwidth_mlups
        );
        // 21.6 GFLOP/s / 1384 = 15.6 MLUP/s — compute bound, as in the paper.
        assert!(r.compute_bound);
        assert!((r.intensity - 2.035).abs() < 0.01);
        // 4.2 MLUP/s measured ⇒ 27 % of peak (paper Sec. 5.1.1).
        let frac = fraction_of_peak(rates, flops, 4.2);
        assert!((frac - 0.269).abs() < 0.01, "{frac}");
    }

    #[test]
    #[ignore = "timing-dependent; run explicitly with --ignored"]
    fn probes_return_plausible_rates() {
        let bw = measure_stream_bandwidth();
        assert!(bw > 1e9, "bandwidth {bw} implausibly low");
        let pf = measure_peak_flops();
        assert!(pf > 1e9, "peak {pf} implausibly low");
        assert!(pf / bw > 0.05);
    }
}
