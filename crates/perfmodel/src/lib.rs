//! Performance models: roofline, in-core throughput, and machine-level
//! scaling models.
//!
//! The paper's Sec. 5.1.1 performance analysis uses (i) a roofline model
//! with STREAM-measured bandwidth [22, 34], (ii) the Intel Architecture Code
//! Analyzer for the in-core bound, and (iii) three supercomputers for the
//! scaling runs. In this reproduction:
//!
//! * [`roofline`] measures the host's sustainable bandwidth (STREAM triad)
//!   and peak FLOP rate (FMA chain micro-kernel) and combines them with the
//!   exact per-cell FLOP/byte counts from `eutectica-core::metrics`;
//! * [`incore`] is the IACA substitute: an analytic port/latency bound from
//!   the measured instruction mix (DESIGN.md substitution 2);
//! * [`network`] + [`machines`] model the three machines' interconnects
//!   (pruned fat tree / dragonfly / 5-D torus) with α-β-γ parameters and
//!   replay the halo-exchange pattern for the weak-scaling extrapolation of
//!   Figs. 7–9 (DESIGN.md substitution 1 — this container has one physical
//!   core, so large rank counts are modeled, calibrated by measured
//!   single-core kernel rates and message sizes).

#![deny(missing_docs)]

pub mod incore;
pub mod machines;
pub mod network;
pub mod roofline;
