//! Property-based tests of the scaling models.

use eutectica_perfmodel::machines::{all_machines, weak_scaling};
use eutectica_perfmodel::network::{balanced_factors, populated_faces};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Balanced factorizations are exact and sorted.
    #[test]
    fn factorization_is_exact(p in 1usize..100_000) {
        let f = balanced_factors(p);
        prop_assert_eq!(f[0] * f[1] * f[2], p);
        prop_assert!(f[0] <= f[1] && f[1] <= f[2]);
    }

    /// Populated faces are even and at most 6.
    #[test]
    fn face_population_properties(px in 1usize..8, py in 1usize..8, pz in 1usize..8) {
        let f = populated_faces([px, py, pz]);
        prop_assert!(f <= 6 && f % 2 == 0);
    }

    /// Weak-scaling per-core rates are positive, bounded by the single-core
    /// rate, and monotone non-increasing in the rank count.
    #[test]
    fn weak_scaling_is_monotone(rate in 1.0..100.0f64, exp in 0u32..16) {
        for m in all_machines() {
            let cores: Vec<usize> = (0..=exp).map(|k| 1usize << k).collect();
            let pts = weak_scaling(&m, [40; 3], rate, true, &cores);
            let single = pts[0].mlups_per_core;
            prop_assert!(single <= rate * m.core_speed + 1e-9);
            for w in pts.windows(2) {
                prop_assert!(w[1].mlups_per_core <= w[0].mlups_per_core + 1e-9);
                prop_assert!(w[1].mlups_per_core > 0.0);
            }
        }
    }

    /// Hiding the µ communication never hurts.
    #[test]
    fn overlap_never_hurts(rate in 1.0..100.0f64, exp in 1u32..16) {
        for m in all_machines() {
            let cores = [1usize << exp];
            let with = weak_scaling(&m, [60; 3], rate, true, &cores)[0].mlups_per_core;
            let without = weak_scaling(&m, [60; 3], rate, false, &cores)[0].mlups_per_core;
            prop_assert!(with >= without - 1e-12);
        }
    }
}
